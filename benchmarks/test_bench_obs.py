"""PR 4/PR 5 — observability overhead.

The tracing layer promises zero overhead when disabled: every hot-path
hook is a single attribute check on the shared :data:`NULL_TRACER`.
This bench measures the full MINE RULE pipeline three ways — tracer
absent (seed behaviour), tracer enabled, tracer enabled with
EXPLAIN ANALYZE capture — and asserts the disabled path stays within
5% of the seed (the CI smoke gate), recording all three in
``BENCH_PR4.json``.

PR 5 extends the same contract to the metrics registry: with metrics
disabled (the shared :data:`NULL_REGISTRY`) the pipeline must stay
within the same overhead gate, and with metrics enabled the well-known
series must actually materialize.  Recorded in ``BENCH_PR5.json``.

PR 10 extends it again to run tracing: trace-context propagation,
per-span resource attribution and the run-history journal must leave
the disabled path inside the same gate, and the fully-observed path
(tracer + CPU attribution + journal) must stay cheap.  Recorded in
``BENCH_PR10.json``.
"""

import time

from benchmarks.conftest import BENCH_QUICK, bench_report, fresh_system
from repro import Database
from repro.datagen import QuestParameters, load_quest
from repro.obs import NULL_TRACER, MetricsRegistry, RunLog, Tracer

REPORT, write_report = bench_report("BENCH_PR4.json")
REPORT5, write_report5 = bench_report("BENCH_PR5.json")
REPORT10, write_report10 = bench_report("BENCH_PR10.json")

STATEMENT = """
MINE RULE ObsRules AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.4
"""

ROUNDS = 3 if BENCH_QUICK else 8
#: disabled-path regression gate; QUICK runs on shared CI boxes where
#: timer noise dominates, so the floor relaxes
OVERHEAD_LIMIT = 1.25 if BENCH_QUICK else 1.05


def quest_database():
    db = Database()
    load_quest(
        db,
        QuestParameters(
            transactions=120 if BENCH_QUICK else 300,
            avg_transaction_size=8,
            avg_pattern_size=3,
            patterns=40,
            items=80,
            seed=77,
        ),
    )
    return db


def run_pipeline(tracer, rounds=ROUNDS):
    """Median wall time of one full MINE RULE run under *tracer*."""
    samples = []
    for _ in range(rounds):
        system = fresh_system(quest_database(), tracer=tracer)
        started = time.perf_counter()
        result = system.execute(STATEMENT)
        samples.append(time.perf_counter() - started)
        assert result.rules
    samples.sort()
    return samples[len(samples) // 2]


def test_disabled_tracing_overhead_under_5_percent():
    baseline = run_pipeline(None)  # seed behaviour: NULL_TRACER default
    disabled = run_pipeline(Tracer(enabled=False))
    ratio = disabled / baseline
    REPORT["obs_overhead"] = {
        "baseline_ms": baseline * 1000,
        "disabled_ms": disabled * 1000,
        "disabled_ratio": ratio,
        "limit": OVERHEAD_LIMIT,
        "quick": BENCH_QUICK,
    }
    assert ratio < OVERHEAD_LIMIT, (
        f"disabled tracing slowed the pipeline by "
        f"{(ratio - 1) * 100:.1f}% (limit {OVERHEAD_LIMIT})"
    )


def test_enabled_tracing_records_the_pipeline():
    tracer = Tracer(enabled=True)
    seconds = run_pipeline(tracer, rounds=1)
    names = {span.name for span in tracer.spans}
    for component in ("translator", "preprocessor", "core",
                      "postprocessor"):
        assert component in names, component
    REPORT["obs_enabled"] = {
        "run_ms": seconds * 1000,
        "spans": len(tracer.spans),
    }
    assert len(tracer.spans) > 10


def test_analyze_capture_cost_is_bounded():
    """EXPLAIN ANALYZE wraps every operator's row stream — expensive by
    design, but it must stay within an order of magnitude."""
    baseline = run_pipeline(None)
    analyzed = run_pipeline(Tracer(enabled=True, analyze=True))
    REPORT["obs_analyze"] = {
        "baseline_ms": baseline * 1000,
        "analyze_ms": analyzed * 1000,
        "analyze_ratio": analyzed / baseline,
    }
    assert analyzed / baseline < 10.0


def test_null_tracer_is_shared():
    """The default path must not allocate per-system tracers."""
    system = fresh_system(quest_database())
    assert system.tracer is NULL_TRACER
    assert system.db.tracer is NULL_TRACER


# ----------------------------------------------------------------------
# PR 5 — metrics registry
# ----------------------------------------------------------------------


def run_pipeline_metrics(metrics, rounds=ROUNDS):
    """Best-of wall time of one full MINE RULE run with *metrics* (no
    tracer — isolates the registry's own cost).  Min rather than median:
    the disabled-path gate compares two configurations that should be
    *identical*, so the least-noise estimator is the fair one."""
    samples = []
    for _ in range(rounds):
        kwargs = {} if metrics is None else {"metrics": metrics}
        system = fresh_system(quest_database(), **kwargs)
        started = time.perf_counter()
        result = system.execute(STATEMENT)
        samples.append(time.perf_counter() - started)
        assert result.rules
    return min(samples)


def test_disabled_metrics_overhead_within_gate():
    """Metrics off (the seed path) must stay inside the same overhead
    gate as disabled tracing: one ``registry.enabled`` /
    ``_im is None`` check per hook."""
    baseline = run_pipeline_metrics(None)  # NULL_REGISTRY default
    disabled = run_pipeline_metrics(MetricsRegistry(enabled=False))
    ratio = disabled / baseline
    REPORT5["metrics_overhead"] = {
        "baseline_ms": baseline * 1000,
        "disabled_ms": disabled * 1000,
        "disabled_ratio": ratio,
        "limit": OVERHEAD_LIMIT,
        "quick": BENCH_QUICK,
    }
    assert ratio < OVERHEAD_LIMIT, (
        f"disabled metrics slowed the pipeline by "
        f"{(ratio - 1) * 100:.1f}% (limit {OVERHEAD_LIMIT})"
    )


def test_enabled_metrics_cost_and_series():
    """With the registry live the well-known series must materialize,
    and the cost must stay small (it is counter bumps and histogram
    observes, not row-stream wrapping like EXPLAIN ANALYZE)."""
    baseline = run_pipeline_metrics(None)
    registry = MetricsRegistry()
    enabled = run_pipeline_metrics(registry, rounds=max(1, ROUNDS // 2))

    hist = registry.get("repro_sql_statement_seconds")
    assert hist is not None and hist.kind == "histogram"
    assert any(
        state.count > 0 for _, state in hist.samples()
    ), "per-statement SQL latency histogram never observed"

    stages = registry.get("repro_preprocess_stage_seconds")
    assert stages is not None
    assert stages.state(stage="Q1") is not None

    runs = registry.get("repro_minerule_runs_total")
    assert runs.value(status="ok") >= 1

    REPORT5["metrics_enabled"] = {
        "baseline_ms": baseline * 1000,
        "enabled_ms": enabled * 1000,
        "enabled_ratio": enabled / baseline,
        "families": len(registry.collect()),
    }
    assert enabled / baseline < 3.0


# ----------------------------------------------------------------------
# PR 10 — run tracing, resource attribution, run history
# ----------------------------------------------------------------------


def run_pipeline_runlog(tracer, runlog, rounds=ROUNDS):
    """Best-of wall time of one full MINE RULE run under *tracer* with
    the run-history journal attached (min: see run_pipeline_metrics)."""
    samples = []
    for _ in range(rounds):
        kwargs = {}
        if tracer is not None:
            kwargs["tracer"] = tracer
        if runlog is not None:
            kwargs["runlog"] = runlog
        system = fresh_system(quest_database(), **kwargs)
        started = time.perf_counter()
        result = system.execute(STATEMENT)
        samples.append(time.perf_counter() - started)
        assert result.rules
    return min(samples)


def test_disabled_run_tracing_overhead_within_gate():
    """With tracing, context propagation, resource attribution and the
    journal all off, the pipeline must stay inside the PR4 gate —
    the PR10 hooks add no work to the unobserved path."""
    baseline = run_pipeline_runlog(None, None)
    disabled = run_pipeline_runlog(Tracer(enabled=False), None)
    ratio = disabled / baseline
    REPORT10["run_tracing_overhead"] = {
        "baseline_ms": baseline * 1000,
        "disabled_ms": disabled * 1000,
        "disabled_ratio": ratio,
        "limit": OVERHEAD_LIMIT,
        "quick": BENCH_QUICK,
    }
    assert ratio < OVERHEAD_LIMIT, (
        f"disabled run tracing slowed the pipeline by "
        f"{(ratio - 1) * 100:.1f}% (limit {OVERHEAD_LIMIT})"
    )


def test_observed_run_with_journal_cost_is_bounded():
    """The fully-observed path — spans with CPU attribution, trace
    context, a run-history record with the trace payload — must stay
    well under the EXPLAIN ANALYZE class of cost."""
    baseline = run_pipeline_runlog(None, None)
    tracer = Tracer(enabled=True)
    runlog = RunLog()
    observed = run_pipeline_runlog(
        tracer, runlog, rounds=max(1, ROUNDS // 2)
    )
    records = runlog.list(kind="mine")
    assert records, "observed runs never reached the journal"
    last = records[-1]
    assert last["status"] == "ok"
    assert last["cpu_seconds"] >= 0.0
    assert "core" in last["stages"]
    assert any(span.cpu is not None for span in tracer.spans)
    REPORT10["run_tracing_observed"] = {
        "baseline_ms": baseline * 1000,
        "observed_ms": observed * 1000,
        "observed_ratio": observed / baseline,
        "journal_records": len(runlog),
    }
    assert observed / baseline < 3.0


def test_memory_profiling_cost_is_bounded():
    """tracemalloc attribution is opt-in because it is expensive —
    roughly 10x on this allocation-heavy pipeline.  Record how
    expensive, and keep it from regressing past ~2x its measured
    cost."""
    from repro.obs import profile

    baseline = run_pipeline_runlog(None, None)
    tracer = Tracer(enabled=True, profile_mem=True)
    try:
        profiled = run_pipeline_runlog(tracer, None, rounds=1)
    finally:
        profile.stop_memory_tracking()
    assert any(
        span.peak_bytes is not None for span in tracer.spans
    ), "memory profiling attributed no peaks"
    REPORT10["profile_mem"] = {
        "baseline_ms": baseline * 1000,
        "profiled_ms": profiled * 1000,
        "profiled_ratio": profiled / baseline,
    }
    assert profiled / baseline < 20.0
