"""SYN-8 — scale-up with database size.

The algorithm papers behind the core operator all report the
"execution time vs number of transactions" figure; this experiment
reproduces its shape for the *whole* tightly-coupled pipeline: with a
fixed support fraction, time should grow near-linearly in |D| (the
per-group work is constant; the encode joins and the gid-list
intersections are linear scans at fixed selectivity).
"""

import time

import pytest

from repro import MiningSystem
from repro.datagen import QuestParameters, load_quest
from repro.sqlengine import Database

SIZES = (100, 200, 400)

STATEMENT = """
MINE RULE Scale AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.4
"""


def run_at_size(transactions: int):
    db = Database()
    load_quest(
        db,
        QuestParameters(
            transactions=transactions,
            avg_transaction_size=7,
            avg_pattern_size=3,
            patterns=40,
            items=100,
            seed=5,
        ),
    )
    system = MiningSystem(database=db, reuse_preprocessing=False)
    started = time.perf_counter()
    result = system.execute(STATEMENT)
    elapsed = time.perf_counter() - started
    return elapsed, result


def test_syn8_scaleup_shape():
    timings = []
    for size in SIZES:
        elapsed, result = run_at_size(size)
        timings.append((size, elapsed, len(result.rules)))
    print("\nSYN-8 scale-up (|D|, seconds, rules):")
    for size, elapsed, rules in timings:
        print(f"  {size:>5}  {elapsed:7.3f}s  {rules:>5}")
    # shape: growing |D| must not be sub-linear by much nor explode:
    # quadrupling the data should cost between 1.5x and ~16x
    ratio = timings[-1][1] / max(timings[0][1], 1e-9)
    assert 1.2 < ratio < 30, ratio


@pytest.mark.parametrize("size", SIZES)
def test_syn8_pipeline_at_size(benchmark, size):
    db = Database()
    load_quest(
        db,
        QuestParameters(
            transactions=size,
            avg_transaction_size=7,
            avg_pattern_size=3,
            patterns=40,
            items=100,
            seed=5,
        ),
    )
    system = MiningSystem(database=db, reuse_preprocessing=False)
    result = benchmark.pedantic(
        lambda: system.execute(STATEMENT), rounds=3, iterations=1
    )
    assert result.rules
