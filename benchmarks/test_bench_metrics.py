"""SYN-7 — post-hoc rule-quality measures (extension).

Lift/leverage/conviction are computed from CodedSource after mining,
without touching the source table — the follow-up analysis that is
only possible because the encoded tables live in the DBMS.  The bench
measures that cost relative to the mining run itself.
"""

import math

import pytest

from repro import MiningSystem

STATEMENT = """
MINE RULE Measured AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.3
"""


@pytest.fixture(scope="module")
def executed(request):
    from repro.sqlengine import Database
    from repro.datagen import QuestParameters, load_quest

    db = Database()
    load_quest(
        db,
        QuestParameters(transactions=400, avg_transaction_size=8,
                        patterns=60, items=120, seed=77),
    )
    system = MiningSystem(database=db, reuse_preprocessing=False)
    result = system.execute(STATEMENT)
    return system, result


def test_syn7_metrics_cost(benchmark, executed):
    system, result = executed
    metrics = benchmark(
        lambda: system.compute_metrics(result, store=False)
    )
    assert len(metrics) == len(result.rules)


def test_syn7_measures_are_consistent(executed):
    system, result = executed
    metrics = system.compute_metrics(result, store=True)
    totg = system.db.variables["totg"]
    for m in metrics:
        head_support = m.head_count / totg
        assert math.isclose(m.lift * head_support, m.rule.confidence,
                            rel_tol=1e-9)
        body_support = m.rule.body_count / totg
        assert math.isclose(
            m.leverage,
            m.rule.support - body_support * head_support,
            abs_tol=1e-12,
        )
    # persisted and joinable
    joined = system.db.execute(
        "SELECT COUNT(*) FROM Measured R, Measured_Metrics X "
        "WHERE R.BodyId = X.BodyId AND R.HeadId = X.HeadId"
    ).scalar()
    assert joined == len(result.rules)


def test_syn7_high_lift_rules_exist(executed):
    """On pattern-generated Quest data some rules must beat
    independence clearly (lift > 1.5) — the measure separates pattern
    co-occurrence from popularity."""
    system, result = executed
    metrics = system.compute_metrics(result, store=False)
    lifts = sorted((m.lift for m in metrics), reverse=True)
    print(f"\nSYN-7 lift distribution: max={lifts[0]:.2f} "
          f"median={lifts[len(lifts) // 2]:.2f}")
    assert lifts[0] > 1.5
