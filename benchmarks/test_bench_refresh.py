"""PR9 — FUP-style incremental refresh vs full re-mine.

One scenario, asserted and recorded to ``BENCH_PR9.json``: mine the
synthetic retail workload (400k transaction groups in full mode),
capture the refresh state, append a 5% batch of concept-drift
transactions, and bring the rule table up to date both ways:

* ``REFRESH RULES`` — one DISTINCT pairs scan + delta maintenance of
  the recorded counts; border-crossing itemsets recount on in-memory
  bitmaps;
* full re-mine — the whole Q0..Q11 preprocessing pipeline, core and
  postprocessor from scratch on the appended table.

The refreshed output tables must be **bit-identical** to the full
re-mine's, and the refresh must clear the PR's 3x acceptance floor.
``BENCH_QUICK=1`` shrinks the workload below any honest floor, so
quick mode only asserts bit-identity and records the numbers.
"""

import time

from benchmarks.conftest import BENCH_QUICK, bench_report
from repro import Database, MiningSystem
from repro.datagen import iter_drift_appends, load_purchase_synthetic

REPORT, write_report = bench_report("BENCH_PR9.json")

if BENCH_QUICK:
    WORKLOAD = dict(
        customers=1_000, days=10, transactions_per_customer=4,
        items_per_transaction=4, catalog_size=60, seed=19,
    )
    SPEEDUP_FLOOR = 0.0
else:
    WORKLOAD = dict(
        customers=100_000, days=10, transactions_per_customer=4,
        items_per_transaction=4, catalog_size=60, seed=19,
    )
    SPEEDUP_FLOOR = 3.0

#: appended transactions: 5% of the base group count
APPEND_FRACTION = 0.05

STATEMENT = (
    "MINE RULE RefreshBench AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY tr "
    "EXTRACTING RULES WITH SUPPORT: 0.02, CONFIDENCE: 0.2"
)


def _delta_rows():
    base_groups = (
        WORKLOAD["customers"] * WORKLOAD["transactions_per_customer"]
    )
    append_groups = int(base_groups * APPEND_FRACTION)
    return [
        row
        for batch in iter_drift_appends(
            batches=1,
            transactions_per_batch=append_groups,
            items_per_transaction=WORKLOAD["items_per_transaction"],
            catalog_size=WORKLOAD["catalog_size"],
            seed=23,
            start_tr=base_groups,
        )
        for row in batch
    ]


def _dump(system, out="RefreshBench"):
    tables = []
    for suffix in ("", "_Bodies", "_Heads", "_Display"):
        table = system.db.catalog.get_table(out + suffix)
        tables.append((tuple(table.columns),
                       [tuple(row) for row in table.rows]))
    return tables


class TestIncrementalRefreshSpeedup:
    def test_refresh_vs_full_remine_on_5pct_append(self):
        database = Database()
        load_purchase_synthetic(database, **WORKLOAD)
        system = MiningSystem(database=database)
        system.run(STATEMENT)
        system.refresh("RefreshBench")  # capture state

        delta = _delta_rows()
        purchase = database.catalog.get_table("Purchase")
        for row in delta:
            purchase.insert(list(row))

        started = time.perf_counter()
        refreshed = system.refresh("RefreshBench")
        refresh_seconds = time.perf_counter() - started
        assert refreshed.stats.mode == "incremental"
        assert refreshed.stats.delta_rows == len(delta)
        refreshed_dump = _dump(system)

        # full re-mine of the appended table, preprocessing cold
        system.invalidate_preprocessing()
        started = time.perf_counter()
        full = system.run(STATEMENT)
        full_seconds = time.perf_counter() - started
        assert full.rules

        assert _dump(system) == refreshed_dump  # bit-identical

        speedup = full_seconds / max(refresh_seconds, 1e-9)
        REPORT["incremental_refresh"] = {
            "workload": WORKLOAD,
            "quick": BENCH_QUICK,
            "base_groups": refreshed.stats.totg
            - refreshed.stats.new_groups,
            "appended_rows": len(delta),
            "append_fraction": APPEND_FRACTION,
            "delta_pairs": refreshed.stats.delta_pairs,
            "recounted_itemsets": refreshed.stats.recounted_itemsets,
            "frequent_itemsets": refreshed.stats.frequent_itemsets,
            "rules": len(refreshed.rules),
            "seconds": {
                "refresh": round(refresh_seconds, 6),
                "full_remine": round(full_seconds, 6),
            },
            "speedup": round(speedup, 2),
            "bit_identical": True,
        }
        assert speedup >= SPEEDUP_FLOOR, (
            f"refresh speedup {speedup:.2f}x under the "
            f"{SPEEDUP_FLOOR}x floor "
            f"(refresh {refresh_seconds:.2f}s, "
            f"full {full_seconds:.2f}s)"
        )
