"""SYN-4 — preprocessing reuse.

Section 3: "the same preprocessing could be in common to the execution
of several data mining queries, thus saving its cost."  The experiment
measures a cold execution (full Q0..Q4 preprocessing) against a warm
one (encoded tables reused; only core + postprocessing run).
"""

import pytest

from repro import MiningSystem

STATEMENT = """
MINE RULE Warm{n} AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: {confidence}
"""


def test_syn4_warm_run_skips_preprocessing(quest_db):
    system = MiningSystem(database=quest_db, reuse_preprocessing=True)
    cold = system.execute(STATEMENT.format(n=1, confidence=0.3))
    warm = system.execute(STATEMENT.format(n=2, confidence=0.5))
    assert not cold.preprocessing_reused
    assert warm.preprocessing_reused
    assert warm.preprocess_stats is None
    # warm preprocessor phase must be much cheaper than cold
    assert warm.timings["preprocessor"] < cold.timings["preprocessor"]
    print(
        f"\nSYN-4 preprocessor phase: cold "
        f"{cold.timings['preprocessor'] * 1000:.1f} ms, warm "
        f"{warm.timings['preprocessor'] * 1000:.1f} ms"
    )


def test_syn4_cold(benchmark, quest_db):
    system = MiningSystem(database=quest_db, reuse_preprocessing=False)
    counter = iter(range(10_000))

    def run():
        return system.execute(
            STATEMENT.format(n=next(counter), confidence=0.3)
        )

    result = benchmark(run)
    assert result.rules


def test_syn4_warm(benchmark, quest_db):
    system = MiningSystem(database=quest_db, reuse_preprocessing=True)
    system.execute(STATEMENT.format(n=0, confidence=0.3))  # prime the cache
    counter = iter(range(1, 10_000))

    def run():
        return system.execute(
            STATEMENT.format(n=next(counter), confidence=0.3)
        )

    result = benchmark(run)
    assert result.preprocessing_reused


def test_syn4_per_query_cost_breakdown(quest_db):
    """Cost of the individual Q queries (printed for EXPERIMENTS.md)."""
    system = MiningSystem(database=quest_db, reuse_preprocessing=False)
    result = system.execute(STATEMENT.format(n=99, confidence=0.3))
    stats = result.preprocess_stats
    print("\nSYN-4 per-query preprocessing cost (ms):")
    for label, seconds in stats.query_seconds.items():
        print(f"  {label:<5} {seconds * 1000:8.2f}")
    print(f"  totg={stats.totg}, mingroups={stats.mingroups}")
    assert stats.totg == 400
    # Q4 (the 3-way encode join) dominates Q1 (a distinct count)
    assert stats.query_seconds["Q4"] > 0
