"""PR7 — columnar storage + the vectorized batch executor.

Two scenarios, asserted (a wrong speedup ratio, a rule mismatch or a
non-identical spill run fails, not just slows down) and recorded to
``BENCH_PR7.json``:

a) **Columnar preprocessing speedup**: the full Q0..Q11 translation
   program of the paper's general MINE RULE statement (mining
   condition + CLUSTER BY + source condition) on a synthetic retail
   Purchase workload, run end-to-end columnar (source table and
   encoded tables as column vectors, vectorized executor) against the
   row layout.  Bit-identical rule lists, and the columnar run must
   clear the PR's 2x acceptance floor on preprocessing wall time
   (sum of the Q0..Q11 query seconds).  Timings are best-of-N.
b) **Spill run**: the same statement under a capped
   ``memory_budget`` small enough that the vectorized sort /
   join / aggregate operators go out-of-core.  The run must stay
   bit-identical — same rules, same golden dumps of the output
   tables — and a probe aggregation must actually report
   ``spill_bytes`` in EXPLAIN ANALYZE.

``BENCH_QUICK=1`` (the CI smoke mode) shrinks the workload below any
honest vectorization threshold, so quick mode only asserts
bit-identity and records the measured numbers.
"""

import math

from benchmarks.conftest import BENCH_QUICK, bench_report
from repro import Database, MiningSystem
from repro.datagen import load_purchase_synthetic
from repro.sqlengine import EngineOptions
from repro.sqlengine.dump import dump_table_text

REPORT, write_report = bench_report("BENCH_PR7.json")

#: the paper's general statement — its translation program emits the
#: full Q0..Q11 sequence (source condition, clustering, mining
#: condition, the encode joins and the couples/rules queries)
STATEMENT = """
MINE RULE FilteredSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.1
"""

if BENCH_QUICK:
    CUSTOMERS = 120
    RUNS = 1
    SPEEDUP_FLOOR = 0.0
else:
    CUSTOMERS = 1_600
    RUNS = 3
    SPEEDUP_FLOOR = 2.0
DAYS = 20
TRANSACTIONS = 5
ITEMS_PER_TRANSACTION = 5
CATALOG = 150
#: small enough to push the big encode joins and sorts out-of-core at
#: both scales, large enough that tiny working tables stay in memory
SPILL_BUDGET = 16_000 if BENCH_QUICK else 64_000


def _load(storage):
    database = Database(options=EngineOptions(storage=storage))
    load_purchase_synthetic(
        database,
        customers=CUSTOMERS,
        days=DAYS,
        transactions_per_customer=TRANSACTIONS,
        items_per_transaction=ITEMS_PER_TRANSACTION,
        catalog_size=CATALOG,
        seed=7,
    )
    return database


def _output_dumps(database, result):
    out = result.output_table
    return {
        table: dump_table_text(database, table)
        for table in (
            out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"
        )
        if database.catalog.has_table(table)
    }


def _run(storage, **system_kw):
    """One cold end-to-end run; returns (preprocess seconds, per-query
    seconds, rules, output dumps, database)."""
    database = _load(storage)
    system = MiningSystem(
        database=database,
        storage=storage,
        reuse_preprocessing=False,
        **system_kw,
    )
    result = system.run(STATEMENT)
    stats = result.preprocess_stats
    return (
        stats.total_seconds,
        dict(stats.query_seconds),
        result.rules,
        _output_dumps(database, result),
        database,
    )


def _best_of(storage, runs, **system_kw):
    best = math.inf
    best_queries = rules = dumps = database = None
    for _ in range(runs):
        seconds, queries, rules, dumps, database = _run(
            storage, **system_kw
        )
        if seconds < best:
            best, best_queries = seconds, queries
    return best, best_queries, rules, dumps, database


class TestColumnarPreprocessingSpeedup:
    def test_columnar_vs_row_q0_q11(self):
        row_seconds, row_queries, row_rules, row_dumps, _ = _best_of(
            "row", RUNS
        )
        col_seconds, col_queries, col_rules, col_dumps, _ = _best_of(
            "columnar", RUNS
        )

        # the whole point: bit-identical to the row pipeline
        assert col_rules == row_rules
        assert col_dumps == row_dumps
        speedup = row_seconds / col_seconds

        REPORT["columnar_preprocessing"] = {
            "workload": {
                "customers": CUSTOMERS,
                "days": DAYS,
                "transactions_per_customer": TRANSACTIONS,
                "items_per_transaction": ITEMS_PER_TRANSACTION,
                "catalog_size": CATALOG,
            },
            "quick": BENCH_QUICK,
            "runs": RUNS,
            "queries": sorted(row_queries),
            "rules": len(row_rules),
            "seconds": {
                "row": round(row_seconds, 6),
                "columnar": round(col_seconds, 6),
            },
            "query_seconds": {
                label: {
                    "row": round(row_queries[label], 6),
                    "columnar": round(col_queries[label], 6),
                }
                for label in sorted(row_queries)
            },
            "speedup": round(speedup, 2),
        }
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar preprocessing speedup only {speedup:.2f}x "
            f"(floor {SPEEDUP_FLOOR}x)"
        )

    def test_spill_run_stays_bit_identical(self):
        col_seconds, _, col_rules, col_dumps, _ = _best_of("columnar", 1)
        spill_seconds, _, spill_rules, spill_dumps, database = _run(
            "columnar", memory_budget=SPILL_BUDGET
        )

        assert spill_rules == col_rules
        assert spill_dumps == col_dumps

        # the budget must actually force the operators out-of-core:
        # a representative aggregation over the source table reports
        # non-zero spill_bytes under EXPLAIN ANALYZE
        analysis = database.analyze(
            "SELECT customer, COUNT(*) FROM Purchase "
            "GROUP BY customer ORDER BY customer"
        )
        spill_bytes = sum(
            node.get("spill_bytes", 0)
            for node in analysis.nodes
            if node.get("vectorized")
        )
        assert spill_bytes > 0, analysis.text

        REPORT["spill_run"] = {
            "quick": BENCH_QUICK,
            "memory_budget": SPILL_BUDGET,
            "seconds": {
                "in_memory": round(col_seconds, 6),
                "spill": round(spill_seconds, 6),
            },
            "probe_spill_bytes": spill_bytes,
            "bit_identical": True,
        }
