"""SYN-6 — ablations of the design choices DESIGN.md calls out.

a) Planner: hash joins and filter pushdown off vs. on, measured on the
   query shape of Q4 (the dominant preprocessing query).
b) General core: the paper's smaller-parent heuristic vs. always-body /
   always-head parents (Section 4.3.2's efficiency note), measured as
   join pairs examined.
c) Algorithm parameters: DHP bucket count, Partition count, sampling
   fraction — exactness asserted, cost measured.
"""

import math

import pytest

from repro.algorithms import get_algorithm
from repro.datagen import QuestParameters, generate_quest, load_quest
from repro.sqlengine import Database, EngineOptions

ROWS = 3_000
GROUPS = 150


def build_star(options=None):
    db = Database(options) if options else Database()
    db.execute("CREATE TABLE facts (gid INTEGER, item VARCHAR)")
    facts = db.table("facts")
    for i in range(ROWS):
        facts.insert((i % GROUPS, f"item{i % 83}"))
    db.execute("CREATE TABLE dim (gid INTEGER)")
    dim = db.table("dim")
    for g in range(GROUPS):
        dim.insert((g,))
    db.execute("CREATE TABLE items (item VARCHAR)")
    items = db.table("items")
    for i in range(83):
        items.insert((f"item{i}",))
    return db


Q4_SHAPE = (
    "SELECT DISTINCT d.gid, i.item FROM facts f, dim d, items i "
    "WHERE f.gid = d.gid AND f.item = i.item"
)


class TestPlannerAblation:
    def test_syn6a_results_agree(self):
        fast = build_star()
        slow = build_star(EngineOptions(hash_joins=False))
        assert sorted(fast.query(Q4_SHAPE)) == sorted(slow.query(Q4_SHAPE))

    def test_syn6a_hash_joins(self, benchmark):
        db = build_star()
        rows = benchmark(lambda: db.query(Q4_SHAPE))
        assert rows

    @pytest.mark.slow
    def test_syn6a_nested_loops(self, benchmark):
        db = build_star(EngineOptions(hash_joins=False))
        # one round is enough: this is orders of magnitude slower
        rows = benchmark.pedantic(
            lambda: db.query(Q4_SHAPE), rounds=1, iterations=1
        )
        assert rows


class TestLatticeHeuristicAblation:
    @pytest.fixture(scope="class")
    def lattice_inputs(self):
        from repro.kernel.core.inputs import GeneralInput

        baskets = generate_quest(
            QuestParameters(transactions=120, avg_transaction_size=6,
                            items=40, patterns=20, seed=31)
        )
        body = {gid: {0: set(items)} for gid, items in baskets.items()}
        return GeneralInput(
            totg=len(baskets),
            min_count=max(1, math.ceil(0.05 * len(baskets))),
            same_schema=True,
            clustered=False,
            body_items=body,
            head_items=body,
            cluster_pairs=None,
            elementary=None,
        )

    @pytest.fixture(scope="class")
    def core_directives(self):
        from repro.kernel.program import CoreDirectives

        return CoreDirectives(
            simple=False,
            same_schema=True,
            clustered=False,
            cluster_condition=False,
            mining_condition=False,
            coded_source="cs",
            cluster_couples=None,
            input_rules=None,
            min_support=0.05,
            min_confidence=0.0,
            body_card=(1, 3),
            head_card=(1, 3),
        )

    def test_syn6b_strategies_agree(self, lattice_inputs, core_directives):
        from repro.kernel.core.general import GeneralCoreOperator

        results = {}
        work = {}
        for strategy in ("smaller", "body", "head"):
            operator = GeneralCoreOperator(parent_strategy=strategy)
            rules = operator.run(lattice_inputs, core_directives)
            results[strategy] = {
                (tuple(sorted(r.body)), tuple(sorted(r.head)),
                 r.support_count)
                for r in rules
            }
            work[strategy] = operator.join_pairs_examined
        assert results["smaller"] == results["body"] == results["head"]
        print(f"\nSYN-6b join pairs examined: {work}")
        # the paper's heuristic never does more work than the worst
        # fixed choice
        assert work["smaller"] <= max(work["body"], work["head"])

    @pytest.mark.parametrize("strategy", ["smaller", "body", "head"])
    def test_syn6b_lattice_time(
        self, benchmark, lattice_inputs, core_directives, strategy
    ):
        from repro.kernel.core.general import GeneralCoreOperator

        operator = GeneralCoreOperator(parent_strategy=strategy)
        rules = benchmark(
            lambda: operator.run(lattice_inputs, core_directives)
        )
        assert rules


BASKETS = generate_quest(
    QuestParameters(transactions=300, avg_transaction_size=7,
                    items=100, patterns=40, seed=55)
)
MIN_COUNT = max(1, math.ceil(0.05 * len(BASKETS)))
REFERENCE = get_algorithm("apriori").mine(BASKETS, MIN_COUNT)


class TestAlgorithmParameterAblations:
    @pytest.mark.parametrize("buckets", [16, 256, 4096])
    def test_syn6c_dhp_bucket_sweep(self, benchmark, buckets):
        miner = get_algorithm("dhp", buckets=buckets)
        counts = benchmark(lambda: miner.mine(BASKETS, MIN_COUNT))
        assert counts == REFERENCE

    @pytest.mark.parametrize("partitions", [2, 4, 8])
    def test_syn6c_partition_sweep(self, benchmark, partitions):
        miner = get_algorithm("partition", partitions=partitions)
        counts = benchmark(lambda: miner.mine(BASKETS, MIN_COUNT))
        assert counts == REFERENCE

    @pytest.mark.parametrize("fraction", [0.25, 0.5, 0.75])
    def test_syn6c_sampling_fraction_sweep(self, benchmark, fraction):
        miner = get_algorithm("sampling", sample_fraction=fraction, seed=7)
        counts = benchmark(lambda: miner.mine(BASKETS, MIN_COUNT))
        assert counts == REFERENCE
