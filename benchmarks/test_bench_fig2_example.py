"""FIG2 — regenerate Figure 2: the paper's worked example.

Figure 2a: the Purchase table grouped by customer, clustered by date.
Figure 2b: the FilteredOrderedSets output table (the acceptance
artifact of the whole reproduction — exact rules, exact support and
confidence values).

The benchmark measures the full MINE RULE execution of the statement.
"""

import datetime

from benchmarks.conftest import fresh_system

EXPECTED_FIG2B = {
    ("{brown_boots}", "{col_shirts}", 0.5, 1.0),
    ("{jackets}", "{col_shirts}", 0.5, 0.5),
    ("{brown_boots,jackets}", "{col_shirts}", 0.5, 1.0),
}


def test_fig2a_grouping_and_clustering(purchase_db):
    rows = purchase_db.query(
        "SELECT customer, date, COUNT(*) FROM Purchase "
        "GROUP BY customer, date ORDER BY customer, date"
    )
    assert rows == [
        ("cust1", datetime.date(1995, 12, 17), 2),
        ("cust1", datetime.date(1995, 12, 18), 1),
        ("cust2", datetime.date(1995, 12, 18), 3),
        ("cust2", datetime.date(1995, 12, 19), 2),
    ]
    print("\nFigure 2a: groups (customer) and clusters (date)")
    for customer, date, count in rows:
        print(f"  {customer}  {date}  ({count} tuples)")


def test_fig2b_exact_output(purchase_db, paper_statement):
    system = fresh_system(purchase_db)
    result = system.execute(paper_statement)
    display = set(
        purchase_db.query(
            "SELECT BODY, HEAD, SUPPORT, CONFIDENCE "
            "FROM FilteredOrderedSets_Display"
        )
    )
    assert display == EXPECTED_FIG2B
    assert len(result.rules) == 3
    print("\nFigure 2b: FilteredOrderedSets")
    print(purchase_db.table("FilteredOrderedSets_Display").pretty())


def test_fig2b_full_pipeline(benchmark, purchase_db, paper_statement):
    system = fresh_system(purchase_db)

    def run():
        return system.execute(paper_statement)

    result = benchmark(run)
    assert len(result.rules) == 3


def test_fig2b_phase_breakdown(purchase_db, paper_statement):
    """Where the time goes (translator vs SQL vs core), printed for
    EXPERIMENTS.md."""
    system = fresh_system(purchase_db)
    result = system.execute(paper_statement)
    print("\nphase timings (ms):")
    for component, seconds in result.timings.items():
        print(f"  {component:<14} {seconds * 1000:8.2f}")
    assert set(result.timings) == {
        "translator", "preprocessor", "core", "postprocessor",
    }
