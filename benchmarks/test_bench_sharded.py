"""PR6 — the sharded executor and the packed-word bitset layout.

Two scenarios, asserted (a wrong speedup ratio or a rule mismatch
fails, not just slows down) and recorded to ``BENCH_PR6.json``:

a) **Sharded speedup**: the Partition-style sharded miner
   (``workers=2``/``workers=4``, packed representation — the
   ``workers=N`` system default) against the serial big-int core
   (``workers=1`` default) on a large Quest workload (>= 100k groups).
   Bit-identical rule lists, and ``workers=4`` must clear the PR's
   1.6x acceptance floor.  Timings are best-of-N: on a small CPU
   budget a single sharded run can be dominated by fork/scheduler
   noise, and the floor gates algorithmic speedup, not scheduler luck.
b) **Packed vs big-int Apriori**: the PR2 pool bench's Apriori
   gid-list switch, re-run with the packed word-array layout on a
   workload large enough to clear ``PACKED_MIN_SLOTS`` so the numpy
   kernels actually engage.  Identical ``ItemsetCounts`` and the
   packed layout must not be slower than the big-int one.

``BENCH_QUICK=1`` (the CI smoke mode) shrinks both workloads below
any honest parallelism threshold, so quick mode only asserts
bit-identity and records the measured numbers.
"""

import math
import os
import time

from benchmarks.conftest import BENCH_QUICK, bench_report
from repro.algorithms import get_algorithm
from repro.algorithms.bitset import PACKED_MIN_SLOTS, packed_kernels_enabled
from repro.datagen import QuestParameters, iter_baskets
from repro.kernel.core.inputs import SimpleInput
from repro.kernel.core.simple import SimpleCoreOperator
from repro.kernel.program import CoreDirectives
from repro.parallel import ShardedMiner

REPORT, write_report = bench_report("BENCH_PR6.json")

if BENCH_QUICK:
    SHARD_QUEST = QuestParameters(
        transactions=6_000, avg_transaction_size=10,
        avg_pattern_size=4, patterns=30, items=400, seed=11,
    )
    SHARD_RUNS = 1
    SPEEDUP_FLOORS = {2: 0.0, 4: 0.0}
    APRIORI_QUEST = QuestParameters(
        transactions=5_000, avg_transaction_size=8,
        avg_pattern_size=3, patterns=40, items=150, seed=77,
    )
    APRIORI_RUNS = 1
    PACKED_TOLERANCE = 2.0
else:
    SHARD_QUEST = QuestParameters(
        transactions=400_000, avg_transaction_size=10,
        avg_pattern_size=4, patterns=30, items=400, seed=11,
    )
    SHARD_RUNS = 3
    SPEEDUP_FLOORS = {2: 1.3, 4: 1.6}
    APRIORI_QUEST = QuestParameters(
        transactions=60_000, avg_transaction_size=8,
        avg_pattern_size=3, patterns=40, items=150, seed=77,
    )
    APRIORI_RUNS = 3
    PACKED_TOLERANCE = 1.05
SHARD_SUPPORT = 0.03
APRIORI_SUPPORT = 0.02


def _best_of(fn, runs):
    best = math.inf
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _directives():
    return CoreDirectives(
        simple=True, same_schema=True, clustered=False,
        cluster_condition=False, mining_condition=False,
        coded_source="CS", cluster_couples=None, input_rules=None,
        min_support=0.0, min_confidence=0.4,
        body_card=(1, None), head_card=(1, 1),
    )


def _load_shard_input():
    groups = {}
    for chunk in iter_baskets(SHARD_QUEST, chunk_size=50_000):
        groups.update(chunk)
    min_count = max(1, math.ceil(SHARD_SUPPORT * len(groups)))
    return SimpleInput(totg=len(groups), min_count=min_count,
                       groups=groups)


class TestShardedSpeedup:
    def test_workers4_vs_serial(self):
        data = _load_shard_input()
        directives = _directives()

        serial_op = SimpleCoreOperator(
            get_algorithm("apriori", representation="bitset")
        )
        serial_seconds, serial_rules = _best_of(
            lambda: serial_op.run(data, directives), SHARD_RUNS
        )

        seconds = {"workers1": serial_seconds}
        speedups = {}
        for workers in (2, 4):
            miner = ShardedMiner(workers=workers, start_method="fork")
            sharded_seconds, (rules, stats) = _best_of(
                lambda m=miner: m.mine_simple(
                    data,
                    directives,
                    get_algorithm("apriori", representation="packed"),
                ),
                SHARD_RUNS,
            )
            # the whole point: bit-identical to the serial core
            assert rules == serial_rules
            assert stats.shards == workers
            seconds[f"workers{workers}"] = sharded_seconds
            speedups[f"workers{workers}"] = serial_seconds / sharded_seconds

        REPORT["sharded_speedup"] = {
            "workload": {
                "transactions": SHARD_QUEST.transactions,
                "avg_transaction_size": SHARD_QUEST.avg_transaction_size,
                "items": SHARD_QUEST.items,
                "min_count": data.min_count,
            },
            "quick": BENCH_QUICK,
            "cpus": os.cpu_count(),
            "groups": data.totg,
            "rules": len(serial_rules),
            "runs": SHARD_RUNS,
            "seconds": {k: round(v, 6) for k, v in seconds.items()},
            "speedup": {k: round(v, 2) for k, v in speedups.items()},
        }
        for workers, floor in SPEEDUP_FLOORS.items():
            assert speedups[f"workers{workers}"] >= floor, (
                f"workers={workers} speedup only "
                f"{speedups[f'workers{workers}']:.2f}x (floor {floor}x)"
            )


class TestPackedVsBigintApriori:
    def test_packed_layout_not_slower(self):
        baskets = {}
        for chunk in iter_baskets(APRIORI_QUEST, chunk_size=50_000):
            baskets.update(chunk)
        min_count = max(
            1, math.ceil(APRIORI_SUPPORT * len(baskets))
        )
        kernels = packed_kernels_enabled(len(baskets))
        miners = {
            "apriori_bitset": get_algorithm(
                "apriori", representation="bitset"
            ),
            "apriori_packed": get_algorithm(
                "apriori", representation="packed"
            ),
        }
        seconds, counts = {}, {}
        for label, miner in miners.items():
            seconds[label], counts[label] = _best_of(
                lambda m=miner: m.mine(baskets, min_count), APRIORI_RUNS
            )
        assert counts["apriori_packed"] == counts["apriori_bitset"]

        ratio = seconds["apriori_packed"] / seconds["apriori_bitset"]
        REPORT["packed_vs_bigint"] = {
            "workload": {
                "transactions": APRIORI_QUEST.transactions,
                "avg_transaction_size": APRIORI_QUEST.avg_transaction_size,
                "items": APRIORI_QUEST.items,
                "min_count": min_count,
            },
            "quick": BENCH_QUICK,
            "packed_kernels_engaged": kernels,
            "frequent_itemsets": len(counts["apriori_bitset"]),
            "seconds": {k: round(v, 6) for k, v in seconds.items()},
            "packed_vs_bigint_ratio": round(ratio, 3),
        }
        # acceptance: the packed layout must not lose to big-int
        assert ratio <= PACKED_TOLERANCE, (
            f"packed Apriori {ratio:.2f}x slower than big-int"
        )
