"""FIG1 — regenerate the Purchase table of Figure 1.

The experiment asserts the exact eight tuples of the paper and
benchmarks loading/scanning the table through the SQL engine.
"""

import datetime

from repro import Database
from repro.datagen import figure1_rows, load_purchase_figure1

EXPECTED = [
    (1, "cust1", "ski_pants", datetime.date(1995, 12, 17), 140.0, 1),
    (1, "cust1", "hiking_boots", datetime.date(1995, 12, 17), 180.0, 1),
    (2, "cust2", "col_shirts", datetime.date(1995, 12, 18), 25.0, 2),
    (2, "cust2", "brown_boots", datetime.date(1995, 12, 18), 150.0, 1),
    (2, "cust2", "jackets", datetime.date(1995, 12, 18), 300.0, 1),
    (3, "cust1", "jackets", datetime.date(1995, 12, 18), 300.0, 1),
    (4, "cust2", "col_shirts", datetime.date(1995, 12, 19), 25.0, 3),
    (4, "cust2", "jackets", datetime.date(1995, 12, 19), 300.0, 2),
]


def test_fig1_rows_match_paper_exactly():
    assert figure1_rows() == EXPECTED


def test_fig1_load_and_scan(benchmark):
    def load_and_scan():
        db = Database()
        load_purchase_figure1(db)
        return db.query("SELECT tr, customer, item, date, price, qty "
                        "FROM Purchase")

    rows = benchmark(load_and_scan)
    assert rows == EXPECTED


def test_fig1_print_table(purchase_db):
    """Regenerates the printed Figure 1 (visible with pytest -s)."""
    table = purchase_db.table("Purchase")
    rendered = table.pretty()
    print("\nFigure 1: the Purchase table")
    print(rendered)
    assert rendered.count("\n") >= 11  # 8 rows + frame
    for item in ("ski_pants", "hiking_boots", "col_shirts", "brown_boots",
                 "jackets"):
        assert item in rendered
