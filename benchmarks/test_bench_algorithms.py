"""SYN-2 — the algorithm pool on simple rules (algorithm
interoperability, Section 3).

In the spirit of the evaluations in the cited algorithm papers
(Apriori, DHP, Partition, sampling), the pool runs on one Quest
workload across a support sweep: every algorithm must return the
identical rule set; only core-operator time differs.
"""

import math

import pytest

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.datagen import QuestParameters, generate_quest

PARAMS = QuestParameters(
    transactions=400,
    avg_transaction_size=8,
    avg_pattern_size=3,
    patterns=60,
    items=120,
    seed=77,
)

BASKETS = generate_quest(PARAMS)
SUPPORTS = [0.02, 0.05, 0.10]

#: the real pool — the exhaustive oracle is excluded (exponential) and
#: "auto" only delegates to one of the members below
POOL = [
    name
    for name in sorted(ALGORITHMS)
    if name not in ("exhaustive", "auto")
]


def min_count(fraction):
    return max(1, math.ceil(fraction * len(BASKETS) - 1e-9))


@pytest.mark.parametrize("name", POOL)
def test_syn2_pool_agreement_across_support_sweep(name):
    reference = get_algorithm("apriori")
    candidate = get_algorithm(name)
    for fraction in SUPPORTS:
        threshold = min_count(fraction)
        assert candidate.mine(BASKETS, threshold) == reference.mine(
            BASKETS, threshold
        ), f"{name} diverges at support {fraction}"


@pytest.mark.parametrize("name", POOL)
def test_syn2_core_time(benchmark, name):
    """Per-algorithm core time at the middle support level."""
    miner = get_algorithm(name)
    threshold = min_count(0.05)
    counts = benchmark(lambda: miner.mine(BASKETS, threshold))
    assert counts


def test_syn2_print_sweep():
    """Frequent-itemset counts per support level (series for
    EXPERIMENTS.md — the classic 'candidates vs support' curve)."""
    print(f"\nSYN-2 sweep on {PARAMS.name()}:")
    print(f"{'support':>8} {'min_count':>10} {'itemsets':>9}")
    reference = get_algorithm("apriori")
    previous = None
    for fraction in SUPPORTS:
        counts = reference.mine(BASKETS, min_count(fraction))
        print(f"{fraction:>8} {min_count(fraction):>10} {len(counts):>9}")
        if previous is not None:
            assert len(counts) <= previous  # monotone in support
        previous = len(counts)
