"""PR1 — compiled expression closures and the statement/plan cache.

Two scenarios, both asserted (a wrong speedup ratio fails, not just
slows down) and recorded to ``BENCH_PR1.json`` at the repo root:

a) **Repeated execution**: the same SELECT executed again and again,
   cache-cold (``clear_caches()`` before every run) vs. warm.  The
   warm path must be at least 2x faster — it skips lexing, parsing and
   planning entirely.
b) **Per-row throughput**: a filter + join + group query over a few
   thousand rows with ``compile_expressions`` on vs. off.  The
   compiled closures must beat tree-walk interpretation measurably,
   with byte-identical results.
"""

import time

import pytest

from benchmarks.conftest import bench_report
from repro.sqlengine import Database, EngineOptions

REPORT, write_report = bench_report("BENCH_PR1.json")

ROWS = 4_000
GROUPS = 200


def build_db(options=None):
    db = Database(options) if options is not None else Database()
    db.execute(
        "CREATE TABLE sales (gid INTEGER, item VARCHAR, qty INTEGER, "
        "price INTEGER)"
    )
    sales = db.table("sales")
    sales.insert_many(
        (i % GROUPS, f"item{i % 97}", i % 7, (i * 13) % 300)
        for i in range(ROWS)
    )
    db.execute("CREATE TABLE groups (gid INTEGER, region VARCHAR)")
    groups = db.table("groups")
    groups.insert_many(
        (g, "north" if g % 2 else "south") for g in range(GROUPS)
    )
    return db


# The repeated-execution scenario is a point query (the shape the
# postprocessor fires once per rule while decoding): per-execution work
# is a handful of rows, so lexing + parsing + planning dominate unless
# they are cached away.
HOT_QUERY = (
    "SELECT s.qty, s.price, g.region "
    "FROM sales s, groups g "
    "WHERE s.gid = g.gid AND s.item = 'item42' AND s.price > 50 "
    "AND g.gid = 42"
)


def _time_runs(fn, runs):
    started = time.perf_counter()
    for _ in range(runs):
        fn()
    return time.perf_counter() - started


class TestPlanCacheSpeedup:
    def test_warm_vs_cold_repeated_execution(self, benchmark):
        db = build_db()
        db.execute("CREATE INDEX idx_sales_item ON sales (item)")
        db.execute("CREATE INDEX idx_groups_gid ON groups (gid)")
        runs = 300

        def cold():
            db.clear_caches()
            return db.query(HOT_QUERY)

        def warm():
            return db.query(HOT_QUERY)

        assert cold() == warm()  # identical answers, then measure
        cold_seconds = _time_runs(cold, runs)
        warm_seconds = _time_runs(warm, runs)
        speedup = cold_seconds / warm_seconds
        REPORT["plan_cache"] = {
            "query": HOT_QUERY,
            "rows": ROWS,
            "runs": runs,
            "cold_seconds": round(cold_seconds, 6),
            "warm_seconds": round(warm_seconds, 6),
            "speedup": round(speedup, 2),
        }
        # the acceptance floor for this PR: caching must buy >= 2x on
        # repeated execution
        assert speedup >= 2.0, f"plan cache speedup only {speedup:.2f}x"
        benchmark(warm)


class TestCompiledExpressionSpeedup:
    def test_compiled_vs_interpreted_throughput(self, benchmark):
        compiled_db = build_db(EngineOptions(compile_expressions=True))
        interpreted_db = build_db(EngineOptions(compile_expressions=False))
        query = (
            "SELECT s.item, s.qty * s.price "
            "FROM sales s, groups g "
            "WHERE s.gid = g.gid AND s.price > 50 AND s.qty > 0 "
            "AND s.item LIKE 'item%'"
        )
        assert compiled_db.query(query) == interpreted_db.query(query)
        runs = 12
        # warm both engines' caches so only per-row work is measured
        compiled_db.query(query)
        interpreted_db.query(query)
        interpreted_seconds = _time_runs(
            lambda: interpreted_db.query(query), runs
        )
        compiled_seconds = _time_runs(lambda: compiled_db.query(query), runs)
        speedup = interpreted_seconds / compiled_seconds
        REPORT["compiled_expressions"] = {
            "query": query,
            "rows": ROWS,
            "runs": runs,
            "interpreted_seconds": round(interpreted_seconds, 6),
            "compiled_seconds": round(compiled_seconds, 6),
            "speedup": round(speedup, 2),
        }
        # closures with pre-resolved slots must show a measurable
        # per-row win over AST re-walks + name hashing
        assert speedup >= 1.1, f"compiled speedup only {speedup:.2f}x"
        benchmark(lambda: compiled_db.query(query))
