"""SYN-1 — tightly-coupled vs decoupled architecture.

The paper's motivating claim (Section 1): the decoupled approach pays
for extraction, flat-file round trips and tool-side re-encoding, and
strands its results outside the database.  The experiment runs both
architectures on the same Quest workload and support threshold,
asserts the rule sets are identical, and compares the workflows.
"""

import pytest

from benchmarks.conftest import fresh_system
from repro.decoupled import DecoupledWorkflow

SUPPORT = 0.05
CONFIDENCE = 0.4

STATEMENT = f"""
MINE RULE TightRules AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: {SUPPORT}, CONFIDENCE: {CONFIDENCE}
"""

EXTRACTION = "SELECT tid, item FROM Baskets"


def rule_keys(rules):
    return {(r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in rules}


def test_syn1_architectures_agree(quest_db):
    tight = fresh_system(quest_db).execute(STATEMENT)
    loose = DecoupledWorkflow(quest_db).run(
        EXTRACTION, "tid", "item", SUPPORT, CONFIDENCE
    )
    assert rule_keys(tight.rules) == rule_keys(loose.rules)
    assert tight.rules  # non-trivial comparison


def test_syn1_tight_results_stay_in_database(quest_db):
    fresh_system(quest_db).execute(STATEMENT)
    joined = quest_db.execute(
        "SELECT COUNT(*) FROM TightRules WHERE CONFIDENCE >= 0.5"
    ).scalar()
    assert joined >= 0  # the point: this query is *possible*
    assert quest_db.catalog.has_table("TightRules_Bodies")


def test_syn1_tightly_coupled(benchmark, quest_db):
    system = fresh_system(quest_db)
    result = benchmark(lambda: system.execute(STATEMENT))
    assert result.rules


def test_syn1_decoupled(benchmark, quest_db):
    workflow = DecoupledWorkflow(quest_db)
    report = benchmark(
        lambda: workflow.run(EXTRACTION, "tid", "item", SUPPORT, CONFIDENCE)
    )
    assert report.rules


def test_syn1_decoupled_step_breakdown(quest_db):
    """Where the decoupled overhead lives (printed for EXPERIMENTS.md)."""
    report = DecoupledWorkflow(quest_db).run(
        EXTRACTION, "tid", "item", SUPPORT, CONFIDENCE
    )
    print("\ndecoupled step timings (ms):")
    for step, seconds in report.timings.items():
        print(f"  {step:<10} {seconds * 1000:8.2f}")
    overhead = (
        report.timings["extract"]
        + report.timings["prepare"]
        + report.timings["export"]
    )
    # the extract/prepare/export steps are pure architecture overhead —
    # they must be a real, measurable cost
    assert overhead > 0
