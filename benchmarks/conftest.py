"""Shared fixtures and helpers for the benchmark suite.

Each module regenerates one experiment of DESIGN.md's index (FIG1,
FIG2a/b, FIG3, FIG4, SYN-1..SYN-5).  Benchmarks *assert* the reproduced
artifact (so a wrong reproduction fails, not just slows down) and
measure the relevant phase with pytest-benchmark.

PR-scoped benches additionally record a machine-readable artifact
(``BENCH_PR<n>.json`` at the repo root) via :func:`bench_report`.
"""

import json
import os
from pathlib import Path

import pytest

from repro import Database, MiningSystem
from repro.datagen import (
    QuestParameters,
    load_purchase_figure1,
    load_quest,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

#: quick mode (CI smoke): shrink workloads, relax speedup floors
BENCH_QUICK = bool(os.environ.get("BENCH_QUICK"))


def load_report(path):
    """Read a previously written ``BENCH_*.json``; a missing file,
    unreadable bytes, corrupt JSON or a non-object document all come
    back as ``{}`` — a bad artifact from an interrupted run must never
    take the bench suite down."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return document if isinstance(document, dict) else {}


def merge_report(path, report):
    """Merge *report* over the file's prior entries and rewrite it.

    Merging (rather than overwriting) keeps entries from earlier
    partial runs — e.g. a ``-k``-filtered bench invocation — alive in
    the artifact."""
    merged = load_report(path)
    merged.update(report)
    Path(path).write_text(json.dumps(merged, indent=2) + "\n",
                          encoding="utf-8")
    return merged


def bench_report(filename):
    """Create a module-level benchmark report: returns ``(report,
    fixture)`` where *report* is the dict the module's tests fill in
    and *fixture* is a module-scoped autouse fixture merging it into
    ``<repo root>/<filename>`` once the module finishes.  A missing or
    corrupt prior file is treated as empty.

    Usage (module scope)::

        REPORT, write_report = bench_report("BENCH_PRn.json")
    """
    report = {}
    path = REPO_ROOT / filename

    @pytest.fixture(scope="module", autouse=True)
    def _write_report():
        yield
        if report:
            merge_report(path, report)

    return report, _write_report

PAPER_STATEMENT = """
MINE RULE FilteredOrderedSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""


@pytest.fixture
def paper_statement():
    return PAPER_STATEMENT


@pytest.fixture
def purchase_db():
    db = Database()
    load_purchase_figure1(db)
    return db


@pytest.fixture
def quest_db():
    """A mid-size Quest workload shared by the SYN benches."""
    db = Database()
    load_quest(
        db,
        QuestParameters(
            transactions=400,
            avg_transaction_size=8,
            avg_pattern_size=3,
            patterns=60,
            items=120,
            seed=77,
        ),
    )
    return db


def fresh_system(db, **kwargs):
    kwargs.setdefault("reuse_preprocessing", False)
    return MiningSystem(database=db, **kwargs)
