"""PR2 — the vertical bitset mining core, measured against the
set-based baseline it replaced.

Three scenarios, asserted (a wrong speedup ratio or a result mismatch
fails, not just slows down) and recorded to ``BENCH_PR2.json``:

a) **General-core lattice**: the m x n rule lattice over a clustered
   sequential-rule statement, triple sets as packed bitmaps vs. the
   original tuple sets.  Identical ordered rule lists, and the bitset
   path must be at least 2x faster — joins are big-int ``&`` and
   distinct-group support counts are mask-and-popcount instead of a
   set comprehension per join pair.
b) **Pool algorithms**: the vertical ``eclat`` member (diffsets) vs.
   levelwise Apriori over a Quest basket workload, plus Apriori's own
   set-vs-bitset gid-list switch.  Identical ``ItemsetCounts``.
c) **Core input loading**: ``CoreInputLoader.load_general`` row
   decoding (tuple unpacking per branch, previously ``list``/``pop``
   per row) — recorded so regressions in the decode loop are visible.

``BENCH_QUICK=1`` (the CI smoke mode) shrinks every workload and
relaxes the speedup floors to sanity thresholds.
"""

import math
import time

from benchmarks.conftest import BENCH_QUICK, bench_report
from repro import Database
from repro.algorithms.apriori import Apriori
from repro.algorithms.eclat import Eclat
from repro.datagen import (
    QuestParameters,
    generate_quest,
    load_purchase_synthetic,
)
from repro.kernel.core.general import GeneralCoreOperator
from repro.kernel.core.inputs import CoreInputLoader
from repro.kernel.preprocessor import Preprocessor
from repro.kernel.translator import Translator

REPORT, write_report = bench_report("BENCH_PR2.json")

# a SYN-3-shaped sequential-rule statement: clustered groups, ordered
# cluster pairs, full m x n lattice
STATEMENT = """
MINE RULE SeqRules AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.1
"""

if BENCH_QUICK:
    PURCHASE = dict(customers=60, days=5, transactions_per_customer=4,
                    items_per_transaction=4, catalog_size=30)
    LATTICE_FLOOR = 1.05
    QUEST = QuestParameters(transactions=200, avg_transaction_size=8,
                            items=100, patterns=40, seed=77)
    ECLAT_FLOOR = 1.0
    APRIORI_FLOOR = 0.8
else:
    PURCHASE = dict(customers=200, days=6, transactions_per_customer=6,
                    items_per_transaction=6, catalog_size=30)
    LATTICE_FLOOR = 2.0
    QUEST = QuestParameters(transactions=800, avg_transaction_size=10,
                            items=150, patterns=60, seed=77)
    ECLAT_FLOOR = 2.0
    APRIORI_FLOOR = 1.2
QUEST_SUPPORT = 0.03


def _best_of(fn, runs=3):
    best = math.inf
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def build_general_input():
    db = Database()
    load_purchase_synthetic(db, **PURCHASE)
    program = Translator(db).translate(STATEMENT)
    Preprocessor(db).run(program)
    loader = CoreInputLoader(db, program.core)
    return loader, program


class TestGeneralCoreLatticeSpeedup:
    def test_bitset_vs_set_triple_sets(self, benchmark):
        loader, program = build_general_input()
        data = loader.load_general()
        runs = 1 if BENCH_QUICK else 2

        set_op = GeneralCoreOperator(representation="set")
        bitset_op = GeneralCoreOperator(representation="bitset")
        set_seconds, set_rules = _best_of(
            lambda: set_op.run(data, program.core), runs
        )
        bitset_seconds, bitset_rules = _best_of(
            lambda: bitset_op.run(data, program.core), runs
        )
        # bit-identical mining, representation-independent lattice work
        assert bitset_rules == set_rules
        assert bitset_op.lattice_sizes == set_op.lattice_sizes
        assert bitset_op.join_pairs_examined == set_op.join_pairs_examined

        speedup = set_seconds / bitset_seconds
        REPORT["general_core_lattice"] = {
            "workload": dict(PURCHASE),
            "quick": BENCH_QUICK,
            "rules": len(set_rules),
            "join_pairs_examined": bitset_op.join_pairs_examined,
            "universe_sizes": dict(bitset_op.bitmap_stats.universe_sizes),
            "set_seconds": round(set_seconds, 6),
            "bitset_seconds": round(bitset_seconds, 6),
            "speedup": round(speedup, 2),
        }
        # the acceptance floor for this PR: packed triple bitmaps must
        # buy >= 2x on the lattice (relaxed in quick mode)
        assert speedup >= LATTICE_FLOOR, (
            f"general-core bitset speedup only {speedup:.2f}x"
        )
        benchmark(lambda: bitset_op.run(data, program.core))


class TestPoolEclatVsApriori:
    def test_vertical_vs_levelwise(self, benchmark):
        baskets = generate_quest(QUEST)
        min_count = max(1, math.ceil(QUEST_SUPPORT * len(baskets)))
        miners = {
            "apriori_set": Apriori(representation="set"),
            "apriori_bitset": Apriori(),
            "eclat_diffsets": Eclat(),
            "eclat_tidsets": Eclat(diffsets=False),
        }
        seconds, counts = {}, {}
        for label, miner in miners.items():
            seconds[label], counts[label] = _best_of(
                lambda m=miner: m.mine(baskets, min_count)
            )
        reference = counts["apriori_set"]
        assert all(result == reference for result in counts.values())

        eclat_speedup = seconds["apriori_set"] / seconds["eclat_diffsets"]
        apriori_speedup = seconds["apriori_set"] / seconds["apriori_bitset"]
        REPORT["pool_eclat"] = {
            "workload": {
                "transactions": QUEST.transactions,
                "avg_transaction_size": QUEST.avg_transaction_size,
                "items": QUEST.items,
                "min_count": min_count,
            },
            "quick": BENCH_QUICK,
            "frequent_itemsets": len(reference),
            "seconds": {k: round(v, 6) for k, v in seconds.items()},
            "eclat_vs_set_apriori": round(eclat_speedup, 2),
            "bitset_vs_set_apriori": round(apriori_speedup, 2),
        }
        assert eclat_speedup >= ECLAT_FLOOR, (
            f"eclat speedup only {eclat_speedup:.2f}x"
        )
        assert apriori_speedup >= APRIORI_FLOOR, (
            f"apriori bitset speedup only {apriori_speedup:.2f}x"
        )
        benchmark(lambda: miners["eclat_diffsets"].mine(baskets, min_count))


class TestLoaderRowDecode:
    def test_load_general_decode(self, benchmark):
        loader, _program = build_general_input()
        seconds, data = _best_of(loader.load_general)
        assert data.body_items and data.clustered
        REPORT["loader_load_general"] = {
            "workload": dict(PURCHASE),
            "quick": BENCH_QUICK,
            "groups": data.totg,
            "seconds": round(seconds, 6),
        }
        benchmark(loader.load_general)
