"""FIG3 — regenerate the architecture's process flow (Figure 3a).

The figure shows the kernel's process flow: user support hands the
statement to the *translator*, then the *preprocessor* runs the SQL
programs on the DBMS, the *core operator* mines, and the
*postprocessor* writes the output rules back.  The experiment replays
one execution and asserts the component ordering and the
data-flow artifacts each stage leaves in the DBMS.
"""

from benchmarks.conftest import fresh_system

SIMPLE = """
MINE RULE FlowDemo AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5
"""


def test_fig3_process_flow_order(purchase_db):
    result = fresh_system(purchase_db).execute(SIMPLE)
    assert result.flow.components() == [
        "translator",
        "preprocessor",
        "core",
        "postprocessor",
    ]
    print("\nFigure 3a process flow:")
    print(result.flow.render())


def test_fig3_data_flow_artifacts(purchase_db):
    """Dashed lines of Figure 3a: each stage's relations in the DBMS."""
    result = fresh_system(purchase_db).execute(SIMPLE)
    names = result.program.workspace
    # preprocessor -> encoded tables
    for table in (names.valid_groups, names.bset, names.coded_source):
        assert purchase_db.catalog.has_table(table), table
    # core operator -> encoded rules (normalized three-table form)
    for table in ("FlowDemo", names.output_bodies, names.output_heads):
        assert purchase_db.catalog.has_table(table), table
    # postprocessor -> user-readable output rules
    for table in ("FlowDemo_Bodies", "FlowDemo_Heads", "FlowDemo_Display"):
        assert purchase_db.catalog.has_table(table), table


def test_fig3_flow_overhead(benchmark, purchase_db):
    """Cost of one full trip around the Figure 3a loop."""
    system = fresh_system(purchase_db)
    result = benchmark(lambda: system.execute(SIMPLE))
    assert result.rules
