"""SYN-5 — SQL engine micro-benchmarks.

The preprocessing queries Q0..Q11 lean on a handful of relational
primitives: scans with filters, hash equi-joins, grouping with HAVING,
DISTINCT projection and sequence-tagged INSERT..SELECT.  This module
measures each primitive at the scale the SYN experiments use, so
regressions in the substrate are visible independently of the mining
layers.
"""

import pytest

from repro.sqlengine import Database

ROWS = 5_000
GROUPS = 250


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute(
        "CREATE TABLE facts (gid INTEGER, item VARCHAR, price REAL)"
    )
    table = database.table("facts")
    for i in range(ROWS):
        table.insert((i % GROUPS, f"item{i % 97}", float(i % 400)))
    database.execute("CREATE TABLE dim (gid INTEGER, label VARCHAR)")
    dim = database.table("dim")
    for g in range(GROUPS):
        dim.insert((g, f"group{g}"))
    return database


def test_syn5_filtered_scan(benchmark, db):
    rows = benchmark(
        lambda: db.query("SELECT item FROM facts WHERE price >= 200")
    )
    expected = sum(1 for i in range(ROWS) if (i % 400) >= 200)
    assert len(rows) == expected


def test_syn5_hash_join(benchmark, db):
    rows = benchmark(
        lambda: db.query(
            "SELECT f.item, d.label FROM facts f, dim d WHERE f.gid = d.gid"
        )
    )
    assert len(rows) == ROWS


def test_syn5_group_by_having(benchmark, db):
    rows = benchmark(
        lambda: db.query(
            "SELECT item, COUNT(*) FROM facts GROUP BY item "
            "HAVING COUNT(*) >= 10"
        )
    )
    assert rows


def test_syn5_distinct_projection(benchmark, db):
    rows = benchmark(
        lambda: db.query("SELECT DISTINCT gid, item FROM facts")
    )
    assert len(rows) <= ROWS


def test_syn5_insert_select_with_sequence(benchmark, db):
    counter = iter(range(100_000))

    def encode():
        n = next(counter)
        db.execute(f"CREATE SEQUENCE seq{n}")
        db.execute(
            f"INSERT INTO enc{n} (SELECT seq{n}.NEXTVAL AS id, item "
            f"FROM (SELECT DISTINCT item FROM facts) t)"
        )
        return db.execute(f"SELECT COUNT(*) FROM enc{n}").scalar()

    count = benchmark(encode)
    assert count == 97


def test_syn5_three_way_encode_join(benchmark, db):
    """The Q4 shape: Source x ValidGroups x Bset."""
    db.execute("DROP TABLE IF EXISTS items")
    db.execute(
        "INSERT INTO items (SELECT 1 AS dummy, item FROM "
        "(SELECT DISTINCT item FROM facts) t)"
    )

    def q4_shape():
        return db.query(
            "SELECT DISTINCT d.gid, i.item FROM facts f, dim d, items i "
            "WHERE f.gid = d.gid AND f.item = i.item"
        )

    rows = benchmark(q4_shape)
    assert rows


def test_syn5_indexed_point_lookup(benchmark, db):
    if not db.catalog.has_table("facts_indexed"):
        db.execute(
            "INSERT INTO facts_indexed (SELECT gid, item, price FROM facts)"
        )
        db.execute("CREATE INDEX fi_gid ON facts_indexed (gid)")
    counter = iter(range(10**9))

    def lookup():
        g = next(counter) % GROUPS
        return db.query(
            "SELECT item FROM facts_indexed WHERE gid = :g", {"g": g}
        )

    rows = benchmark(lookup)
    assert rows


def test_syn5_unindexed_point_lookup(benchmark, db):
    counter = iter(range(10**9))

    def lookup():
        g = next(counter) % GROUPS
        return db.query("SELECT item FROM facts WHERE gid = :g", {"g": g})

    rows = benchmark(lookup)
    assert rows
