"""SYN-3 — the general core operator: rule-lattice growth.

Section 4.3.2 describes the m x n rule lattice and the
smaller-parent heuristic.  The experiment measures lattice mining on
the synthetic Purchase scenario (clusters over dates, ordered cluster
condition) and reports the lattice sizes per (m, n) set, plus the
support sweep behaviour.
"""

import pytest

from benchmarks.conftest import fresh_system
from repro import Database
from repro.datagen import load_purchase_synthetic

STATEMENT = """
MINE RULE SeqRules AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: {support}, CONFIDENCE: 0.1
"""


@pytest.fixture(scope="module")
def synthetic_db():
    db = Database()
    load_purchase_synthetic(
        db,
        customers=60,
        days=6,
        transactions_per_customer=4,
        items_per_transaction=4,
        catalog_size=40,
        seed=13,
    )
    return db


def test_syn3_general_core_end_to_end(benchmark, synthetic_db):
    system = fresh_system(synthetic_db)
    result = benchmark(
        lambda: system.execute(STATEMENT.format(support=0.10))
    )
    assert result.directives.K
    assert result.rules


def test_syn3_rule_counts_decrease_with_support(synthetic_db):
    counts = []
    for support in (0.05, 0.10, 0.20):
        system = fresh_system(synthetic_db)
        result = system.execute(STATEMENT.format(support=support))
        counts.append(len(result.rules))
    print(f"\nSYN-3 rules vs support: {list(zip((0.05, 0.1, 0.2), counts))}")
    assert counts == sorted(counts, reverse=True)


def test_syn3_lattice_shape(synthetic_db):
    """Lattice set sizes per (m, n) — the paper's rule-set lattice."""
    from repro.kernel.core.general import GeneralCoreOperator
    from repro.kernel.core.inputs import CoreInputLoader
    from repro.kernel.translator import Translator
    from repro.kernel.preprocessor import Preprocessor
    from repro.kernel.names import Workspace

    translator = Translator(synthetic_db)
    program = translator.translate(
        STATEMENT.format(support=0.08), Workspace("SYN3")
    )
    Preprocessor(synthetic_db).run(program)
    data = CoreInputLoader(synthetic_db, program.core).load_general()
    operator = GeneralCoreOperator()
    operator.run(data, program.core)

    sizes = operator.lattice_sizes
    print("\nSYN-3 lattice sizes (m x n -> rules):")
    for key in sorted(sizes):
        print(f"  {key[0]}x{key[1]}: {sizes[key]}")
    assert (1, 1) in sizes and sizes[(1, 1)] > 0
    # pruning: each deeper body level is no larger than the previous
    m = 2
    while (m, 1) in sizes and (m - 1, 1) in sizes and sizes[(m - 1, 1)]:
        assert sizes[(m, 1)] <= sizes[(m - 1, 1)] ** 2
        m += 1


def test_syn3_cluster_selectivity(synthetic_db):
    """The ordered cluster condition prunes pairs: rules with the
    condition are a subset of rules without it."""
    with_condition = fresh_system(synthetic_db).execute(
        STATEMENT.format(support=0.10)
    )
    without_condition = fresh_system(synthetic_db).execute(
        STATEMENT.replace(" HAVING BODY.date < HEAD.date", "").format(
            support=0.10
        ).replace("SeqRules", "AllPairs")
    )
    ordered = {(r.body, r.head) for r in with_condition.rules}
    unordered = {(r.body, r.head) for r in without_condition.rules}
    print(f"\nSYN-3 selectivity: ordered={len(ordered)} "
          f"unordered={len(unordered)}")
    assert ordered <= unordered
    assert len(ordered) < len(unordered)
