"""FIG4 — regenerate the preprocessor structure of Figure 4.

Figure 4a shows the query pipeline for simple rules (Q0..Q4);
Figure 4b adds the general-rule queries (Q5, Q6, Q7, Q4b, Q11,
Q8..Q10).  The experiment reconstructs the query-presence matrix for
every statement class (directive combination) and benchmarks
translation itself.
"""

import pytest

from repro.kernel import Translator, Workspace

BASE = (
    "MINE RULE Out AS SELECT DISTINCT {select} {mining} FROM Purchase "
    "{source} GROUP BY customer {group_having} {cluster} "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
)

#: statement classes: (label, overrides, expected base query labels)
CLASSES = [
    (
        "simple minimal (w,g all false)",
        dict(),
        {"Q0v", "Q1", "Q2", "Q3", "Q4"},
    ),
    (
        "simple + source condition (W)",
        dict(source="WHERE price > 0"),
        {"Q0", "Q1", "Q2", "Q3", "Q4"},
    ),
    (
        "simple + group condition (G)",
        dict(group_having="HAVING COUNT(*) >= 2"),
        {"Q0v", "Q1", "Q2", "Q3", "Q4"},
    ),
    (
        "mining condition (M)",
        dict(mining="WHERE BODY.price >= 100 AND HEAD.price < 100"),
        {"Q0v", "Q1", "Q2", "Q3", "Q4", "Q11", "Q8", "Q9", "Q10"},
    ),
    (
        "clusters (C)",
        dict(cluster="CLUSTER BY date"),
        {"Q0v", "Q1", "Q2", "Q3", "Q6", "Q4", "Q11"},
    ),
    (
        "clusters + condition (C,K)",
        dict(cluster="CLUSTER BY date HAVING BODY.date < HEAD.date"),
        {"Q0v", "Q1", "Q2", "Q3", "Q6", "Q7", "Q4", "Q11"},
    ),
    (
        "different schemas (H)",
        dict(select_head="1..1 price AS HEAD"),
        {"Q0v", "Q1", "Q2", "Q3", "Q5", "Q4", "Q11"},
    ),
    (
        "the paper's statement (W,M,C,K)",
        dict(
            mining="WHERE BODY.price >= 100 AND HEAD.price < 100",
            source="WHERE qty >= 1",
            cluster="CLUSTER BY date HAVING BODY.date < HEAD.date",
        ),
        {"Q0", "Q1", "Q2", "Q3", "Q6", "Q7", "Q4", "Q11", "Q8", "Q9",
         "Q10"},
    ),
]


def build_text(overrides):
    head = overrides.get("select_head", "1..1 item AS HEAD")
    return BASE.format(
        select=f"1..n item AS BODY, {head}, SUPPORT, CONFIDENCE",
        mining=overrides.get("mining", ""),
        source=overrides.get("source", ""),
        group_having=overrides.get("group_having", ""),
        cluster=overrides.get("cluster", ""),
    )


def base_labels(program):
    return {label.rstrip("ab") for label in program.labels()}


@pytest.mark.parametrize("label,overrides,expected", CLASSES,
                         ids=[c[0] for c in CLASSES])
def test_fig4_query_presence_matrix(purchase_db, label, overrides, expected):
    translator = Translator(purchase_db)
    program = translator.translate(build_text(overrides), Workspace("F4"))
    assert base_labels(program) == expected


def test_fig4_print_matrix(purchase_db):
    """The full presence matrix, printed for EXPERIMENTS.md."""
    translator = Translator(purchase_db)
    all_queries = ["Q0", "Q0v", "Q1", "Q2", "Q3", "Q5", "Q6", "Q7", "Q4",
                   "Q11", "Q8", "Q9", "Q10"]
    print("\nFigure 4: query presence by statement class")
    print(f"{'class':<38}" + "".join(f"{q:>5}" for q in all_queries))
    for label, overrides, _ in CLASSES:
        program = translator.translate(build_text(overrides),
                                       Workspace("F4"))
        present = base_labels(program)
        present |= {q for q in program.labels()}
        marks = "".join(
            f"{'x' if q in present else '.':>5}" for q in all_queries
        )
        print(f"{label:<38}{marks}")


def test_fig4_q4_plan_shape(purchase_db):
    """The encode join Q4 must plan as a hash-join pipeline — the plan
    shape Appendix A's placement of the encoding on the SQL side
    relies on."""
    translator = Translator(purchase_db)
    program = translator.translate(
        build_text({}), Workspace("F4P")
    )
    from repro.kernel.preprocessor import Preprocessor

    Preprocessor(purchase_db).run(program)
    q4 = program.query("Q4").sql
    inner_select = q4.split("(", 1)[1].rsplit(")", 1)[0]
    plan = purchase_db.explain(inner_select)
    print("\nQ4 plan:\n" + plan)
    assert plan.count("HashJoin") == 2
    assert "NestedLoopJoin" not in plan


def test_fig4_translation_speed(benchmark, purchase_db, paper_statement):
    """Translation is pure front-end work and must be cheap relative
    to preprocessing."""
    translator = Translator(purchase_db)
    program = benchmark(
        lambda: translator.translate(paper_statement, Workspace("F4"))
    )
    assert program.core is not None
