#!/usr/bin/env python3
"""Aggregate per-PR benchmark artifacts into one trajectory table.

Each PR's bench run leaves a ``BENCH_PR<n>.json`` at the repo root
(see ``benchmarks/conftest.py:bench_report``): a JSON object of
``{scenario: {metric: value, ...}, ...}``.  This tool discovers every
such artifact, flattens the numeric metrics to ``scenario.metric``
rows, and renders the per-PR trajectory as

* ``BENCH_TREND.md`` — a markdown table (rows: scenario.metric,
  columns: PR1..PRn, blank cells where a PR has no such metric or the
  artifact is missing entirely — PR3 shipped no bench artifact, and
  that must not break the table), followed by an ASCII bar chart of
  every ``*.speedup`` series (latest recorded value per metric); and
* ``BENCH_TREND.json`` — the same data machine-readable.

Two-level metric dicts whose leaves carry ``row`` and ``columnar``
timings (PR7's per-query ``query_seconds``) additionally derive a
``….<label>.speedup`` row, so the preprocessing speedup shows up per
query in the trajectory and the chart.

Usage::

    python tools/bench_trend.py [--root DIR] [--markdown-only]
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

ARTIFACT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def discover_artifacts(root: Path) -> List[Tuple[int, Path]]:
    """``[(pr number, path)]`` sorted by PR number."""
    found = []
    for path in root.iterdir():
        match = ARTIFACT_RE.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    return sorted(found)


def _numeric(value: object) -> bool:
    return not isinstance(value, bool) and isinstance(value, (int, float))


def flatten(document: object) -> Dict[str, float]:
    """``{scenario.metric: value}`` keeping numeric leaves only.
    One extra nesting level is followed — sub-dicts of numbers such as
    ``pool_eclat.seconds`` or ``sharded_speedup.speedup`` become
    ``scenario.metric.label`` rows.  Everything else (strings, bools,
    deeper nesting, and the ``workload`` descriptor every scenario
    carries) describes the scenario; it is not a trajectory point."""
    flat: Dict[str, float] = {}
    if not isinstance(document, dict):
        return flat
    for scenario, metrics in document.items():
        if not isinstance(metrics, dict):
            continue
        for metric, value in metrics.items():
            if _numeric(value):
                flat[f"{scenario}.{metric}"] = value
            elif isinstance(value, dict) and metric != "workload":
                for label, leaf in value.items():
                    if _numeric(leaf):
                        flat[f"{scenario}.{metric}.{label}"] = leaf
                    elif (
                        isinstance(leaf, dict)
                        and _numeric(leaf.get("row"))
                        and _numeric(leaf.get("columnar"))
                        and leaf["columnar"]
                    ):
                        # row-vs-columnar timing pair: derive the
                        # speedup as the trajectory point
                        flat[f"{scenario}.{metric}.{label}.speedup"] = (
                            round(leaf["row"] / leaf["columnar"], 2)
                        )
    return flat


def load_trend(root: Path) -> Dict[str, object]:
    """The aggregated trend document."""
    columns: List[int] = []
    per_pr: Dict[int, Dict[str, float]] = {}
    for number, path in discover_artifacts(root):
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            document = {}  # tolerate a corrupt artifact, keep the column
        columns.append(number)
        per_pr[number] = flatten(document)
    if columns:
        # missing PRs inside the range get an explicit empty column so
        # the table shows the gap (e.g. PR3 shipped no artifact)
        full = list(range(min(columns), max(columns) + 1))
        for number in full:
            per_pr.setdefault(number, {})
        columns = full
    rows = sorted({key for flat in per_pr.values() for key in flat})
    return {
        "columns": [f"PR{n}" for n in columns],
        "rows": [
            {
                "metric": key,
                "values": {
                    f"PR{n}": per_pr[n].get(key)
                    for n in columns
                    if key in per_pr[n]
                },
            }
            for key in rows
        ],
    }


def _cell(value: Optional[float]) -> str:
    if value is None:
        return ""
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4g}"
    return str(int(value))


def render_speedup_chart(trend: Dict[str, object], width: int = 40) -> str:
    """An ASCII bar chart of every ``*.speedup`` metric — the latest
    recorded value per series, scaled to the largest one.  Empty string
    when no artifact records a speedup."""
    columns: List[str] = trend["columns"]  # type: ignore[assignment]
    latest: List[Tuple[str, str, float]] = []
    for row in trend["rows"]:  # type: ignore[union-attr]
        metric = row["metric"]
        if "speedup" not in metric.split("."):
            continue
        for column in reversed(columns):
            value = row["values"].get(column)
            if value is not None:
                latest.append((metric, column, value))
                break
    if not latest:
        return ""
    peak = max(value for _, _, value in latest)
    name_width = max(len(metric) for metric, _, _ in latest)
    lines = [
        "## Speedup series",
        "",
        "Latest recorded value of every `*.speedup` metric (bars scaled",
        "to the largest series).",
        "",
        "```",
    ]
    for metric, column, value in latest:
        bar = "#" * max(1, round(value / peak * width))
        lines.append(
            f"{metric:<{name_width}}  {column:>4}  {bar} {value:.2f}x"
        )
    lines.extend(["```", ""])
    return "\n".join(lines)


def render_markdown(trend: Dict[str, object]) -> str:
    columns = trend["columns"]
    lines = [
        "# Benchmark trajectory",
        "",
        "Numeric metrics from every checked-in `BENCH_PR<n>.json`, one",
        "column per PR.  Blank cells: the PR did not record that metric",
        "(or shipped no bench artifact at all).  Regenerate with",
        "`python tools/bench_trend.py`.",
        "",
        "| metric | " + " | ".join(columns) + " |",
        "|---|" + "---|" * len(columns),
    ]
    for row in trend["rows"]:
        values = row["values"]
        cells = [_cell(values.get(column)) for column in columns]
        lines.append(f"| {row['metric']} | " + " | ".join(cells) + " |")
    lines.append("")
    chart = render_speedup_chart(trend)
    if chart:
        lines.append(chart)
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="directory holding the BENCH_PR<n>.json artifacts",
    )
    parser.add_argument(
        "--markdown-only",
        action="store_true",
        help="skip writing BENCH_TREND.json",
    )
    args = parser.parse_args(argv)

    trend = load_trend(args.root)
    if not trend["columns"]:
        print(f"no BENCH_PR<n>.json artifacts under {args.root}",
              file=sys.stderr)
        return 1
    markdown = render_markdown(trend)
    (args.root / "BENCH_TREND.md").write_text(markdown, encoding="utf-8")
    print(f"wrote {args.root / 'BENCH_TREND.md'}")
    if not args.markdown_only:
        (args.root / "BENCH_TREND.json").write_text(
            json.dumps(trend, indent=2) + "\n", encoding="utf-8"
        )
        print(f"wrote {args.root / 'BENCH_TREND.json'}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
