#!/usr/bin/env python3
"""Inspect and diff runs from a run-history journal.

The serving mode's ``--run-log FILE`` leaves an append-only NDJSON
journal (:mod:`repro.obs.runlog`): one record per completed MINE RULE
run, REFRESH RULES run or SQL job, carrying the trace id, statement
fingerprint, stage timings, resource totals and outcome.  This tool
reads such a journal offline:

* ``list`` — one line per run (id, kind, status, wall/cpu seconds);
* ``show <id>`` — the full record of one run, stages included;
* ``diff <id> <id>`` — stage-by-stage comparison of two runs: wall
  seconds per stage side by side with the delta and ratio, plus the
  total/cpu/rules rows.  Pointing it at two runs of the same
  statement fingerprint before and after a change answers "which
  stage got slower" without re-running anything.

Usage::

    python tools/run_report.py runs.ndjson list [--kind mine]
    python tools/run_report.py runs.ndjson show <run-id>
    python tools/run_report.py runs.ndjson diff <run-id> <run-id>
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.runlog import RunLog  # noqa: E402


def load_journal(path: str) -> RunLog:
    if not Path(path).exists():
        raise SystemExit(f"no such journal: {path}")
    # capacity generously above the journal bound: offline inspection
    # should see every surviving record
    return RunLog(path=path, capacity=1_000_000)


def cmd_list(runlog: RunLog, kind: Optional[str]) -> str:
    runs = runlog.list(kind=kind)
    if not runs:
        return "no runs recorded"
    lines = [
        f"{'id':<18} {'kind':<8} {'status':<10} "
        f"{'seconds':>9} {'cpu':>9} {'rules':>6}  statement"
    ]
    for run in runs:
        cpu = run.get("cpu_seconds")
        cpu_text = "-" if cpu is None else f"{cpu:.3f}"
        rules = run.get("rules")
        rules_text = "" if rules is None else str(rules)
        lines.append(
            f"{run.get('id', '?'):<18} {run.get('kind', '?'):<8} "
            f"{run.get('status', '?'):<10} "
            f"{run.get('seconds', 0.0):>9.3f} {cpu_text:>9} "
            f"{rules_text:>6}  {str(run.get('statement', ''))[:60]}"
        )
    return "\n".join(lines)


def cmd_show(runlog: RunLog, run_id: str) -> str:
    record = runlog.get(run_id)
    if record is None:
        raise SystemExit(f"no such run: {run_id}")
    lines = [f"run {run_id}"]
    for key in (
        "kind", "status", "statement", "fingerprint", "trace_id",
        "job_id", "run_id", "mode", "error", "seconds", "cpu_seconds",
        "peak_bytes", "rules", "at",
    ):
        if key in record:
            lines.append(f"  {key:<12} {record[key]}")
    stages = record.get("stages")
    if stages:
        lines.append("  stages:")
        for stage, seconds in stages.items():
            lines.append(f"    {stage:<16} {seconds * 1000:9.2f} ms")
    return "\n".join(lines)


def _stage_rows(
    left: Dict[str, Any], right: Dict[str, Any]
) -> List[str]:
    stages_a = left.get("stages") or {}
    stages_b = right.get("stages") or {}
    order = list(stages_a)
    order.extend(s for s in stages_b if s not in stages_a)
    rows: List[str] = []
    for stage in order:
        a = stages_a.get(stage)
        b = stages_b.get(stage)
        rows.append(_delta_row(stage, a, b))
    return rows


def _delta_row(label: str, a: Optional[float], b: Optional[float]) -> str:
    fmt = lambda v: "      -" if v is None else f"{v * 1000:9.2f}"  # noqa: E731
    if a is None or b is None:
        return f"  {label:<16} {fmt(a)} {fmt(b)}"
    delta = (b - a) * 1000
    ratio = f"{b / a:6.2f}x" if a > 0 else "      -"
    return f"  {label:<16} {fmt(a)} {fmt(b)} {delta:+9.2f} {ratio}"


def cmd_diff(runlog: RunLog, id_a: str, id_b: str) -> str:
    a = runlog.get(id_a)
    b = runlog.get(id_b)
    if a is None:
        raise SystemExit(f"no such run: {id_a}")
    if b is None:
        raise SystemExit(f"no such run: {id_b}")
    lines = [f"diff {id_a} -> {id_b}"]
    fp_a, fp_b = a.get("fingerprint"), b.get("fingerprint")
    if fp_a and fp_b and fp_a != fp_b:
        lines.append(
            f"  (different statements: {fp_a} vs {fp_b} — "
            f"stage deltas compare unlike work)"
        )
    lines.append(
        f"  {'stage':<16} {'ms (a)':>9} {'ms (b)':>9} "
        f"{'delta':>9} {'ratio':>7}"
    )
    lines.extend(_stage_rows(a, b))
    lines.append(
        _delta_row("total", a.get("seconds"), b.get("seconds"))
    )
    lines.append(
        _delta_row("cpu", a.get("cpu_seconds"), b.get("cpu_seconds"))
    )
    rules_a, rules_b = a.get("rules"), b.get("rules")
    if rules_a is not None or rules_b is not None:
        lines.append(f"  {'rules':<16} {rules_a!s:>9} {rules_b!s:>9}")
    status_a, status_b = a.get("status"), b.get("status")
    if status_a != status_b:
        lines.append(f"  {'status':<16} {status_a!s:>9} {status_b!s:>9}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="run_report",
        description="inspect and diff runs from a --run-log journal",
    )
    parser.add_argument("journal", help="NDJSON run-history journal file")
    sub = parser.add_subparsers(dest="command", required=True)
    p_list = sub.add_parser("list", help="one line per recorded run")
    p_list.add_argument(
        "--kind", default=None, choices=("mine", "refresh", "sql"),
        help="only runs of this kind",
    )
    p_show = sub.add_parser("show", help="full record of one run")
    p_show.add_argument("run_id")
    p_diff = sub.add_parser(
        "diff", help="stage-by-stage comparison of two runs"
    )
    p_diff.add_argument("run_a")
    p_diff.add_argument("run_b")
    args = parser.parse_args(argv)

    runlog = load_journal(args.journal)
    if args.command == "list":
        print(cmd_list(runlog, args.kind))
    elif args.command == "show":
        print(cmd_show(runlog, args.run_id))
    else:
        print(cmd_diff(runlog, args.run_a, args.run_b))
    return 0


if __name__ == "__main__":
    sys.exit(main())
