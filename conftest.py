"""Repository-level pytest configuration.

Lives at the rootdir so its options are registered before any test
package loads (plugin options must be defined in a root conftest).
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the checked-in golden output files from the "
        "current run instead of comparing against them",
    )
