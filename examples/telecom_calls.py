"""Call-detail-record analysis with MINE RULE.

The MINE RULE project ran with CSELT (Telecom Italia research), and
call-record analysis was a motivating application.  Three analyses:

1. callees contacted by the same subscribers — social-circle rules;
2. calling sequences — callees on one day followed by *premium*
   services on a later day (clusters over dates + mining condition);
3. cheap-to-expensive escalation — cross-side condition on cost.

Run:  python examples/telecom_calls.py
"""

from repro import MiningSystem
from repro.datagen import load_telecom

CIRCLES = """
MINE RULE Circles AS
SELECT DISTINCT 1..n callee AS BODY, 1..1 callee AS HEAD,
       SUPPORT, CONFIDENCE
FROM Calls
GROUP BY caller
EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.5
"""

ESCALATION = """
MINE RULE Escalation AS
SELECT DISTINCT 1..1 callee AS BODY, 1..1 callee AS HEAD,
       SUPPORT, CONFIDENCE
WHERE BODY.calltype <> 'premium' AND HEAD.calltype = 'premium'
FROM Calls
GROUP BY caller
CLUSTER BY cdate HAVING BODY.cdate < HEAD.cdate
EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.2
"""

COST_JUMP = """
MINE RULE CostJump AS
SELECT DISTINCT 1..1 callee AS BODY, 1..1 callee AS HEAD,
       SUPPORT, CONFIDENCE
WHERE HEAD.cost >= BODY.cost * 5 AND BODY.cost > 0
FROM Calls
GROUP BY caller
EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.2
"""


def show(system, title, statement, top=6):
    result = system.execute(statement)
    print("=" * 72)
    print(f"{title}   [directives {result.directives}]")
    print("=" * 72)
    ranked = sorted(
        result.rules, key=lambda r: (-r.support, -r.confidence, str(r))
    )
    for rule in ranked[:top]:
        print(f"  {rule}")
    if len(ranked) > top:
        print(f"  ... and {len(ranked) - top} more")
    print()
    return result


def main() -> None:
    system = MiningSystem()
    table = load_telecom(system.db, subscribers=60, days=7, seed=17,
                         premium_fraction=0.15, calls_per_day=4)
    print(f"Calls table: {len(table)} call detail records")
    summary = system.db.execute(
        "SELECT calltype, COUNT(*), SUM(cost) FROM Calls "
        "GROUP BY calltype ORDER BY calltype"
    )
    print(summary.pretty())
    print()

    show(system, "1. Social circles (who is called together)", CIRCLES)
    show(system, "2. Calls that precede premium services", ESCALATION)
    show(system, "3. Cost escalation (head >= 5x body cost)", COST_JUMP)

    print("Follow-up inside the DBMS: premium heads with their decoded "
          "bodies")
    rows = system.db.execute(
        "SELECT H.callee, COUNT(*) FROM Escalation R, Escalation_Heads H "
        "WHERE R.HeadId = H.HeadId GROUP BY H.callee ORDER BY 2 DESC"
    )
    print(rows.pretty())


if __name__ == "__main__":
    main()
