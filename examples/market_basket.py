"""Market-basket analysis on Quest synthetic data, across the
algorithm pool.

Demonstrates the *algorithm interoperability* goal (Section 3): the
same MINE RULE statement is executed with every algorithm of the pool
(Apriori, AprioriTid, DHP, Partition, Toivonen sampling); the rule sets
are identical, only the core-operator running time differs.

Run:  python examples/market_basket.py
"""

import time

from repro import Database, MiningSystem
from repro.algorithms import ALGORITHMS
from repro.datagen import QuestParameters, load_quest

STATEMENT = """
MINE RULE BasketRules AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: 0.04, CONFIDENCE: 0.5
"""


def main() -> None:
    db = Database()
    params = QuestParameters(
        transactions=600,
        avg_transaction_size=8,
        avg_pattern_size=3,
        patterns=80,
        items=150,
        seed=42,
    )
    load_quest(db, params)
    print(f"Workload: {params.name()} "
          f"({db.execute('SELECT COUNT(*) FROM Baskets').scalar()} tuples)")
    print()

    pool = [n for n in sorted(ALGORITHMS) if n != "exhaustive"]
    reference = None
    print(f"{'algorithm':<12} {'rules':>6} {'core time':>10}")
    print("-" * 32)
    for name in pool:
        system = MiningSystem(database=db, algorithm=name,
                              reuse_preprocessing=False)
        started = time.perf_counter()
        result = system.execute(STATEMENT)
        elapsed = time.perf_counter() - started
        rules = result.rule_set()
        if reference is None:
            reference = rules
        agreement = "" if rules == reference else "  (MISMATCH!)"
        print(f"{name:<12} {len(rules):>6} {elapsed:>9.3f}s{agreement}")

    print("\nAll algorithms of the pool return the identical rule set;")
    print("the core operator is decoupled from the algorithm choice.")

    system = MiningSystem(database=db)
    result = system.execute(STATEMENT)
    print("\nTop rules by confidence:")
    top = sorted(result.rules, key=lambda r: (-r.confidence, -r.support))[:10]
    for rule in top:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
