"""Session report with extended rule-quality measures.

Runs a MINE RULE statement on the synthetic store, computes lift /
leverage / conviction from the encoded tables (no rescan of the source
— a benefit of keeping everything in the DBMS), persists them as
``BasketRules_Metrics`` and prints the full session report sorted by
lift.

Run:  python examples/rule_quality_report.py
"""

from repro import MiningSystem
from repro.datagen import load_purchase_synthetic
from repro.report import ReportOptions, render_report

STATEMENT = """
MINE RULE BasketRules AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.12, CONFIDENCE: 0.4
"""


def main() -> None:
    system = MiningSystem(algorithm="auto")
    load_purchase_synthetic(system.db, customers=80, days=8, seed=29)

    result = system.execute(STATEMENT)
    metrics = system.compute_metrics(result, store=True)

    print(render_report(
        system,
        result,
        metrics,
        ReportOptions(top=12, sort_by="lift"),
    ))

    print("\nThe measures are relations too — rules that beat independence "
          "by 2x:")
    rows = system.db.execute(
        "SELECT R.BodyId, R.HeadId, R.CONFIDENCE, M.LIFT "
        "FROM BasketRules R, BasketRules_Metrics M "
        "WHERE R.BodyId = M.BodyId AND R.HeadId = M.HeadId "
        "AND M.LIFT >= 2 ORDER BY M.LIFT DESC LIMIT 5"
    )
    print(rows.pretty())
    print(f"core algorithm chosen by the selector: "
          f"{system.algorithm.last_choice}")


if __name__ == "__main__":
    main()
