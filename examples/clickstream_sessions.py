"""General association rules on a web clickstream.

Three statements exercise the *general* features of MINE RULE that go
beyond classic basket analysis (Section 2):

1. sequential navigation rules — CLUSTER BY minute with the ordered
   cluster condition BODY.minute < HEAD.minute (sequential
   patterns-like rules, as the paper's introduction promises);
2. a mining condition — which catalogue/product pages lead to pages
   where users dwell long;
3. different body and head schemas — pages in the body, *sections* in
   the head.

Run:  python examples/clickstream_sessions.py
"""

from repro import MiningSystem
from repro.datagen import load_clickstream

SEQUENTIAL = """
MINE RULE Navigation AS
SELECT DISTINCT 1..2 page AS BODY, 1..1 page AS HEAD, SUPPORT, CONFIDENCE
FROM Clicks
GROUP BY usr
CLUSTER BY minute HAVING BODY.minute < HEAD.minute
EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.3
"""

DWELL = """
MINE RULE StickyPages AS
SELECT DISTINCT 1..1 page AS BODY, 1..1 page AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.dwell >= 20 AND HEAD.dwell >= 40
FROM Clicks
GROUP BY usr
EXTRACTING RULES WITH SUPPORT: 0.15, CONFIDENCE: 0.3
"""

CROSS_SCHEMA = """
MINE RULE PageToSection AS
SELECT DISTINCT 1..1 page AS BODY, 1..1 section AS HEAD,
       SUPPORT, CONFIDENCE
WHERE BODY.section = 'product' AND HEAD.section <> 'product'
FROM Clicks
GROUP BY usr
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.4
"""


def show(system: MiningSystem, title: str, statement: str, top: int = 8):
    result = system.execute(statement)
    print("=" * 72)
    print(f"{title}   [directives {result.directives}]")
    print("=" * 72)
    ranked = sorted(
        result.rules, key=lambda r: (-r.support, -r.confidence, str(r))
    )
    for rule in ranked[:top]:
        print(f"  {rule}")
    if len(ranked) > top:
        print(f"  ... and {len(ranked) - top} more")
    print()
    return result


def main() -> None:
    system = MiningSystem()
    table = load_clickstream(system.db, users=40, sessions_per_user=3)
    print(f"Clicks table: {len(table)} tuples\n")

    show(system, "1. Sequential navigation (clusters over time)", SEQUENTIAL)
    show(system, "2. Pages leading to long dwells (mining condition)", DWELL)
    show(system, "3. Product pages -> other sections (body/head schemas "
                 "differ)", CROSS_SCHEMA)

    print("All rule sets are stored back in the database:")
    for name in ("Navigation", "StickyPages", "PageToSection"):
        count = system.db.execute(f"SELECT COUNT(*) FROM {name}").scalar()
        print(f"  {name}: {count} rules "
              f"(+ {name}_Bodies, {name}_Heads, {name}_Display)")


if __name__ == "__main__":
    main()
