"""The paper's running example, end to end (Sections 2 and 4).

Reproduces, in order:

* Figure 1   — the Purchase table;
* Figure 2a  — the table grouped by customer and clustered by date;
* the translation program the statement compiles to (queries Q0..Q11,
  Figure 4b / Appendix A);
* Figure 2b  — the FilteredOrderedSets output table, exactly.

Run:  python examples/filtered_ordered_sets.py
"""

from repro import MiningSystem
from repro.datagen import load_purchase_figure1

STATEMENT = """
MINE RULE FilteredOrderedSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""


def main() -> None:
    system = MiningSystem()
    load_purchase_figure1(system.db)

    print("=" * 72)
    print("Figure 1: the Purchase table")
    print("=" * 72)
    print(system.db.table("Purchase").pretty())

    print()
    print("=" * 72)
    print("Figure 2a: grouped by customer, clustered by date")
    print("=" * 72)
    grouped = system.db.execute(
        "SELECT customer, date, item, tr, price, qty FROM Purchase "
        "ORDER BY customer, date, tr"
    )
    print(grouped.pretty())

    result = system.execute(STATEMENT)

    print()
    print("=" * 72)
    print(f"Translation program (directives {result.directives})")
    print("=" * 72)
    for query in result.program.preprocessing:
        print(f"\n-- {query.label}: {query.purpose}")
        print(query.sql)

    print()
    print("=" * 72)
    print("Figure 2b: the FilteredOrderedSets output table")
    print("=" * 72)
    print(system.db.table("FilteredOrderedSets_Display").pretty())

    print("\nProcess flow (Figure 3a):")
    print(result.flow.render())


if __name__ == "__main__":
    main()
