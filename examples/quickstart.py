"""Quickstart: mine simple association rules with MINE RULE.

Loads the paper's Purchase table (Figure 1), submits a simple MINE
RULE statement and shows the output relations that land back in the
database — the defining property of the tightly-coupled architecture.

Run:  python examples/quickstart.py
"""

from repro import MiningSystem
from repro.datagen import load_purchase_figure1

STATEMENT = """
MINE RULE SimpleAssociations AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.75
"""


def main() -> None:
    system = MiningSystem()  # embeds its own SQL server
    load_purchase_figure1(system.db)

    print("Input table Purchase (Figure 1 of the paper):")
    print(system.db.table("Purchase").pretty())
    print()

    result = system.execute(STATEMENT)
    print(f"Statement class: {result.directives}")
    print(f"Mined {len(result.rules)} rules:\n")
    for rule in sorted(result.rules, key=str):
        print(f"  {rule}")

    print("\nRules are ordinary relations, queryable with SQL:")
    strong = system.db.execute(
        "SELECT BodyId, HeadId, SUPPORT, CONFIDENCE "
        "FROM SimpleAssociations WHERE CONFIDENCE = 1 ORDER BY BodyId"
    )
    print(strong.pretty())

    print("\nDecoded bodies (SimpleAssociations_Bodies):")
    print(system.db.table("SimpleAssociations_Bodies").pretty(limit=10))

    print("\nHuman-readable view (SimpleAssociations_Display):")
    print(system.db.table("SimpleAssociations_Display").pretty())


if __name__ == "__main__":
    main()
