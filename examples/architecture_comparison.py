"""Tightly-coupled vs. decoupled architecture, side by side.

Reproduces the paper's motivating argument (Section 1): the decoupled
product-style workflow extracts data to a flat file, re-encodes it in
the tool, mines, and strands the rules outside the database; the
tightly-coupled system keeps everything inside the SQL server.  Both
produce the identical rule set — the difference is the workflow and
where the results live.

Run:  python examples/architecture_comparison.py
"""

import time

from repro import Database, MiningSystem
from repro.datagen import QuestParameters, load_quest
from repro.decoupled import DecoupledWorkflow

SUPPORT = 0.04
CONFIDENCE = 0.5

STATEMENT = f"""
MINE RULE TightRules AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Baskets
GROUP BY tid
EXTRACTING RULES WITH SUPPORT: {SUPPORT}, CONFIDENCE: {CONFIDENCE}
"""


def main() -> None:
    db = Database()
    params = QuestParameters(transactions=800, avg_transaction_size=8,
                             items=150, patterns=80, seed=9)
    load_quest(db, params)
    print(f"Workload: {params.name()}\n")

    # -- tightly coupled ------------------------------------------------
    system = MiningSystem(database=db, reuse_preprocessing=False)
    started = time.perf_counter()
    tight = system.execute(STATEMENT)
    tight_seconds = time.perf_counter() - started
    print("Tightly-coupled run")
    print(f"  one MINE RULE statement, {len(tight.rules)} rules, "
          f"{tight_seconds:.3f}s")
    for component, seconds in tight.timings.items():
        print(f"    {component:<14} {seconds:.3f}s")
    print("  results live in the DB: TightRules, TightRules_Bodies, ...")

    # -- decoupled -------------------------------------------------------
    workflow = DecoupledWorkflow(db)
    started = time.perf_counter()
    report = workflow.run(
        "SELECT tid, item FROM Baskets", "tid", "item", SUPPORT, CONFIDENCE
    )
    decoupled_seconds = time.perf_counter() - started
    print("\nDecoupled run (extract -> flat file -> encode -> mine -> "
          "export)")
    print(f"  {report.extracted_rows} tuples extracted, "
          f"{len(report.rules)} rules, {decoupled_seconds:.3f}s")
    for step, seconds in report.timings.items():
        print(f"    {step:<14} {seconds:.3f}s")
    print("  results live in a text file outside the DB")

    tight_set = {(r.body, r.head) for r in tight.rules}
    decoupled_set = {(r.body, r.head) for r in report.rules}
    print(f"\nIdentical rule sets: {tight_set == decoupled_set}")

    print("\nOnly the tightly-coupled results can be joined with the "
          "database:")
    crossed = db.execute(
        "SELECT COUNT(*) FROM TightRules R WHERE R.CONFIDENCE >= 0.8"
    ).scalar()
    print(f"  SELECT COUNT(*) FROM TightRules WHERE CONFIDENCE >= 0.8 "
          f"-> {crossed}")


if __name__ == "__main__":
    main()
