"""Differential properties of the columnar storage + vectorized path.

The contract of PR 7 is *bit-identity*: for any source data and any
MINE RULE shape — simple (Q0..Q4) and the general variants (Q5..Q11:
clustered, mining condition, both — plus source conditions — every
translation-program query shape), the pipeline must produce identical
decoded rules and identical golden dumps whether the encoded tables
are row heaps or columnar vectors, and whether the vectorized
operators run in memory or spill to disk under a tiny
``memory_budget``.

A second engine-level property drives the same contract below the
mining kernel: random rows through representative SELECT shapes
(filter, join, group/HAVING, ORDER BY, DISTINCT, subquery) on a row
database vs a columnar one vs a columnar one forced to spill.
"""

import datetime

from hypothesis import given, settings, strategies as st

from repro import Database, MiningSystem
from repro.sqlengine import EngineOptions
from repro.sqlengine.dump import dump_table_text

# ---------------------------------------------------------------------------
# MINE RULE shapes: one statement per translation-program classification,
# together covering every query Q0..Q11 the translator can emit
# ---------------------------------------------------------------------------

PURCHASE_COLUMNS = ("tr", "customer", "item", "date", "price", "qty")

STATEMENT_SHAPES = {
    # simple core: Q0..Q4 only
    "simple": (
        "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2"
    ),
    # simple + source condition (extra WHERE in Q0)
    "simple_filtered": (
        "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
        "FROM Purchase WHERE price >= 20 GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2"
    ),
    # general, clustered, no mining condition (Q5..Q9 family)
    "clustered": (
        "MINE RULE R AS SELECT DISTINCT 1..1 item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.1"
    ),
    # general, mining condition without CLUSTER BY (InputRules path)
    "mining_condition": (
        "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
        "WHERE BODY.price >= 50 AND HEAD.price < 50 "
        "FROM Purchase GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.1"
    ),
    # the paper's full example: mining condition + CLUSTER BY + source
    # condition (Q10/Q11 included)
    "full": (
        "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, "
        "1..n item AS HEAD, SUPPORT, CONFIDENCE "
        "WHERE BODY.price >= 50 AND HEAD.price < 50 "
        "FROM Purchase "
        "WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' "
        "GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.1"
    ),
}

_DATES = (
    datetime.date(1995, 1, 10),
    datetime.date(1995, 6, 15),
    datetime.date(1995, 12, 20),
)

purchase_rows = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=30),                   # tr
        st.sampled_from(["ada", "bob", "cleo", "dora"]),          # customer
        st.sampled_from(["boots", "coat", "hat", "ski", "sock",
                         "belt"]),                                # item
        st.sampled_from(_DATES),                                  # date
        st.sampled_from([10.0, 30.0, 50.0, 120.0, 250.0]),        # price
        st.integers(min_value=1, max_value=3),                    # qty
    ),
    min_size=1,
    max_size=40,
)


def _load_purchase(database, rows):
    database.create_table_from_rows(
        "Purchase",
        PURCHASE_COLUMNS,
        rows,
        types=None,
        replace=True,
    )


def _run_pipeline(rows, statement, **system_kw):
    database = Database()
    _load_purchase(database, rows)
    system = MiningSystem(database=database, **system_kw)
    result = system.run(statement)
    out = result.output_table
    dumps = {
        table: dump_table_text(database, table)
        for table in (out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display")
        if database.catalog.has_table(table)
    }
    return result.rules, dumps


class TestPipelineRowVsColumnarVsSpill:
    @settings(max_examples=5, deadline=None)
    @given(rows=purchase_rows, shape=st.sampled_from(sorted(STATEMENT_SHAPES)))
    def test_bit_identical_rules_and_dumps(self, rows, shape):
        statement = STATEMENT_SHAPES[shape]
        row_rules, row_dumps = _run_pipeline(
            rows, statement, storage="row"
        )
        col_rules, col_dumps = _run_pipeline(
            rows, statement, storage="columnar"
        )
        spill_rules, spill_dumps = _run_pipeline(
            rows, statement, storage="columnar",
            memory_budget=2_000, batch_size=16,
        )
        assert col_rules == row_rules
        assert spill_rules == row_rules
        assert col_dumps == row_dumps
        assert spill_dumps == row_dumps


# ---------------------------------------------------------------------------
# engine-level SELECT differential
# ---------------------------------------------------------------------------

SELECT_SHAPES = (
    "SELECT a, b FROM t WHERE a > 3 ORDER BY a, b",
    "SELECT DISTINCT b FROM t ORDER BY b",
    "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b "
    "HAVING COUNT(*) >= 1 ORDER BY b",
    "SELECT t.a, u.c FROM t, u WHERE t.b = u.b ORDER BY t.a, u.c",
    "SELECT a FROM t WHERE b IN (SELECT b FROM u) ORDER BY a",
    "SELECT b, MAX(a), MIN(a) FROM t WHERE a >= 0 GROUP BY b ORDER BY b",
)

engine_rows = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=-5, max_value=20)),  # a
        st.sampled_from(["x", "y", "z", "w"]),                          # b
    ),
    min_size=0,
    max_size=30,
)

other_rows = st.lists(
    st.tuples(
        st.sampled_from(["x", "y", "q"]),                               # b
        st.integers(min_value=0, max_value=9),                          # c
    ),
    min_size=0,
    max_size=10,
)


def _engine_results(options, t_rows, u_rows):
    database = Database(options=options)
    database.create_table_from_rows("t", ("a", "b"), t_rows)
    database.create_table_from_rows("u", ("b", "c"), u_rows)
    return [tuple(database.query(sql)) for sql in SELECT_SHAPES]


class TestEngineRowVsColumnarVsSpill:
    @settings(max_examples=20, deadline=None)
    @given(t_rows=engine_rows, u_rows=other_rows)
    def test_select_shapes_agree(self, t_rows, u_rows):
        row = _engine_results(EngineOptions(storage="row"), t_rows, u_rows)
        col = _engine_results(
            EngineOptions(storage="columnar"), t_rows, u_rows
        )
        spill = _engine_results(
            EngineOptions(
                storage="columnar", memory_budget=500, batch_size=8
            ),
            t_rows,
            u_rows,
        )
        novec = _engine_results(
            EngineOptions(storage="columnar", vectorize=False),
            t_rows,
            u_rows,
        )
        assert col == row
        assert spill == row
        assert novec == row
