"""Round-trip property: parse -> render -> parse is a fixpoint.

Random MINE RULE statements are assembled from generated clauses; the
rendered text must re-parse to a statement whose second rendering is
byte-identical (proving structural identity without needing dataclass
equality across expression trees).
"""

from hypothesis import given, settings, strategies as st

from repro.minerule import classify, parse_mine_rule, render_mine_rule

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True).filter(
    # avoid MINE RULE clause words and SQL keywords in generated names
    lambda s: s.upper() not in {
        "MINE", "RULE", "AS", "SELECT", "DISTINCT", "WHERE", "FROM",
        "GROUP", "BY", "HAVING", "CLUSTER", "EXTRACTING", "RULES",
        "WITH", "SUPPORT", "CONFIDENCE", "BODY", "HEAD", "AND", "OR",
        "NOT", "IN", "IS", "NULL", "BETWEEN", "LIKE", "ALL", "DATE",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "UNION", "CASE", "END",
        "ON", "SET", "TRUE", "FALSE", "EXISTS", "N",
    }
)

cards = st.one_of(
    st.none(),
    st.tuples(st.integers(1, 3), st.one_of(st.none(), st.integers(3, 6))),
)

thresholds = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False
).map(lambda f: round(f, 3))


@st.composite
def statements(draw):
    out = draw(identifiers)
    body_attr = draw(identifiers)
    head_attr = draw(identifiers)
    group_attr = draw(
        identifiers.filter(lambda a: a not in (body_attr, head_attr))
    )
    cluster_attr = draw(
        st.one_of(
            st.none(),
            identifiers.filter(
                lambda a: a not in (body_attr, head_attr, group_attr)
            ),
        )
    )

    def card_text(card):
        if card is None:
            return ""
        low, high = card
        return f"{low}..{high if high is not None else 'n'} "

    body_card = draw(cards)
    head_card = draw(cards)
    parts = [
        f"MINE RULE {out} AS",
        f"SELECT DISTINCT {card_text(body_card)}{body_attr} AS BODY, "
        f"{card_text(head_card)}{head_attr} AS HEAD, SUPPORT, CONFIDENCE",
    ]
    if draw(st.booleans()):
        parts.append(f"WHERE BODY.{body_attr} <> HEAD.{head_attr}")
    source = draw(identifiers)
    source_cond = draw(st.booleans())
    parts.append(
        f"FROM {source}"
        + (f" WHERE {group_attr} IS NOT NULL" if source_cond else "")
    )
    group_having = draw(st.booleans())
    parts.append(
        f"GROUP BY {group_attr}"
        + (" HAVING COUNT(*) >= 2" if group_having else "")
    )
    if cluster_attr is not None:
        cluster_having = draw(st.booleans())
        parts.append(
            f"CLUSTER BY {cluster_attr}"
            + (
                f" HAVING BODY.{cluster_attr} < HEAD.{cluster_attr}"
                if cluster_having
                else ""
            )
        )
    support = draw(thresholds)
    confidence = draw(thresholds)
    parts.append(
        f"EXTRACTING RULES WITH SUPPORT: {support}, "
        f"CONFIDENCE: {confidence}"
    )
    return "\n".join(parts)


class TestRoundTrip:
    @given(text=statements())
    @settings(max_examples=80, deadline=None)
    def test_render_parse_fixpoint(self, text):
        first = parse_mine_rule(text)
        rendered = render_mine_rule(first)
        second = parse_mine_rule(rendered)
        assert render_mine_rule(second) == rendered

    @given(text=statements())
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_preserves_structure(self, text):
        first = parse_mine_rule(text)
        second = parse_mine_rule(render_mine_rule(first))
        assert second.output_table == first.output_table
        assert second.body == first.body
        assert second.head == first.head
        assert second.group_attributes == first.group_attributes
        assert second.cluster_attributes == first.cluster_attributes
        assert second.min_support == first.min_support
        assert second.min_confidence == first.min_confidence
        assert classify(second) == classify(first)
