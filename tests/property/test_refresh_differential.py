"""Differential property: REFRESH RULES == from-scratch MINE RULE.

The contract of :mod:`repro.incremental` is *bit-identity*: for any
append schedule — empty deltas, batches that push border itemsets over
the support threshold, batches that dilute frequent itemsets below it
(``totg`` grows, so ``mingroups`` rises), new items, new groups,
``workers>1`` — a chain of REFRESH runs must leave every output table
(out, ``_Bodies``, ``_Heads``, ``_Display``) byte-equal to mining the
final table from scratch.  Hypothesis drives the schedules; the tables
are compared row-for-row including order.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, MiningSystem
from repro.sqlengine.types import SqlType

STATEMENT = (
    "MINE RULE RefreshDiff AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Baskets GROUP BY basket "
    "EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.4"
)

ITEMS = ["i%d" % n for n in range(8)]

#: one basket: a group id and a non-empty item subset
baskets = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
    ),
    min_size=1,
    max_size=8,
)

#: an append schedule: the seed load plus up to 3 delta batches
#: (batches may be empty — an empty-delta refresh must also hold)
schedules = st.tuples(
    baskets,
    st.lists(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=14),
                st.sets(st.sampled_from(ITEMS), min_size=1, max_size=4),
            ),
            max_size=6,
        ),
        min_size=1,
        max_size=3,
    ),
)


def _rows(batch):
    return [
        (gid, item) for gid, items in batch for item in sorted(items)
    ]


def _fresh_system(rows, workers=1):
    database = Database()
    database.create_table_from_rows(
        "Baskets",
        ("basket", "item"),
        rows,
        (SqlType.INTEGER, SqlType.VARCHAR),
        replace=True,
    )
    return MiningSystem(database=database, workers=workers)


def _append(system, rows):
    table = system.db.catalog.get_table("Baskets")
    for row in rows:
        table.insert(list(row))


def _dump(system):
    out = "RefreshDiff"
    tables = []
    for suffix in ("", "_Bodies", "_Heads", "_Display"):
        table = system.db.catalog.get_table(out + suffix)
        tables.append(
            (
                out + suffix,
                tuple(table.columns),
                [tuple(row) for row in table.rows],
            )
        )
    return tables


class TestRefreshMatchesScratch:
    @given(schedule=schedules)
    @settings(max_examples=40, deadline=None)
    def test_refresh_chain_is_bit_identical(self, schedule):
        seed, deltas = schedule
        seed_rows = _rows(seed)
        incremental = _fresh_system(seed_rows)
        incremental.run(STATEMENT)
        incremental.refresh("RefreshDiff")  # captures state

        all_rows = list(seed_rows)
        for batch in deltas:
            delta_rows = _rows(batch)
            all_rows.extend(delta_rows)
            _append(incremental, delta_rows)
            result = incremental.refresh("RefreshDiff")
            assert result.stats.mode == "incremental"
            assert result.stats.delta_rows == len(delta_rows)

        scratch = _fresh_system(all_rows)
        scratch.run(STATEMENT)
        assert _dump(incremental) == _dump(scratch)

    @given(schedule=schedules)
    @settings(max_examples=10, deadline=None)
    def test_refresh_with_workers_matches_serial_scratch(self, schedule):
        seed, deltas = schedule
        seed_rows = _rows(seed)
        incremental = _fresh_system(seed_rows, workers=2)
        incremental.run(STATEMENT)
        incremental.refresh("RefreshDiff")

        all_rows = list(seed_rows)
        for batch in deltas:
            delta_rows = _rows(batch)
            all_rows.extend(delta_rows)
            _append(incremental, delta_rows)
            incremental.refresh("RefreshDiff")

        scratch = _fresh_system(all_rows)
        scratch.run(STATEMENT)
        assert _dump(incremental) == _dump(scratch)

    @given(batch=baskets)
    @settings(max_examples=20, deadline=None)
    def test_empty_delta_refresh_is_idempotent(self, batch):
        system = _fresh_system(_rows(batch))
        system.run(STATEMENT)
        system.refresh("RefreshDiff")
        before = _dump(system)
        result = system.refresh("RefreshDiff")
        assert result.stats.delta_rows == 0
        assert _dump(system) == before


class TestBorderCrossings:
    """Deterministic schedules that force border traffic both ways."""

    def test_border_itemset_turns_frequent(self):
        # {a,b} appears in 1 of 4 groups (border at support 0.3);
        # appending two more {a,b} groups pushes it over
        seed = [(g, "a") for g in range(4)] + [(0, "b")]
        system = _fresh_system(seed)
        system.run(STATEMENT)
        system.refresh("RefreshDiff")
        _append(system, [(4, "a"), (4, "b"), (5, "a"), (5, "b")])
        result = system.refresh("RefreshDiff")
        assert result.stats.mode == "incremental"
        assert result.stats.recounted_itemsets > 0  # crossed upward

        scratch = _fresh_system(
            seed + [(4, "a"), (4, "b"), (5, "a"), (5, "b")]
        )
        scratch.run(STATEMENT)
        assert _dump(system) == _dump(scratch)

    def test_frequent_itemset_dilutes_below_threshold(self):
        # {a,b} frequent in 2 of 4 groups; appending 8 groups without
        # it drops its support under 0.3
        seed = [(g, "a") for g in range(4)] + [(0, "b"), (1, "b")]
        system = _fresh_system(seed)
        system.run(STATEMENT)
        system.refresh("RefreshDiff")
        delta = [(4 + g, "c") for g in range(8)]
        _append(system, delta)
        system.refresh("RefreshDiff")

        scratch = _fresh_system(seed + delta)
        scratch.run(STATEMENT)
        assert _dump(system) == _dump(scratch)
