"""Property-based dump/restore round-trip tests."""

import datetime

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database
from repro.sqlengine.dump import dump_database, load_database
from repro.sqlengine.lexer import KEYWORDS as _SQL_KEYWORDS
from repro.sqlengine.types import SqlType

texts = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\r"
    ),
    max_size=12,
)

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-100, 100)),
        st.one_of(st.none(), texts),
        st.one_of(st.none(), st.floats(allow_nan=False,
                                       allow_infinity=False)),
        st.one_of(st.none(), st.dates(min_value=datetime.date(1990, 1, 1),
                                      max_value=datetime.date(2050, 1, 1))),
        st.one_of(st.none(), st.booleans()),
    ),
    max_size=25,
)


class TestRoundTrip:
    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_typed_table_roundtrips_exactly(self, rows, tmp_path_factory):
        db = Database()
        db.create_table_from_rows(
            "t",
            ("i", "s", "f", "d", "b"),
            rows,
            (
                SqlType.INTEGER,
                SqlType.VARCHAR,
                SqlType.REAL,
                SqlType.DATE,
                SqlType.BOOLEAN,
            ),
        )
        target = tmp_path_factory.mktemp("dump")
        dump_database(db, target)
        restored = load_database(target)
        assert restored.query("SELECT i, s, f, d, b FROM t") == db.query(
            "SELECT i, s, f, d, b FROM t"
        )

    @given(
        names=st.lists(
            st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)
            .filter(lambda s: s.upper() not in _SQL_KEYWORDS),
            min_size=1,
            max_size=4,
            unique_by=lambda s: s.lower(),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_many_tables_roundtrip(self, names, tmp_path_factory):
        db = Database()
        for index, name in enumerate(names):
            db.create_table_from_rows(
                name, ("x",), [(index,)], (SqlType.INTEGER,)
            )
        target = tmp_path_factory.mktemp("dump")
        dump_database(db, target)
        restored = load_database(target)
        for index, name in enumerate(names):
            assert restored.query(f"SELECT x FROM {name}") == [(index,)]
