"""Property-based tests of MINE RULE end-to-end invariants.

Random basket databases are loaded into the engine and mined through
the full pipeline; the resulting rules must satisfy the operator's
semantic invariants, and the simple and general core variants must
agree on statements both can express.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import Database, MiningSystem
from repro.sqlengine.types import SqlType

#: random group -> items maps; item names keep SQL quoting trivial
baskets = st.dictionaries(
    keys=st.integers(min_value=1, max_value=12),
    values=st.frozensets(
        st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5
    ),
    min_size=1,
    max_size=10,
)

supports = st.sampled_from([0.1, 0.25, 0.5, 0.75])
confidences = st.sampled_from([0.0, 0.3, 0.6, 1.0])


def load(groups):
    db = Database()
    db.create_table_from_rows(
        "Baskets",
        ("grp", "item"),
        [(g, i) for g, items in sorted(groups.items()) for i in sorted(items)],
        (SqlType.INTEGER, SqlType.VARCHAR),
    )
    return db


def statement(min_support, min_confidence, head="1..1", out="R"):
    return (
        f"MINE RULE {out} AS SELECT DISTINCT 1..n item AS BODY, "
        f"{head} item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets "
        f"GROUP BY grp EXTRACTING RULES WITH SUPPORT: {min_support}, "
        f"CONFIDENCE: {min_confidence}"
    )


class TestSemanticInvariants:
    @given(groups=baskets, min_support=supports, min_confidence=confidences)
    @settings(max_examples=30, deadline=None)
    def test_rules_match_direct_recount(
        self, groups, min_support, min_confidence
    ):
        """Support/confidence of every emitted rule recomputed from the
        raw groups must match exactly, and no qualifying rule may be
        missing (for 1..1 heads over frequent pairs)."""
        system = MiningSystem(database=load(groups))
        result = system.execute(statement(min_support, min_confidence))
        totg = len(groups)

        for rule in result.rules:
            both = rule.body | rule.head
            support_count = sum(
                1 for items in groups.values() if both <= items
            )
            body_count = sum(
                1 for items in groups.values() if rule.body <= items
            )
            assert rule.support * totg == support_count
            assert math.isclose(
                rule.confidence, support_count / body_count
            )
            assert rule.support >= min_support - 1e-9
            assert rule.confidence >= min_confidence - 1e-9
            assert not rule.body & rule.head

    @given(groups=baskets, min_support=supports)
    @settings(max_examples=30, deadline=None)
    def test_no_qualifying_pair_rule_missing(self, groups, min_support):
        system = MiningSystem(database=load(groups))
        result = system.execute(statement(min_support, 0.0))
        emitted = {
            (next(iter(r.body)), next(iter(r.head)))
            for r in result.rules
            if len(r.body) == 1
        }
        totg = len(groups)
        threshold = max(1, math.ceil(min_support * totg - 1e-9))
        items = {i for s in groups.values() for i in s}
        for body in items:
            for head in items:
                if body == head:
                    continue
                count = sum(
                    1
                    for s in groups.values()
                    if body in s and head in s
                )
                if count >= threshold:
                    assert (body, head) in emitted

    @given(groups=baskets, min_support=supports, min_confidence=confidences)
    @settings(max_examples=20, deadline=None)
    def test_simple_and_general_cores_agree(
        self, groups, min_support, min_confidence
    ):
        """A tautological mining condition routes the same statement
        through the general core; results must be identical."""
        db = load(groups)
        db.execute("UPDATE Baskets SET grp = grp")  # no-op sanity
        simple = MiningSystem(database=db).execute(
            statement(min_support, min_confidence, out="S")
        )
        general_text = statement(
            min_support, min_confidence, out="G"
        ).replace(
            "FROM Baskets",
            "WHERE BODY.item <> HEAD.item FROM Baskets",
        )
        general = MiningSystem(database=db).execute(general_text)
        assert simple.directives.simple
        assert general.directives.general
        assert simple.rule_set() == general.rule_set()

    @given(groups=baskets, min_support=supports)
    @settings(max_examples=20, deadline=None)
    def test_wider_heads_superset_of_pairs(self, groups, min_support):
        """With 1..n heads every 1..1-head rule still appears."""
        db = load(groups)
        narrow = MiningSystem(database=db).execute(
            statement(min_support, 0.0, head="1..1", out="N")
        )
        wide = MiningSystem(database=db).execute(
            statement(min_support, 0.0, head="1..n", out="W")
        )
        assert narrow.rule_set() <= wide.rule_set()

    @given(groups=baskets)
    @settings(max_examples=20, deadline=None)
    def test_support_threshold_monotone(self, groups):
        db = load(groups)
        loose = MiningSystem(database=db).execute(statement(0.1, 0.0,
                                                            out="L"))
        tight = MiningSystem(database=db).execute(statement(0.75, 0.0,
                                                            out="T"))
        tight_keys = {(r.body, r.head) for r in tight.rules}
        loose_keys = {(r.body, r.head) for r in loose.rules}
        assert tight_keys <= loose_keys


class TestClusterInvariants:
    clustered = st.dictionaries(
        keys=st.integers(min_value=1, max_value=6),
        values=st.dictionaries(
            keys=st.integers(min_value=1, max_value=3),  # cluster key
            values=st.frozensets(
                st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3
            ),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=6,
    )

    @staticmethod
    def load_clustered(groups):
        db = Database()
        rows = []
        for gid, clusters in sorted(groups.items()):
            for ckey, items in sorted(clusters.items()):
                for item in sorted(items):
                    rows.append((gid, ckey, item))
        db.create_table_from_rows(
            "T",
            ("grp", "ckey", "item"),
            rows,
            (SqlType.INTEGER, SqlType.INTEGER, SqlType.VARCHAR),
        )
        return db

    @given(groups=clustered, min_support=supports)
    @settings(max_examples=20, deadline=None)
    def test_ordered_clusters_subset_of_unordered(self, groups, min_support):
        db = self.load_clustered(groups)
        base = (
            "MINE RULE {out} AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "CLUSTER BY ckey {having} "
            f"EXTRACTING RULES WITH SUPPORT: {min_support}, CONFIDENCE: 0.0"
        )
        unordered = MiningSystem(database=db).execute(
            base.format(out="U", having="")
        )
        ordered = MiningSystem(database=db).execute(
            base.format(out="O", having="HAVING BODY.ckey < HEAD.ckey")
        )
        ordered_keys = {(r.body, r.head) for r in ordered.rules}
        unordered_keys = {(r.body, r.head) for r in unordered.rules}
        assert ordered_keys <= unordered_keys

    @given(groups=clustered, min_support=supports)
    @settings(max_examples=20, deadline=None)
    def test_cluster_rule_support_recount(self, groups, min_support):
        """Recompute clustered-rule support directly from the data."""
        db = self.load_clustered(groups)
        result = MiningSystem(database=db).execute(
            "MINE RULE O AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "CLUSTER BY ckey HAVING BODY.ckey < HEAD.ckey "
            f"EXTRACTING RULES WITH SUPPORT: {min_support}, CONFIDENCE: 0.0"
        )
        totg = len(groups)
        for rule in result.rules:
            body = next(iter(rule.body))
            head = next(iter(rule.head))
            expected = sum(
                1
                for clusters in groups.values()
                if any(
                    body in b_items and head in h_items
                    for bk, b_items in clusters.items()
                    for hk, h_items in clusters.items()
                    if bk < hk
                )
            )
            assert rule.support * totg == expected
