"""Property: resume-after-crash equals single-shot execution.

For every pipeline stage — each translated query Q0..Q11 by label,
the core operator sites, and both postprocessor sites — killing the
run at that stage and finishing it with ``run(resume=True)`` must
yield exactly the rule set (and output-relation bytes) of an
uninterrupted run.  Hypothesis drives the (statement, site, call)
space; the armed fault sometimes never fires (the site is unreachable
at that call count), in which case the first run already succeeding
bit-identically is the property.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, FaultError, FaultSchedule, MiningSystem, faults
from repro.datagen import load_purchase_figure1
from repro.kernel.names import Workspace
from repro.kernel.translator import Translator
from repro.sqlengine.dump import dump_table_text

STATEMENTS = {
    "simple": (
        "MINE RULE PropSimple AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
    "general": (
        "MINE RULE PropGeneral AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "WHERE BODY.price >= 100 AND HEAD.price < 100 "
        "FROM Purchase "
        "WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' "
        "GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
}


def _fresh_db() -> Database:
    database = Database()
    load_purchase_figure1(database)
    return database


def _query_sites(statement: str) -> list:
    """Every preprocessor site of *statement*, from its actual
    translation — one per Q-label, so each translated query is a crash
    candidate."""
    program = Translator(_fresh_db()).translate(statement, Workspace("X"))
    labels = {query.label for query in program.preprocessing}
    return sorted(f"preprocessor.{label}" for label in labels)


_CORE_POST = ["engine.execute", "core.load", "core.simple", "core.lattice",
              "core.bitset", "postprocessor.store", "postprocessor.decode"]

SITES = {
    name: _query_sites(statement) + _CORE_POST
    for name, statement in STATEMENTS.items()
}

_BASELINES = {}


def _baseline(name):
    if name not in _BASELINES:
        system = MiningSystem(database=_fresh_db())
        result = system.run(STATEMENTS[name])
        _BASELINES[name] = (
            result.rule_set(),
            _fingerprint(system, result.output_table),
        )
    return _BASELINES[name]


def _fingerprint(system, out):
    return "".join(
        dump_table_text(system.db, table)
        for table in (out, f"{out}_Bodies", f"{out}_Heads")
    )


@settings(
    deadline=None,
    max_examples=60,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_resume_after_crash_equals_single_shot(data):
    name = data.draw(st.sampled_from(sorted(STATEMENTS)), label="statement")
    site = data.draw(st.sampled_from(SITES[name]), label="site")
    call = data.draw(st.integers(min_value=1, max_value=4), label="call")

    base_rules, base_text = _baseline(name)
    system = MiningSystem(database=_fresh_db())
    schedule = FaultSchedule(sleep=lambda s: None).arm(site, call=call)

    crashed = False
    try:
        with faults.injected(schedule):
            result = system.run(STATEMENTS[name])
    except FaultError:
        crashed = True
        assert system.checkpoint_for(STATEMENTS[name]) is not None
        result = system.run(STATEMENTS[name], resume=True)

    assert result.rule_set() == base_rules
    assert _fingerprint(system, result.output_table) == base_text
    if crashed:
        # the checkpoint is consumed by the successful resume
        assert system.checkpoint_for(STATEMENTS[name]) is None


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    resumes=st.integers(min_value=1, max_value=3),
)
def test_repeated_crashes_eventually_converge(seed, resumes):
    """Even a multi-fault schedule drains over repeated resumed runs:
    per-site counters advance monotonically, every armed window passes,
    and the final output is the single-shot output."""
    name = "simple"
    base_rules, _ = _baseline(name)
    system = MiningSystem(database=_fresh_db())
    schedule = FaultSchedule.random(
        seed,
        sites=tuple(SITES[name]),
        max_faults=resumes,
        sleep=lambda s: None,
    )
    result = None
    with faults.injected(schedule):
        for _ in range(24):
            try:
                result = system.run(STATEMENTS[name], resume=True)
                break
            except FaultError:
                continue
    assert result is not None, "schedule never drained"
    assert result.rule_set() == base_rules
