"""Property: the job state machine never reaches an invalid state.

Hypothesis drives random event sequences (submit / start / finish /
fail / cancel / requeue) against a :class:`JobTable` next to a pure
reference model of the TRANSITIONS relation.  Invariants:

* every accepted transition is an edge of TRANSITIONS — the table and
  the model agree on acceptance and on the resulting state;
* terminal states are sticky: once ``done``/``failed``/``cancelled``,
  every further event is rejected and the state never changes;
* the attempt counter equals the number of accepted starts;
* a cancel on a queued job is immediate, on a running job it only sets
  the cooperative flag, and on a terminal job it is a no-op.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL,
    TRANSITIONS,
    InvalidTransition,
    JobTable,
)

#: event -> target state of the direct-transition events
EVENTS = {
    "start": RUNNING,
    "finish": DONE,
    "fail": FAILED,
    "cancel_hard": CANCELLED,
    "requeue": QUEUED,
}

event_strategy = st.sampled_from(sorted(EVENTS) + ["request_cancel"])


@settings(max_examples=200, deadline=None)
@given(events=st.lists(event_strategy, min_size=0, max_size=30))
def test_random_event_sequences_respect_the_state_machine(events):
    table = JobTable()
    job = table.new_job("SELECT 1", "sql")
    model_state = QUEUED
    accepted_starts = 0

    for event in events:
        if event == "request_cancel":
            before = table.get(job.id).state
            record = table.request_cancel(job.id)
            if before == QUEUED:
                model_state = CANCELLED
                assert record.state == CANCELLED
            elif before == RUNNING:
                assert record.state == RUNNING
                assert record.cancel_requested
            else:
                assert before in TERMINAL
                assert record.state == before  # sticky no-op
            continue

        target = EVENTS[event]
        legal = target in TRANSITIONS[model_state]
        if legal:
            record = table.transition(job.id, target)
            model_state = target
            if target == RUNNING:
                accepted_starts += 1
            assert record.state == model_state
        else:
            with pytest.raises(InvalidTransition):
                table.transition(job.id, target)
            assert table.get(job.id).state == model_state

    final = table.get(job.id)
    assert final.state == model_state
    assert final.attempts == accepted_starts
    if final.state in TERMINAL:
        assert final.terminal
        assert not TRANSITIONS[final.state]


@settings(max_examples=100, deadline=None)
@given(
    terminal=st.sampled_from(sorted(TERMINAL)),
    events=st.lists(event_strategy, min_size=1, max_size=10),
)
def test_terminal_states_are_sticky(terminal, events):
    """Drive a job into a terminal state, then throw every event at
    it: the state must never move again."""
    table = JobTable()
    job = table.new_job("SELECT 1", "sql")
    if terminal in (DONE,):
        table.transition(job.id, RUNNING)
    elif terminal == FAILED:
        table.transition(job.id, RUNNING)
    table.transition(job.id, terminal)

    for event in events:
        if event == "request_cancel":
            table.request_cancel(job.id)  # idempotent no-op
        else:
            with pytest.raises(InvalidTransition):
                table.transition(job.id, EVENTS[event])
        assert table.get(job.id).state == terminal
