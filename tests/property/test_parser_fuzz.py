"""Fuzzing the parsers: malformed input must fail cleanly.

Whatever bytes arrive, the SQL and MINE RULE parsers must either parse
or raise their declared error types — never crash with an arbitrary
exception, never hang.  Mutations of valid statements probe the error
paths near the grammar's surface.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.minerule import MineRuleParseError, parse_mine_rule
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.parser import parse_sql

VALID_SQL = (
    "SELECT DISTINCT V.Gid, B.Bid FROM Source S, ValidGroups V, Bset B "
    "WHERE S.customer = V.customer AND S.item = B.item"
)

VALID_MINE = (
    "MINE RULE Out AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS "
    "HEAD, SUPPORT, CONFIDENCE WHERE BODY.price >= 100 FROM Purchase "
    "GROUP BY customer CLUSTER BY date HAVING BODY.date < HEAD.date "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
)


def mutate(text: str, position: int, mutation: str, insert: bool) -> str:
    position %= max(1, len(text))
    if insert:
        return text[:position] + mutation + text[position:]
    return text[:position] + mutation + text[position + len(mutation):]


class TestSqlFuzz:
    @given(text=st.text(max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_sql(text)
        except SqlParseError:
            pass

    @given(
        position=st.integers(min_value=0, max_value=10_000),
        mutation=st.sampled_from(
            [")", "(", ",", "'", "SELECT", "..", ":", "*", ";", "=",
             "WHERE", ""]
        ),
        insert=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_mutated_statement_fails_cleanly(self, position, mutation,
                                             insert):
        mutated = mutate(VALID_SQL, position, mutation, insert)
        try:
            parse_sql(mutated)
        except SqlParseError:
            pass

    @given(depth=st.integers(min_value=1, max_value=60))
    @settings(max_examples=30, deadline=None)
    def test_unbalanced_parens_rejected(self, depth):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT " + "(" * depth + "1")


class TestMineRuleFuzz:
    @given(text=st.text(max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_mine_rule(text)
        except MineRuleParseError:
            pass

    @given(
        position=st.integers(min_value=0, max_value=10_000),
        mutation=st.sampled_from(
            ["BODY", "HEAD", "..", "MINE", "GROUP", ",", "(", "'", ":",
             "0.5", ""]
        ),
        insert=st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_mutated_statement_fails_cleanly(self, position, mutation,
                                             insert):
        mutated = mutate(VALID_MINE, position, mutation, insert)
        try:
            parse_mine_rule(mutated)
        except MineRuleParseError:
            pass

    @given(text=st.text(alphabet="MINERUL .;:()'\n", max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_keyword_soup_rejected_cleanly(self, text):
        try:
            parse_mine_rule(text)
        except MineRuleParseError:
            pass
