"""Differential tests for the packed-bitset representation (PR 2).

Two contracts, both bit-identical by construction and enforced here:

* every registered pool algorithm — including the vertical ``eclat``
  member — returns the same :data:`ItemsetCounts` as the set-based
  Apriori reference over randomized group maps;
* the general core operator emits the same ordered ``EncodedRule``
  list whether its triple sets are Python ``set`` objects or packed
  bitmaps, over randomized clustered inputs (derived elementary rules,
  ``ClusterCouples`` restrictions, and SQL-precomputed ``InputRules``).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import ALGORITHMS, get_algorithm
from repro.algorithms.apriori import Apriori
from repro.kernel.core.general import GeneralCoreOperator
from repro.kernel.core.inputs import GeneralInput
from repro.kernel.program import CoreDirectives

group_maps = st.dictionaries(
    keys=st.integers(min_value=1, max_value=30),
    values=st.frozensets(st.integers(min_value=0, max_value=7), max_size=6),
    max_size=12,
)

thresholds = st.integers(min_value=1, max_value=5)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestPoolAgreesWithSetBasedReference:
    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=30, deadline=None)
    def test_identical_itemset_counts(self, name, groups, min_count):
        reference = Apriori(representation="set").mine(groups, min_count)
        assert get_algorithm(name).mine(groups, min_count) == reference


class TestGidListAlgorithmsHonourTheSwitch:
    @pytest.mark.parametrize(
        "name", ["apriori", "aprioritid", "partition", "sampling"]
    )
    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=20, deadline=None)
    def test_set_path_matches_bitset_path(self, name, groups, min_count):
        bitset = get_algorithm(name, representation="bitset")
        sets = get_algorithm(name, representation="set")
        assert bitset.mine(groups, min_count) == sets.mine(
            groups, min_count
        )


# ---------------------------------------------------------------------------
# general core: randomized clustered inputs
# ---------------------------------------------------------------------------

item_sets = st.sets(st.integers(min_value=0, max_value=5), max_size=4)


@st.composite
def clustered_inputs(draw):
    """A random :class:`GeneralInput` (derived-elementary path) plus
    matching :class:`CoreDirectives`."""
    same_schema = draw(st.booleans())
    n_groups = draw(st.integers(min_value=1, max_value=6))
    body_items, head_items = {}, {}
    for gid in range(1, n_groups + 1):
        clusters = draw(st.integers(min_value=1, max_value=3))
        body, head = {}, {}
        for cid in range(1, clusters + 1):
            bids = draw(item_sets)
            if bids:
                body[cid] = set(bids)
            if same_schema:
                if bids:
                    head[cid] = set(bids)
            else:
                hids = draw(item_sets)
                if hids:
                    head[cid] = set(hids)
        if body:
            body_items[gid] = body
        if head:
            head_items[gid] = head

    cluster_pairs = None
    if draw(st.booleans()):
        cluster_pairs = {}
        for gid in set(body_items) | set(head_items):
            pairs = draw(
                st.sets(
                    st.tuples(
                        st.integers(min_value=1, max_value=3),
                        st.integers(min_value=1, max_value=3),
                    ),
                    max_size=4,
                )
            )
            if pairs:
                cluster_pairs[gid] = pairs

    data = GeneralInput(
        totg=n_groups,
        min_count=draw(st.integers(min_value=1, max_value=3)),
        same_schema=same_schema,
        clustered=True,
        body_items=body_items,
        head_items=head_items,
        cluster_pairs=cluster_pairs,
        elementary=None,
    )
    directives = _directives(
        draw,
        same_schema=same_schema,
        cluster_condition=cluster_pairs is not None,
        mining_condition=False,
    )
    return data, directives


@st.composite
def elementary_inputs(draw):
    """A random :class:`GeneralInput` with SQL-precomputed elementary
    rules (the ``InputRules`` path, queries Q8..Q10)."""
    n_groups = draw(st.integers(min_value=1, max_value=6))
    rows = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=n_groups),  # gid
                st.integers(min_value=1, max_value=2),  # bcid
                st.integers(min_value=1, max_value=2),  # hcid
                st.integers(min_value=0, max_value=5),  # bid
                st.integers(min_value=0, max_value=5),  # hid
            ),
            max_size=30,
        )
    )
    # body occurrences must cover the rules' bodies for confidence
    body_items = {}
    for gid, bcid, _hcid, bid, _hid in rows:
        body_items.setdefault(gid, {}).setdefault(bcid, set()).add(bid)
    data = GeneralInput(
        totg=n_groups,
        min_count=draw(st.integers(min_value=1, max_value=3)),
        same_schema=False,
        clustered=True,
        body_items=body_items,
        head_items={},
        cluster_pairs=None,
        elementary=rows,
    )
    directives = _directives(
        draw, same_schema=False, cluster_condition=False,
        mining_condition=True,
    )
    return data, directives


def _directives(draw, same_schema, cluster_condition, mining_condition):
    body_max = draw(st.sampled_from([None, 2, 3]))
    head_max = draw(st.sampled_from([None, 2]))
    return CoreDirectives(
        simple=False,
        same_schema=same_schema,
        clustered=True,
        cluster_condition=cluster_condition,
        mining_condition=mining_condition,
        coded_source="CS",
        cluster_couples="CC" if cluster_condition else None,
        input_rules="IR" if mining_condition else None,
        min_support=0.0,
        min_confidence=draw(st.sampled_from([0.0, 0.3, 1.0])),
        body_card=(1, body_max),
        head_card=(1, head_max),
    )


class TestGeneralCoreRepresentations:
    @given(case=clustered_inputs())
    @settings(max_examples=50, deadline=None)
    def test_derived_elementary_rules_identical(self, case):
        data, directives = case
        set_rules = GeneralCoreOperator(representation="set").run(
            data, directives
        )
        bitset_op = GeneralCoreOperator(representation="bitset")
        bitset_rules = bitset_op.run(data, directives)
        assert bitset_rules == set_rules

    @given(case=elementary_inputs())
    @settings(max_examples=50, deadline=None)
    def test_input_rules_path_identical(self, case):
        data, directives = case
        set_op = GeneralCoreOperator(representation="set")
        bitset_op = GeneralCoreOperator(representation="bitset")
        assert bitset_op.run(data, directives) == set_op.run(
            data, directives
        )

    @given(case=clustered_inputs())
    @settings(max_examples=20, deadline=None)
    def test_observability_counters_match(self, case):
        """Lattice shape and join work are representation-independent."""
        data, directives = case
        set_op = GeneralCoreOperator(representation="set")
        bitset_op = GeneralCoreOperator(representation="bitset")
        set_op.run(data, directives)
        bitset_op.run(data, directives)
        assert bitset_op.lattice_sizes == set_op.lattice_sizes
        assert bitset_op.join_pairs_examined == set_op.join_pairs_examined
