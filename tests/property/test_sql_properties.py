"""Property-based tests of the SQL engine against Python oracles."""

import collections

from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=-50, max_value=50),
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["red", "green", "blue", None]),
    ),
    max_size=40,
)

bounds = st.tuples(
    st.integers(min_value=-50, max_value=50),
    st.integers(min_value=-50, max_value=50),
)


def make_db(rows):
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, k INTEGER, c VARCHAR)")
    table = db.table("t")
    for row in rows:
        table.insert(row)
    return db


class TestFilterOracle:
    @given(rows=rows_strategy, bound=st.integers(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_where_matches_python_filter(self, rows, bound):
        db = make_db(rows)
        got = db.query(f"SELECT a FROM t WHERE a > {bound}")
        expected = [(a,) for a, _, _ in rows if a > bound]
        assert got == expected

    @given(rows=rows_strategy, bound=bounds)
    @settings(max_examples=50, deadline=None)
    def test_between_matches_python(self, rows, bound):
        low, high = min(bound), max(bound)
        db = make_db(rows)
        got = db.query(f"SELECT a FROM t WHERE a BETWEEN {low} AND {high}")
        expected = [(a,) for a, _, _ in rows if low <= a <= high]
        assert got == expected

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_null_aware_equality(self, rows):
        db = make_db(rows)
        got = db.query("SELECT a FROM t WHERE c = 'red'")
        expected = [(a,) for a, _, c in rows if c == "red"]
        assert got == expected


class TestAggregationOracle:
    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_count_star(self, rows):
        db = make_db(rows)
        assert db.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_group_by_counts_match_counter(self, rows):
        db = make_db(rows)
        got = dict(db.query("SELECT k, COUNT(*) FROM t GROUP BY k"))
        expected = collections.Counter(k for _, k, _ in rows)
        assert got == dict(expected)

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_sum_per_group(self, rows):
        db = make_db(rows)
        got = dict(db.query("SELECT k, SUM(a) FROM t GROUP BY k"))
        expected = {}
        for a, k, _ in rows:
            expected[k] = expected.get(k, 0) + a
        assert got == expected

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_count_distinct(self, rows):
        db = make_db(rows)
        got = db.execute("SELECT COUNT(DISTINCT k) FROM t").scalar()
        assert got == len({k for _, k, _ in rows})


class TestDistinctOrderOracle:
    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_distinct_matches_set(self, rows):
        db = make_db(rows)
        got = db.query("SELECT DISTINCT a, k FROM t")
        assert len(got) == len(set(got))
        assert set(got) == {(a, k) for a, k, _ in rows}

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_order_by_matches_sorted(self, rows):
        db = make_db(rows)
        got = [a for (a,) in db.query("SELECT a FROM t ORDER BY a")]
        assert got == sorted(a for a, _, _ in rows)

    @given(rows=rows_strategy)
    @settings(max_examples=50, deadline=None)
    def test_order_desc_is_reverse(self, rows):
        db = make_db(rows)
        asc = db.query("SELECT a FROM t ORDER BY a")
        desc = db.query("SELECT a FROM t ORDER BY a DESC")
        assert [a for (a,) in desc] == sorted(
            (a for (a,) in asc), reverse=True
        )


class TestJoinOracle:
    @given(
        left=st.lists(st.integers(0, 8), max_size=15),
        right=st.lists(st.integers(0, 8), max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_equijoin_cardinality(self, left, right):
        db = Database()
        db.execute("CREATE TABLE l (x INTEGER)")
        db.execute("CREATE TABLE r (x INTEGER)")
        for v in left:
            db.table("l").insert((v,))
        for v in right:
            db.table("r").insert((v,))
        got = db.execute(
            "SELECT COUNT(*) FROM l, r WHERE l.x = r.x"
        ).scalar()
        right_counts = collections.Counter(right)
        expected = sum(right_counts[v] for v in left)
        assert got == expected

    @given(
        left=st.lists(st.integers(0, 5), max_size=10, unique=True),
        right=st.lists(st.integers(0, 5), max_size=10, unique=True),
    )
    @settings(max_examples=50, deadline=None)
    def test_set_operations_match_python_sets(self, left, right):
        db = Database()
        db.execute("CREATE TABLE l (x INTEGER)")
        db.execute("CREATE TABLE r (x INTEGER)")
        for v in left:
            db.table("l").insert((v,))
        for v in right:
            db.table("r").insert((v,))
        union = {x for (x,) in db.query(
            "SELECT x FROM l UNION SELECT x FROM r")}
        inter = {x for (x,) in db.query(
            "SELECT x FROM l INTERSECT SELECT x FROM r")}
        diff = {x for (x,) in db.query(
            "SELECT x FROM l EXCEPT SELECT x FROM r")}
        assert union == set(left) | set(right)
        assert inter == set(left) & set(right)
        assert diff == set(left) - set(right)
