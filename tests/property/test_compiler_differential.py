"""Differential testing: compiled expression closures vs interpreter.

Every SELECT here runs twice — once with ``compile_expressions`` on
(the default) and once with it off — and the two engines must agree
exactly, row for row.  The corpus concentrates on the places where a
compiled path could plausibly diverge from the tree-walking
interpreter: three-valued logic, NULL join keys, short-circuit
evaluation, CASE branch order, and the interpreter-fallback seams
(aggregates, subqueries, correlated references).

A second set of checks asserts that re-executing a statement through
the plan cache (same engine, repeated runs, interleaved DML/DDL) keeps
producing the same answer as a cache-cold engine.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database, EngineOptions


def _make_pair():
    """Two engines over identical data: compiled and interpreted."""
    compiled = Database(EngineOptions(compile_expressions=True))
    interpreted = Database(EngineOptions(compile_expressions=False))
    return compiled, interpreted


SCHEMA = [
    "CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR, d REAL)",
    "CREATE TABLE u (a INTEGER, name VARCHAR)",
]


def _load(db, t_rows, u_rows):
    for ddl in SCHEMA:
        db.execute(ddl)
    db.table("t").insert_many(t_rows)
    db.table("u").insert_many(u_rows)


# NULL-heavy data: every column is nullable so 3VL and NULL join keys
# are exercised constantly, not occasionally.
t_rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-5, 5)),
        st.one_of(st.none(), st.integers(0, 3)),
        st.one_of(st.none(), st.sampled_from(["ski pants", "hiking boots",
                                              "brown boots", "jackets"])),
        st.one_of(st.none(), st.floats(-2.0, 2.0, allow_nan=False)),
    ),
    max_size=25,
)

u_rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(-5, 5)),
        st.one_of(st.none(), st.sampled_from(["x", "y", "z"])),
    ),
    max_size=12,
)

# Each query must be deterministic (ORDER BY where row order could
# differ is unnecessary here: both engines share the same operators and
# therefore the same row production order).
QUERY_CORPUS = [
    # 3VL in WHERE: NULL comparisons, NOT over unknown, OR/AND mixes
    "SELECT a, b FROM t WHERE a > 0",
    "SELECT a FROM t WHERE NOT (a > 0)",
    "SELECT a, b FROM t WHERE a > 0 OR b = 1",
    "SELECT a, b FROM t WHERE a > 0 AND NOT (b = 1)",
    "SELECT a FROM t WHERE a = a",
    "SELECT a FROM t WHERE a <> 2 OR c = 'jackets'",
    # IS NULL / IN / BETWEEN / LIKE / CASE / COALESCE / NULLIF / CAST
    "SELECT a FROM t WHERE a IS NULL",
    "SELECT a FROM t WHERE a IS NOT NULL AND b IS NULL",
    "SELECT a FROM t WHERE a IN (1, 2, NULL)",
    "SELECT a FROM t WHERE a NOT IN (1, 2)",
    "SELECT a FROM t WHERE a BETWEEN -1 AND 3",
    "SELECT a FROM t WHERE a NOT BETWEEN b AND b + 2",
    "SELECT c FROM t WHERE c LIKE '%boots'",
    "SELECT c FROM t WHERE c LIKE '_ki%'",
    "SELECT CASE WHEN a > 0 THEN 'pos' WHEN a < 0 THEN 'neg' "
    "ELSE 'zero or null' END FROM t",
    "SELECT CASE a WHEN 1 THEN 'one' WHEN NULL THEN 'never' END FROM t",
    "SELECT COALESCE(a, b, -99) FROM t",
    "SELECT NULLIF(a, b) FROM t",
    "SELECT CAST(a AS VARCHAR) FROM t WHERE a IS NOT NULL",
    "SELECT CAST(d AS INTEGER) FROM t WHERE d IS NOT NULL",
    # arithmetic, concatenation, scalar functions
    "SELECT a + b * 2, a - b, -a FROM t",
    "SELECT a / b FROM t WHERE b <> 0",
    "SELECT c || '!' FROM t",
    "SELECT UPPER(c), LENGTH(c), SUBSTR(c, 1, 3) FROM t",
    "SELECT ABS(a), MOD(a, 3) FROM t WHERE a IS NOT NULL",
    # joins with NULL keys: inner and left outer must both drop/pad
    # identically under compiled and interpreted key evaluation
    "SELECT t.a, u.name FROM t, u WHERE t.a = u.a",
    "SELECT t.a, u.name FROM t JOIN u ON t.a = u.a",
    "SELECT t.a, u.name FROM t LEFT JOIN u ON t.a = u.a",
    "SELECT t.a, u.name FROM t LEFT JOIN u ON t.a = u.a AND u.name = 'x'",
    "SELECT t1.a, t2.b FROM t t1, t t2 WHERE t1.a = t2.b AND t1.c = 'jackets'",
    "SELECT t.a FROM t, u WHERE t.a = u.a AND t.b + 1 > u.a",
    # grouping / HAVING / aggregates (interpreter-fallback seam)
    "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b",
    "SELECT b, COUNT(a), AVG(a) FROM t GROUP BY b HAVING COUNT(*) > 1",
    "SELECT COUNT(*), MIN(a), MAX(a) FROM t",
    "SELECT COUNT(DISTINCT b) FROM t",
    "SELECT b, COUNT(*) FROM t WHERE a IS NOT NULL GROUP BY b",
    # DISTINCT / ORDER BY / LIMIT
    "SELECT DISTINCT b FROM t ORDER BY 1",
    "SELECT a, b FROM t ORDER BY b, a",
    "SELECT a FROM t ORDER BY a DESC LIMIT 3",
    "SELECT a FROM t ORDER BY a LIMIT 2 OFFSET 1",
    "SELECT DISTINCT a + 0 FROM t ORDER BY 1 DESC",
    # subqueries: scalar, IN, EXISTS, correlated (fallback seam)
    "SELECT a FROM t WHERE a IN (SELECT a FROM u)",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
    "SELECT a FROM t WHERE a > (SELECT MIN(a) FROM u)",
    "SELECT (SELECT COUNT(*) FROM u WHERE u.a = t.a) FROM t",
    # set operations
    "SELECT a FROM t UNION SELECT a FROM u",
    "SELECT a FROM t UNION ALL SELECT a FROM u",
]


@pytest.mark.parametrize("sql", QUERY_CORPUS)
@given(t_rows=t_rows_strategy, u_rows=u_rows_strategy)
@settings(max_examples=15, deadline=None)
def test_compiled_matches_interpreted(sql, t_rows, u_rows):
    compiled, interpreted = _make_pair()
    _load(compiled, t_rows, u_rows)
    _load(interpreted, t_rows, u_rows)
    expected = interpreted.execute(sql)
    got = compiled.execute(sql)
    assert got.columns == expected.columns
    assert got.rows == expected.rows


@given(t_rows=t_rows_strategy, u_rows=u_rows_strategy)
@settings(max_examples=20, deadline=None)
def test_host_variables_rebind_through_cached_plan(t_rows, u_rows):
    """A cached plan must read the parameters of each execution, not
    the ones it was first planned with."""
    compiled, interpreted = _make_pair()
    _load(compiled, t_rows, u_rows)
    _load(interpreted, t_rows, u_rows)
    sql = "SELECT a, b FROM t WHERE a > :low AND b <= :high"
    for params in ({"low": -2, "high": 1}, {"low": 0, "high": 3},
                   {"low": 3, "high": 0}):
        assert compiled.query(sql, params) == interpreted.query(sql, params)


@given(t_rows=t_rows_strategy)
@settings(max_examples=20, deadline=None)
def test_cached_reexecution_sees_dml(t_rows):
    """Repeated execution through the plan cache tracks table updates,
    and matches a cache-cold engine at every step."""
    db = Database()
    cold = Database(EngineOptions(plan_cache=False, compile_expressions=False))
    for engine in (db, cold):
        engine.execute("CREATE TABLE t (a INTEGER, b INTEGER, c VARCHAR, "
                       "d REAL)")
        engine.table("t").insert_many(t_rows)
    sql = "SELECT a, b FROM t WHERE a >= 0 OR b IS NULL"
    prepared = db.prepare(sql)
    assert prepared.query() == cold.query(sql)
    for engine in (db, cold):
        engine.execute("INSERT INTO t VALUES (0, NULL, 'added', NULL)")
    assert prepared.query() == cold.query(sql)
    for engine in (db, cold):
        engine.execute("DELETE FROM t WHERE a < 0")
    assert prepared.query() == cold.query(sql)


def test_ddl_invalidates_cached_plan():
    """Dropping and recreating a referenced table must not leave a
    stale plan scanning the old table object."""
    db = Database()
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (1)")
    prepared = db.prepare("SELECT a FROM t")
    assert prepared.query() == [(1,)]
    db.execute("DROP TABLE t")
    db.execute("CREATE TABLE t (a INTEGER)")
    db.execute("INSERT INTO t VALUES (2)")
    assert prepared.query() == [(2,)]
