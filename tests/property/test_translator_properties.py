"""Property: every generated translation program is executable.

Random MINE RULE statements spanning the full directive space
(H, W, M, G, C, K, F, R combinations) are translated; every emitted
query must parse, and the whole pipeline must run on a small synthetic
source table producing semantically valid rules.
"""

import math

from hypothesis import given, settings, strategies as st

from repro import MiningSystem
from repro.sqlengine import Database
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.types import SqlType


def build_db(rows):
    db = Database()
    db.create_table_from_rows(
        "Src",
        ("grp", "ckey", "item", "tag", "price"),
        rows,
        (
            SqlType.INTEGER,
            SqlType.INTEGER,
            SqlType.VARCHAR,
            SqlType.VARCHAR,
            SqlType.INTEGER,
        ),
    )
    return db


rows_strategy = st.lists(
    st.tuples(
        st.integers(1, 5),  # grp
        st.integers(1, 3),  # ckey
        st.sampled_from(["a", "b", "c", "d"]),  # item
        st.sampled_from(["t1", "t2"]),  # tag
        st.integers(1, 50),  # price
    ),
    min_size=1,
    max_size=30,
)


@st.composite
def statements(draw):
    head_attr = draw(st.sampled_from(["item", "tag"]))  # H when tag
    mining = draw(st.sampled_from([
        "",
        "WHERE BODY.price >= 10 AND HEAD.price < 40",
        "WHERE BODY.price < HEAD.price",
    ]))
    source_cond = draw(st.sampled_from(["", " WHERE price > 2"]))  # W
    group_having = draw(st.sampled_from([
        "", " HAVING COUNT(*) >= 2", " HAVING grp > 1",
    ]))  # G / R
    cluster = draw(st.sampled_from([
        "",
        "CLUSTER BY ckey",
        "CLUSTER BY ckey HAVING BODY.ckey < HEAD.ckey",
        "CLUSTER BY ckey HAVING SUM(BODY.price) >= SUM(HEAD.price)",
    ]))  # C / K / F
    support = draw(st.sampled_from([0.1, 0.4, 0.8]))
    confidence = draw(st.sampled_from([0.0, 0.5]))
    return (
        f"MINE RULE Out AS SELECT DISTINCT 1..n item AS BODY, "
        f"1..1 {head_attr} AS HEAD, SUPPORT, CONFIDENCE "
        f"{mining} FROM Src{source_cond} "
        f"GROUP BY grp{group_having} {cluster} "
        f"EXTRACTING RULES WITH SUPPORT: {support}, "
        f"CONFIDENCE: {confidence}"
    )


class TestExecutablePrograms:
    @given(rows=rows_strategy, text=statements())
    @settings(max_examples=60, deadline=None)
    def test_program_parses_and_runs(self, rows, text):
        db = build_db(rows)
        system = MiningSystem(database=db)
        result = system.execute(text)

        # every generated query is valid SQL
        program = result.program
        for query in (
            program.setup + program.preprocessing + program.postprocessing
        ):
            parse_sql(query.sql)

        # semantic sanity of whatever came out
        totg = db.variables["totg"]
        min_support = result.statement.min_support
        for rule in result.rules:
            assert 0.0 < rule.support <= 1.0
            assert 0.0 < rule.confidence <= 1.0 + 1e-9
            assert rule.support * totg >= math.ceil(
                min_support * totg - 1e-9
            ) - 1e-9
            assert rule.confidence >= result.statement.min_confidence - 1e-9
            assert rule.body and rule.head

        # the output relations exist and are consistent
        count = db.execute("SELECT COUNT(*) FROM Out").scalar()
        assert count == len(result.rules)

    @given(rows=rows_strategy, text=statements())
    @settings(max_examples=30, deadline=None)
    def test_rerun_is_deterministic(self, rows, text):
        db = build_db(rows)
        system = MiningSystem(database=db, reuse_preprocessing=False)
        first = system.execute(text)
        second = system.execute(text)
        assert first.rule_set() == second.rule_set()
