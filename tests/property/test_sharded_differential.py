"""Differential tests for the sharded executor (PR 6).

The contract of :mod:`repro.parallel` is *bit-identity*: for any
worker/shard count — including ragged gid ranges and more shards than
groups (empty shards) — the sharded two-phase run (local mining with
Partition-scaled thresholds, exact recount, merge) must emit exactly
the rule list of the serial core operators: same integers, same float
divisions, same canonical sort.  Randomized inputs come from the same
hypothesis strategies as the PR 2 representation differential.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import get_algorithm
from repro.kernel.core.general import GeneralCoreOperator
from repro.kernel.core.inputs import SimpleInput
from repro.kernel.core.simple import SimpleCoreOperator
from repro.kernel.program import CoreDirectives
from repro.parallel import ShardedMiner, ShardPlan, local_min_count
from tests.property.test_bitset_differential import (
    clustered_inputs,
    elementary_inputs,
    group_maps,
    thresholds,
)

#: (workers, shards) grids covering even splits, ragged boundaries and
#: empty shards (more shards than the largest strategy group map)
SHARDINGS = [(2, None), (4, None), (4, 7), (2, 13)]


def _simple_directives(min_confidence=0.0, head_max=1):
    return CoreDirectives(
        simple=True,
        same_schema=True,
        clustered=False,
        cluster_condition=False,
        mining_condition=False,
        coded_source="CS",
        cluster_couples=None,
        input_rules=None,
        min_support=0.0,
        min_confidence=min_confidence,
        body_card=(1, None),
        head_card=(1, head_max),
    )


class TestShardedSimpleMatchesSerial:
    @pytest.mark.parametrize("workers,shards", SHARDINGS)
    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=25, deadline=None)
    def test_bit_identical_rules(self, workers, shards, groups, min_count):
        data = SimpleInput(
            totg=len(groups), min_count=min_count, groups=groups
        )
        directives = _simple_directives(min_confidence=0.3)
        serial = SimpleCoreOperator(get_algorithm("apriori")).run(
            data, directives
        )
        miner = ShardedMiner(
            workers=workers, shards=shards, in_process=True
        )
        sharded, stats = miner.mine_simple(
            data, directives, get_algorithm("apriori")
        )
        assert sharded == serial
        assert stats.shards == (shards if shards is not None else workers)

    @pytest.mark.parametrize(
        "representation", ["bitset", "packed", "set"]
    )
    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=15, deadline=None)
    def test_representations_agree(self, representation, groups, min_count):
        data = SimpleInput(
            totg=len(groups), min_count=min_count, groups=groups
        )
        directives = _simple_directives()
        serial = SimpleCoreOperator(get_algorithm("apriori")).run(
            data, directives
        )
        miner = ShardedMiner(workers=3, in_process=True)
        sharded, _ = miner.mine_simple(
            data,
            directives,
            get_algorithm("apriori", representation=representation),
        )
        assert sharded == serial


class TestShardedGeneralMatchesSerial:
    @pytest.mark.parametrize("workers,shards", SHARDINGS)
    @given(case=clustered_inputs())
    @settings(max_examples=25, deadline=None)
    def test_derived_elementary_rules_identical(
        self, workers, shards, case
    ):
        data, directives = case
        serial = GeneralCoreOperator(representation="bitset").run(
            data, directives
        )
        miner = ShardedMiner(
            workers=workers, shards=shards, in_process=True
        )
        sharded, stats = miner.mine_general(data, directives, "bitset")
        assert sharded == serial
        assert stats.variant == "general"

    @given(case=elementary_inputs())
    @settings(max_examples=25, deadline=None)
    def test_input_rules_path_identical(self, case):
        data, directives = case
        serial = GeneralCoreOperator(representation="bitset").run(
            data, directives
        )
        miner = ShardedMiner(workers=4, shards=5, in_process=True)
        sharded, _ = miner.mine_general(data, directives, "bitset")
        assert sharded == serial

    @pytest.mark.parametrize("representation", ["set", "packed"])
    @given(case=clustered_inputs())
    @settings(max_examples=10, deadline=None)
    def test_representations_agree(self, representation, case):
        data, directives = case
        serial = GeneralCoreOperator(representation="set").run(
            data, directives
        )
        miner = ShardedMiner(workers=2, in_process=True)
        sharded, _ = miner.mine_general(data, directives, representation)
        assert sharded == serial


class TestShardPlanInvariants:
    @given(
        gids=st.sets(st.integers(min_value=0, max_value=500), max_size=60),
        shards=st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_partitions_the_universe(self, gids, shards):
        plan = ShardPlan.split(gids, shards)
        assert plan.total == len(gids)
        assert len(plan.bounds) == len(plan.sizes) == shards
        # balanced to within one group
        non_empty = [s for s in plan.sizes if s]
        if non_empty:
            assert max(plan.sizes) - min(plan.sizes) <= 1
        # ranges are disjoint, ordered, and cover every gid exactly once
        covered = []
        previous_hi = None
        for span, size in zip(plan.bounds, plan.sizes):
            if span is None:
                assert size == 0
                continue
            lo, hi = span
            assert lo <= hi
            if previous_hi is not None:
                assert lo > previous_hi
            previous_hi = hi
            members = [g for g in gids if lo <= g <= hi]
            assert len(members) == size
            covered.extend(members)
        assert sorted(covered) == sorted(gids)
        for gid in gids:
            index = plan.shard_of(gid)
            lo, hi = plan.bounds[index]
            assert lo <= gid <= hi

    @given(
        min_count=st.integers(min_value=1, max_value=50),
        total=st.integers(min_value=1, max_value=1000),
        shards=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_local_threshold_never_misses(self, min_count, total, shards):
        """Partition's completeness argument: if an itemset reaches
        ``min_count`` globally, it reaches the scaled local threshold
        in at least one shard (pigeonhole over the shard sizes)."""
        plan = ShardPlan.split(range(1, total + 1), shards)
        locals_ = [
            local_min_count(min_count, total, size) for size in plan.sizes
        ]
        # a global count of min_count spread worst-case over shards
        # still hits some local threshold: sum of (local - 1) < min_count
        slack = sum(
            max(0, locals_[i] - 1)
            for i in range(shards)
            if plan.sizes[i]
        )
        assert slack < max(1, min_count)
