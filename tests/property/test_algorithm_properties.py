"""Property-based tests for the mining-algorithm pool.

The contract: every algorithm returns exactly the frequent itemsets
with exact group counts, for any input.  A brute-force enumerator is
the oracle.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.algorithms import ALGORITHMS, get_algorithm

#: small universes keep brute force tractable while covering the
#: combinatorics (collisions, shared prefixes, deep itemsets)
group_maps = st.dictionaries(
    keys=st.integers(min_value=1, max_value=30),
    values=st.frozensets(st.integers(min_value=0, max_value=7), max_size=6),
    max_size=12,
)

thresholds = st.integers(min_value=1, max_value=5)


def brute_force(groups, min_count):
    items = sorted({i for s in groups.values() for i in s})
    counts = {}
    for size in range(1, len(items) + 1):
        any_frequent = False
        for combo in itertools.combinations(items, size):
            count = sum(1 for s in groups.values() if frozenset(combo) <= s)
            if count >= min_count:
                counts[frozenset(combo)] = count
                any_frequent = True
        if not any_frequent:
            break
    return counts


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestExactness:
    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, name, groups, min_count):
        result = get_algorithm(name).mine(groups, min_count)
        assert result == brute_force(groups, min_count)


class TestStructuralInvariants:
    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_downward_closure(self, groups, min_count):
        """Every subset of a frequent itemset is frequent (Apriori
        property), with a count at least as large."""
        counts = get_algorithm("apriori").mine(groups, min_count)
        for itemset, count in counts.items():
            if len(itemset) < 2:
                continue
            for item in itemset:
                subset = itemset - {item}
                assert subset in counts
                assert counts[subset] >= count

    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=60, deadline=None)
    def test_counts_bounded_by_group_count(self, groups, min_count):
        counts = get_algorithm("apriori").mine(groups, min_count)
        for count in counts.values():
            assert min_count <= count <= len(groups)

    @given(groups=group_maps)
    @settings(max_examples=40, deadline=None)
    def test_threshold_one_covers_every_singleton(self, groups):
        counts = get_algorithm("apriori").mine(groups, 1)
        present = {i for s in groups.values() for i in s}
        for item in present:
            assert frozenset({item}) in counts

    @given(groups=group_maps, min_count=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_threshold(self, groups, min_count):
        loose = get_algorithm("apriori").mine(groups, min_count)
        tight = get_algorithm("apriori").mine(groups, min_count + 1)
        assert set(tight) <= set(loose)
        for itemset, count in tight.items():
            assert loose[itemset] == count


class TestPairwiseAgreement:
    @given(groups=group_maps, min_count=thresholds,
           seed=st.integers(min_value=0, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_sampling_agrees_with_apriori_any_seed(
        self, groups, min_count, seed
    ):
        reference = get_algorithm("apriori").mine(groups, min_count)
        sampled = get_algorithm("sampling", seed=seed).mine(groups, min_count)
        assert sampled == reference

    @given(groups=group_maps, min_count=thresholds,
           partitions=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_partition_agrees_for_any_partitioning(
        self, groups, min_count, partitions
    ):
        reference = get_algorithm("apriori").mine(groups, min_count)
        result = get_algorithm("partition", partitions=partitions).mine(
            groups, min_count
        )
        assert result == reference

    @given(groups=group_maps, min_count=thresholds,
           buckets=st.integers(min_value=1, max_value=64))
    @settings(max_examples=25, deadline=None)
    def test_dhp_exact_for_any_bucket_count(self, groups, min_count, buckets):
        reference = get_algorithm("apriori").mine(groups, min_count)
        result = get_algorithm("dhp", buckets=buckets).mine(groups, min_count)
        assert result == reference
