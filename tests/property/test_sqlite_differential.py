"""Differential testing of the SQL engine against SQLite.

SQLite (Python stdlib) acts as the reference implementation for the
query fragment both engines share.  Hypothesis generates random tables
and queries from that fragment; both engines must return the same
multiset of rows.  Mismatches in NULL handling, join semantics,
grouping or DISTINCT would surface here.
"""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database

values = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.sampled_from(["a", "b", "c"]),
    st.none(),
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.one_of(st.integers(min_value=-9, max_value=9), st.none()),
        st.sampled_from(["red", "green", "blue"]),
    ),
    max_size=25,
)


def build_both(rows):
    engine = Database()
    engine.execute("CREATE TABLE t (k INTEGER, v INTEGER, c VARCHAR)")
    table = engine.table("t")
    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE t (k INTEGER, v INTEGER, c TEXT)")
    for row in rows:
        table.insert(row)
        lite.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    return engine, lite


def both(engine, lite, query):
    mine = sorted(engine.query(query), key=repr)
    theirs = sorted(lite.execute(query).fetchall(), key=repr)
    return mine, theirs


QUERIES = [
    "SELECT k, v, c FROM t",
    "SELECT k FROM t WHERE v > 0",
    "SELECT k FROM t WHERE v >= -2 AND v <= 2",
    "SELECT k FROM t WHERE v BETWEEN -3 AND 3",
    "SELECT c FROM t WHERE v IS NULL",
    "SELECT c FROM t WHERE v IS NOT NULL AND c <> 'red'",
    "SELECT k FROM t WHERE c IN ('red', 'blue')",
    "SELECT k FROM t WHERE c LIKE 'r%'",
    "SELECT DISTINCT k, c FROM t",
    "SELECT k, COUNT(*) FROM t GROUP BY k",
    "SELECT k, COUNT(v) FROM t GROUP BY k",
    "SELECT k, SUM(v) FROM t GROUP BY k HAVING COUNT(*) > 1",
    "SELECT c, MIN(v), MAX(v) FROM t GROUP BY c",
    "SELECT COUNT(DISTINCT c) FROM t",
    "SELECT k + 1, v * 2 FROM t WHERE v IS NOT NULL",
    "SELECT CASE WHEN v > 0 THEN 'pos' ELSE 'rest' END FROM t "
    "WHERE v IS NOT NULL",
    "SELECT a.k, b.k FROM t a, t b WHERE a.k = b.k AND a.v < b.v",
    "SELECT a.c FROM t a WHERE a.v = (SELECT MAX(v) FROM t)",
    "SELECT k FROM t WHERE k IN (SELECT k FROM t WHERE c = 'red')",
    "SELECT k FROM t UNION SELECT k + 10 FROM t",
    "SELECT k FROM t EXCEPT SELECT k FROM t WHERE c = 'red'",
    "SELECT k FROM t INTERSECT SELECT k FROM t WHERE v > 0",
]


@pytest.mark.parametrize("query", QUERIES)
@given(rows=rows_strategy)
@settings(max_examples=20, deadline=None)
def test_differential_against_sqlite(query, rows):
    engine, lite = build_both(rows)
    try:
        mine, theirs = both(engine, lite, query)
        assert mine == theirs, f"divergence on: {query}"
    finally:
        lite.close()


class TestKnownSemanticChoices:
    """Where we intentionally differ from SQLite (documented)."""

    def test_integer_division_is_exact(self):
        # Oracle semantics: '/' is exact division; SQLite truncates.
        engine = Database()
        assert engine.execute("SELECT 1 / 2").scalar() == 0.5

    def test_string_number_comparison_rejected(self):
        # SQLite compares across types by storage-class order; we raise.
        from repro.sqlengine.errors import SqlTypeError

        engine = Database()
        engine.execute("CREATE TABLE t (c VARCHAR)")
        engine.execute("INSERT INTO t VALUES ('x')")
        with pytest.raises(SqlTypeError):
            engine.query("SELECT c FROM t WHERE c > 5")
