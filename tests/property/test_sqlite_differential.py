"""Differential testing of the SQL engine against SQLite.

SQLite (Python stdlib) acts as the reference implementation for the
query fragment both engines share.  Hypothesis generates random tables
and queries from that fragment; both engines must return the same
multiset of rows.  Mismatches in NULL handling, join semantics,
grouping or DISTINCT would surface here.
"""

import sqlite3

import pytest
from hypothesis import given, settings, strategies as st

from repro.sqlengine import Database

values = st.one_of(
    st.integers(min_value=-20, max_value=20),
    st.sampled_from(["a", "b", "c"]),
    st.none(),
)

rows_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.one_of(st.integers(min_value=-9, max_value=9), st.none()),
        st.sampled_from(["red", "green", "blue"]),
    ),
    max_size=25,
)


def build_both(rows):
    engine = Database()
    engine.execute("CREATE TABLE t (k INTEGER, v INTEGER, c VARCHAR)")
    table = engine.table("t")
    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE t (k INTEGER, v INTEGER, c TEXT)")
    for row in rows:
        table.insert(row)
        lite.execute("INSERT INTO t VALUES (?, ?, ?)", row)
    return engine, lite


def both(engine, lite, query):
    mine = sorted(engine.query(query), key=repr)
    theirs = sorted(lite.execute(query).fetchall(), key=repr)
    return mine, theirs


QUERIES = [
    "SELECT k, v, c FROM t",
    "SELECT k FROM t WHERE v > 0",
    "SELECT k FROM t WHERE v >= -2 AND v <= 2",
    "SELECT k FROM t WHERE v BETWEEN -3 AND 3",
    "SELECT c FROM t WHERE v IS NULL",
    "SELECT c FROM t WHERE v IS NOT NULL AND c <> 'red'",
    "SELECT k FROM t WHERE c IN ('red', 'blue')",
    "SELECT k FROM t WHERE c LIKE 'r%'",
    "SELECT DISTINCT k, c FROM t",
    "SELECT k, COUNT(*) FROM t GROUP BY k",
    "SELECT k, COUNT(v) FROM t GROUP BY k",
    "SELECT k, SUM(v) FROM t GROUP BY k HAVING COUNT(*) > 1",
    "SELECT c, MIN(v), MAX(v) FROM t GROUP BY c",
    "SELECT COUNT(DISTINCT c) FROM t",
    "SELECT k + 1, v * 2 FROM t WHERE v IS NOT NULL",
    "SELECT CASE WHEN v > 0 THEN 'pos' ELSE 'rest' END FROM t "
    "WHERE v IS NOT NULL",
    "SELECT a.k, b.k FROM t a, t b WHERE a.k = b.k AND a.v < b.v",
    "SELECT a.c FROM t a WHERE a.v = (SELECT MAX(v) FROM t)",
    "SELECT k FROM t WHERE k IN (SELECT k FROM t WHERE c = 'red')",
    "SELECT k FROM t UNION SELECT k + 10 FROM t",
    "SELECT k FROM t EXCEPT SELECT k FROM t WHERE c = 'red'",
    "SELECT k FROM t INTERSECT SELECT k FROM t WHERE v > 0",
    # % must take the dividend's sign (both engines agree)
    "SELECT k, v % 3 FROM t WHERE v IS NOT NULL",
    "SELECT k, v % -3 FROM t WHERE v IS NOT NULL",
    # DISTINCT aggregates over duplicates and NULLs
    "SELECT COUNT(DISTINCT v) FROM t",
    "SELECT k, COUNT(DISTINCT c) FROM t GROUP BY k",
    "SELECT SUM(DISTINCT v), AVG(DISTINCT v) FROM t",
    # ROUND at n=0 on half grids agrees with SQLite (away from zero)
    "SELECT ROUND(v + 0.5) FROM t WHERE v IS NOT NULL",
    "SELECT ROUND(v - 0.5) FROM t WHERE v IS NOT NULL",
    "SELECT ROUND(v * 0.5) FROM t WHERE v IS NOT NULL",
]


@pytest.mark.parametrize("query", QUERIES)
@given(rows=rows_strategy)
@settings(max_examples=20, deadline=None)
def test_differential_against_sqlite(query, rows):
    engine, lite = build_both(rows)
    try:
        mine, theirs = both(engine, lite, query)
        assert mine == theirs, f"divergence on: {query}"
    finally:
        lite.close()


# LIKE pattern tokens that are always valid under ESCAPE '!': the
# escape character only ever precedes %, _ or itself.  Lowercase only —
# SQLite's LIKE is ASCII-case-insensitive, ours is case-sensitive.
_LIKE_TOKENS = ["a", "b", "c", "%", "_", "!%", "!_", "!!"]


@given(
    strings=st.lists(
        st.text(alphabet="abc%_!", max_size=6), min_size=1, max_size=12
    ),
    tokens=st.lists(st.sampled_from(_LIKE_TOKENS), max_size=6),
)
@settings(max_examples=60, deadline=None)
def test_like_escape_differential(strings, tokens):
    pattern = "".join(tokens)
    engine = Database()
    engine.execute("CREATE TABLE t (s VARCHAR)")
    table = engine.table("t")
    lite = sqlite3.connect(":memory:")
    lite.execute("CREATE TABLE t (s TEXT)")
    try:
        for s in strings:
            table.insert((s,))
            lite.execute("INSERT INTO t VALUES (?)", (s,))
        query = f"SELECT s FROM t WHERE s LIKE '{pattern}' ESCAPE '!'"
        mine, theirs = both(engine, lite, query)
        assert mine == theirs, f"divergence on pattern {pattern!r}"
    finally:
        lite.close()


def _substr_reference(string, start, length=None):
    """Oracle SUBSTR reference model in plain Python."""
    size = len(string)
    if start > 0:
        begin = start - 1
    elif start == 0:
        begin = 0
    else:
        begin = size + start
        if begin < 0:
            return None
    if begin >= size:
        return None
    if length is None:
        return string[begin:]
    if length < 1:
        return None
    return string[begin : begin + length]


@given(
    string=st.text(alphabet="abcdef", max_size=8),
    start=st.integers(min_value=-10, max_value=10),
    length=st.one_of(st.none(), st.integers(min_value=-3, max_value=10)),
)
@settings(max_examples=120, deadline=None)
def test_substr_matches_reference_model(string, start, length):
    engine = Database()
    if length is None:
        got = engine.execute(
            "SELECT SUBSTR(:s, :b)", {"s": string, "b": start}
        ).scalar()
    else:
        got = engine.execute(
            "SELECT SUBSTR(:s, :b, :n)",
            {"s": string, "b": start, "n": length},
        ).scalar()
    assert got == _substr_reference(string, start, length)


class TestKnownSemanticChoices:
    """Where we intentionally differ from SQLite (documented)."""

    def test_integer_division_is_exact(self):
        # Oracle semantics: '/' is exact division; SQLite truncates.
        engine = Database()
        assert engine.execute("SELECT 1 / 2").scalar() == 0.5

    def test_string_number_comparison_rejected(self):
        # SQLite compares across types by storage-class order; we raise.
        from repro.sqlengine.errors import SqlTypeError

        engine = Database()
        engine.execute("CREATE TABLE t (c VARCHAR)")
        engine.execute("INSERT INTO t VALUES ('x')")
        with pytest.raises(SqlTypeError):
            engine.query("SELECT c FROM t WHERE c > 5")
