"""Shared fixtures for the test suite."""

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1


@pytest.fixture
def db():
    """A fresh in-memory database."""
    return Database()


@pytest.fixture
def purchase_db():
    """A database preloaded with the Figure 1 Purchase table."""
    database = Database()
    load_purchase_figure1(database)
    return database


@pytest.fixture
def system(purchase_db):
    """A mining system over the Figure 1 Purchase table."""
    return MiningSystem(database=purchase_db)


#: the paper's running example (Section 2)
PAPER_STATEMENT = """
MINE RULE FilteredOrderedSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase
WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""


@pytest.fixture
def paper_statement():
    return PAPER_STATEMENT
