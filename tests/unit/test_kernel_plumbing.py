"""Kernel plumbing: workspace names, trace, rewriting, preprocessor
statistics."""

import pytest

from repro.kernel import Translator, Workspace
from repro.kernel.names import Workspace as WS
from repro.kernel.preprocessor import Preprocessor
from repro.kernel.rewrite import (
    collect_cluster_aggregates,
    requalify,
    rewrite_cluster_condition,
    transform,
)
from repro.kernel.trace import ProcessEvent, ProcessFlow
from repro.minerule.errors import MineRuleValidationError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.render import render_expr


def expr_of(text):
    return parse_sql(f"SELECT {text}").items[0].expr


class TestWorkspace:
    def test_all_names_share_prefix(self):
        ws = WS("ABC")
        for name in ws.all_tables() + ws.all_views() + ws.all_sequences():
            assert name.startswith("ABC_")

    def test_distinct_workspaces_do_not_collide(self):
        a, b = WS("A"), WS("B")
        assert set(a.all_tables()).isdisjoint(b.all_tables())

    def test_coded_source_listed_as_table_and_view(self):
        ws = WS()
        assert ws.coded_source in ws.all_tables()
        assert ws.coded_source in ws.all_views()


class TestProcessFlow:
    def test_events_in_order(self):
        flow = ProcessFlow()
        flow.event("translator", "a")
        flow.event("core", "b")
        flow.event("translator", "c")
        assert flow.components() == ["translator", "core"]

    def test_timings_accumulate(self):
        flow = ProcessFlow()
        flow.start("core")
        flow.stop()
        flow.start("core")
        first = flow.timings["core"]
        flow.stop()
        assert flow.timings["core"] >= first

    def test_stop_without_start_is_safe(self):
        assert ProcessFlow().stop() == 0.0

    def test_event_str(self):
        event = ProcessEvent("core", "ran", "detail")
        assert "[core] ran — detail" == str(event)

    def test_render_contains_events_and_timings(self):
        flow = ProcessFlow()
        flow.event("x", "did")
        flow.start("x")
        flow.stop()
        text = flow.render()
        assert "[x] did" in text and "timings" in text


class TestTransform:
    def test_identity_when_fn_returns_none(self):
        expr = expr_of("a + b * 2")
        result = transform(expr, lambda node: None)
        assert render_expr(result) == render_expr(expr)

    def test_replaces_nodes_topdown(self):
        expr = expr_of("a + b")
        replaced = transform(
            expr,
            lambda node: ast.Literal(1)
            if isinstance(node, ast.ColumnRef)
            else None,
        )
        assert render_expr(replaced) == "(1 + 1)"

    def test_requalify(self):
        expr = expr_of("BODY.x > HEAD.y AND plain = 1")
        remapped = requalify(expr, {"BODY": "B", "HEAD": "H"})
        text = render_expr(remapped)
        assert "B.x" in text and "H.y" in text and "plain" in text

    def test_requalify_rebuilds_inside_functions(self):
        expr = expr_of("SUM(BODY.price) > 10")
        text = render_expr(requalify(expr, {"BODY": "S"}))
        assert "SUM(S.price)" in text


class TestClusterAggregates:
    def test_collects_and_names(self):
        cond = expr_of("SUM(BODY.price) > SUM(HEAD.price)")
        aggregates = collect_cluster_aggregates(cond)
        assert len(aggregates) == 2
        # same stripped expression -> same Q6 column
        assert aggregates[0].column == aggregates[1].column == "MRAGG1"
        assert {a.side for a in aggregates} == {"BODY", "HEAD"}
        assert aggregates[0].source_sql == "SUM(S.price)"

    def test_distinct_expressions_get_distinct_columns(self):
        cond = expr_of("SUM(BODY.price) > MAX(HEAD.qty)")
        aggregates = collect_cluster_aggregates(cond)
        assert {a.column for a in aggregates} == {"MRAGG1", "MRAGG2"}

    def test_count_star_rejected(self):
        with pytest.raises(MineRuleValidationError):
            collect_cluster_aggregates(expr_of("COUNT(*) > 1"))

    def test_mixed_side_aggregate_rejected(self):
        with pytest.raises(MineRuleValidationError):
            collect_cluster_aggregates(
                expr_of("SUM(BODY.price + HEAD.price) > 1")
            )

    def test_rewrite_routes_sides(self):
        cond = expr_of(
            "BODY.date < HEAD.date AND SUM(BODY.price) > SUM(HEAD.price)"
        )
        aggregates = collect_cluster_aggregates(cond)
        rewritten = rewrite_cluster_condition(cond, aggregates, "BC", "HC")
        text = render_expr(rewritten)
        assert "BC.date" in text and "HC.date" in text
        assert "BC.MRAGG1" in text and "HC.MRAGG1" in text
        assert "SUM" not in text


class TestPreprocessorStats:
    def test_stats_complete(self, purchase_db):
        translator = Translator(purchase_db)
        program = translator.translate(
            "MINE RULE S AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5",
            Workspace("ST"),
        )
        stats = Preprocessor(purchase_db).run(program)
        assert stats.totg == 2
        assert stats.mingroups == 1
        assert set(stats.query_seconds) == {
            "Q0v", "Q1", "Q2a", "Q2b", "Q3a", "Q3b", "Q4",
        }
        assert stats.total_seconds > 0
        assert stats.table_rows["ST_ValidGroups"] == 2
        assert stats.table_rows["ST_CodedSource"] > 0

    def test_mingroups_rounding(self, purchase_db):
        translator = Translator(purchase_db)
        program = translator.translate(
            "MINE RULE S AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY tr "
            "EXTRACTING RULES WITH SUPPORT: 0.6, CONFIDENCE: 0.5",
            Workspace("ST"),
        )
        stats = Preprocessor(purchase_db).run(program)
        assert stats.totg == 4
        assert stats.mingroups == 3  # ceil(0.6 * 4)
