"""Units for tools/bench_trend.py (loaded by file path — ``tools`` is
scripts, not a package)."""

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
_spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO_ROOT / "tools" / "bench_trend.py"
)
bench_trend = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_trend)


def write(path, document):
    path.write_text(json.dumps(document), encoding="utf-8")


def test_flatten_keeps_numeric_leaves_only():
    flat = bench_trend.flatten(
        {
            "scenario": {
                "speedup": 4.5,
                "runs": 300,
                "query": "SELECT 1",
                "quick": False,  # bools are config, not metrics
                "nested": {"x": 1, "label": "fork", "deeper": {"y": 2}},
                "workload": {"transactions": 400},
            },
            "not_a_dict": 7,
        }
    )
    # one sub-dict level is followed; strings/bools, anything nested
    # deeper, and the workload descriptor are dropped
    assert flat == {
        "scenario.speedup": 4.5,
        "scenario.runs": 300,
        "scenario.nested.x": 1,
    }


def test_missing_pr_becomes_blank_column(tmp_path):
    write(tmp_path / "BENCH_PR1.json", {"a": {"ms": 10}})
    write(tmp_path / "BENCH_PR4.json", {"a": {"ms": 12}, "b": {"ratio": 1.01}})
    trend = bench_trend.load_trend(tmp_path)
    assert trend["columns"] == ["PR1", "PR2", "PR3", "PR4"]
    by_metric = {row["metric"]: row["values"] for row in trend["rows"]}
    assert by_metric["a.ms"] == {"PR1": 10, "PR4": 12}
    assert by_metric["b.ratio"] == {"PR4": 1.01}
    markdown = bench_trend.render_markdown(trend)
    assert "| a.ms | 10 |  |  | 12 |" in markdown


def test_corrupt_artifact_keeps_column(tmp_path):
    write(tmp_path / "BENCH_PR1.json", {"a": {"ms": 10}})
    (tmp_path / "BENCH_PR2.json").write_text("{not json", encoding="utf-8")
    trend = bench_trend.load_trend(tmp_path)
    assert trend["columns"] == ["PR1", "PR2"]


def test_main_writes_both_artifacts(tmp_path, capsys):
    write(tmp_path / "BENCH_PR1.json", {"a": {"ms": 10.5}})
    assert bench_trend.main(["--root", str(tmp_path)]) == 0
    markdown = (tmp_path / "BENCH_TREND.md").read_text(encoding="utf-8")
    assert "| a.ms | 10.5 |" in markdown
    trend = json.loads(
        (tmp_path / "BENCH_TREND.json").read_text(encoding="utf-8")
    )
    assert trend["columns"] == ["PR1"]


def test_main_errors_cleanly_without_artifacts(tmp_path):
    assert bench_trend.main(["--root", str(tmp_path)]) == 1


def test_checked_in_artifacts_aggregate():
    """The repo's real artifacts must produce a table with PR3 blank."""
    trend = bench_trend.load_trend(REPO_ROOT)
    assert "PR3" in trend["columns"]
    assert all(
        "PR3" not in row["values"] for row in trend["rows"]
    )  # PR3 shipped no bench artifact
    metrics = {row["metric"] for row in trend["rows"]}
    assert "metrics_overhead.disabled_ratio" in metrics
    # PR6's speedup-vs-workers sub-dict must surface as rows
    assert "sharded_speedup.speedup.workers4" in metrics
    assert "pool_eclat.seconds.eclat_diffsets" in metrics
