"""Statement cache, plan cache, prepared statements and their
observability (CacheStats, PreprocessStats, EXPLAIN markers)."""

import pytest

from repro.sqlengine import Database, EngineOptions, PreparedStatement
from repro.sqlengine import dbapi


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE items (item VARCHAR, price INTEGER)")
    db.execute("INSERT INTO items VALUES ('ski pants', 120)")
    db.execute("INSERT INTO items VALUES ('hiking boots', 80)")
    db.execute("INSERT INTO items VALUES ('jackets', 150)")
    return db


class TestStatementCache:
    def test_repeated_text_hits(self, db):
        before = db.cache_stats.statement_hits
        db.query("SELECT item FROM items WHERE price > 100")
        db.query("SELECT item FROM items WHERE price > 100")
        db.query("SELECT item FROM items WHERE price > 100")
        assert db.cache_stats.statement_hits == before + 2

    def test_lru_eviction(self):
        db = Database(EngineOptions(statement_cache_size=2))
        db.execute("CREATE TABLE t (a INTEGER)")
        db.query("SELECT a FROM t")
        db.query("SELECT a + 1 FROM t")
        db.query("SELECT a + 2 FROM t")  # evicts the first
        misses = db.cache_stats.statement_misses
        db.query("SELECT a FROM t")
        assert db.cache_stats.statement_misses == misses + 1

    def test_clear_caches(self, db):
        db.query("SELECT item FROM items")
        db.clear_caches()
        misses = db.cache_stats.statement_misses
        db.query("SELECT item FROM items")
        assert db.cache_stats.statement_misses == misses + 1


class TestPlanCache:
    def test_repeated_execution_hits(self, db):
        sql = "SELECT item FROM items WHERE price > 100"
        db.query(sql)
        hits = db.cache_stats.plan_hits
        db.query(sql)
        db.query(sql)
        assert db.cache_stats.plan_hits == hits + 2

    def test_dml_stays_visible_through_cached_plan(self, db):
        sql = "SELECT item FROM items WHERE price > 100 ORDER BY item"
        assert db.query(sql) == [("jackets",), ("ski pants",)]
        db.execute("INSERT INTO items VALUES ('canoes', 400)")
        assert db.query(sql) == [("canoes",), ("jackets",), ("ski pants",)]
        db.execute("UPDATE items SET price = 90 WHERE item = 'jackets'")
        assert db.query(sql) == [("canoes",), ("ski pants",)]
        db.execute("DELETE FROM items WHERE item = 'canoes'")
        assert db.query(sql) == [("ski pants",)]

    def test_ddl_bumps_catalog_version_and_invalidates(self, db):
        sql = "SELECT item FROM items WHERE price > 100"
        db.query(sql)
        version = db.catalog.version
        db.execute("CREATE TABLE other (x INTEGER)")
        assert db.catalog.version > version
        invalidations = db.cache_stats.plan_invalidations
        db.query(sql)
        assert db.cache_stats.plan_invalidations == invalidations + 1

    def test_index_ddl_invalidates_so_plans_can_improve(self, db):
        sql = "SELECT price FROM items WHERE item = 'jackets'"
        assert "IndexLookup" not in db.explain(sql)
        db.execute("CREATE INDEX idx_item ON items (item)")
        # the cached full-scan plan must be dropped in favour of one
        # using the new index
        assert "IndexLookup" in db.explain(sql)
        assert db.query(sql) == [(150,)]

    def test_view_plans_are_not_cached(self, db):
        db.execute("CREATE VIEW pricey AS SELECT item FROM items "
                    "WHERE price > 100")
        sql = "SELECT item FROM pricey ORDER BY item"
        assert db.query(sql) == [("jackets",), ("ski pants",)]
        # views snapshot rows at plan time: the plan must be rebuilt
        # per execution so new data is seen
        db.execute("INSERT INTO items VALUES ('canoes', 400)")
        assert db.query(sql) == [("canoes",), ("jackets",), ("ski pants",)]

    def test_plan_cache_can_be_disabled(self):
        db = Database(EngineOptions(plan_cache=False))
        db.execute("CREATE TABLE t (a INTEGER)")
        db.query("SELECT a FROM t")
        db.query("SELECT a FROM t")
        assert db.cache_stats.plan_hits == 0


class TestPreparedStatements:
    def test_prepare_and_execute(self, db):
        prepared = db.prepare("SELECT item FROM items WHERE price > :floor")
        assert isinstance(prepared, PreparedStatement)
        assert prepared.query({"floor": 100}) == [("ski pants",), ("jackets",)]
        assert prepared.query({"floor": 140}) == [("jackets",)]

    def test_prepared_statement_skips_reparse(self, db):
        prepared = db.prepare("SELECT item FROM items")
        misses = db.cache_stats.statement_misses
        prepared.execute()
        prepared.execute()
        assert db.cache_stats.statement_misses == misses

    def test_dbapi_cursor_reuses_prepared_plan(self, db):
        conn = dbapi.connect(db)
        cur = conn.cursor()
        cur.execute("SELECT item FROM items WHERE price > 100")
        hits = db.cache_stats.plan_hits
        cur.execute("SELECT item FROM items WHERE price > 100")
        assert db.cache_stats.plan_hits == hits + 1
        assert len(cur.fetchall()) == 2

    def test_dbapi_prepare_maps_errors(self, db):
        conn = dbapi.connect(db)
        with pytest.raises(dbapi.DatabaseError):
            conn.prepare("SELEKT nope")


class TestExplainMarkers:
    def test_compiled_nodes_labeled(self, db):
        plan = db.explain(
            "SELECT item FROM items WHERE price > 100 AND item LIKE '%s'"
        )
        assert "Filter" in plan
        assert "[compiled]" in plan

    def test_interpreted_mode_has_no_markers(self):
        db = Database(EngineOptions(compile_expressions=False))
        db.execute("CREATE TABLE t (a INTEGER)")
        plan = db.explain("SELECT a + 1 FROM t WHERE a > 0")
        assert "[compiled]" not in plan

    def test_fallback_expressions_not_labeled_compiled(self, db):
        # a correlated EXISTS runs through the interpreter
        plan = db.explain(
            "SELECT item FROM items i WHERE EXISTS "
            "(SELECT 1 FROM items j WHERE j.price > i.price)"
        )
        lines = [l for l in plan.splitlines() if l.lstrip().startswith("Filter")]
        assert lines and all("[compiled]" not in l for l in lines)


class TestPreprocessStatsCounters:
    def test_preprocessor_reports_cache_counters(self):
        from repro.datagen import load_purchase_figure1
        from repro.kernel.preprocessor import Preprocessor
        from repro.kernel.program import Workspace
        from repro.kernel.translator import Translator

        database = Database()
        load_purchase_figure1(database)
        program = Translator(database).translate(
            "MINE RULE S AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5",
            Workspace("ST"),
        )
        preprocessor = Preprocessor(database)
        first = preprocessor.run(program)
        assert first.statement_cache_misses > 0
        assert first.plan_cache_misses > 0
        # replaying the same translation program re-executes identical
        # SQL text: every parse now comes from the statement cache
        second = preprocessor.run(program)
        assert second.statement_cache_hits > 0
        assert second.statement_cache_misses == 0
