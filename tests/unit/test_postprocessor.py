"""Postprocessor tests: the normalized three-table output format."""

import pytest

from repro import MiningSystem
from repro.kernel.postprocessor import DecodedRule, render_itemset

SIMPLE = """
MINE RULE Normalized AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5
"""


@pytest.fixture
def executed(system):
    return system, system.execute(SIMPLE)


class TestNormalizedOutput:
    def test_main_table_schema(self, executed):
        system, _ = executed
        table = system.db.table("Normalized")
        assert table.columns == ("BodyId", "HeadId", "SUPPORT", "CONFIDENCE")

    def test_support_column_omitted_when_not_selected(self, system):
        system.execute(
            SIMPLE.replace(", SUPPORT, CONFIDENCE", ", CONFIDENCE").replace(
                "Normalized", "NoSupport"
            )
        )
        assert system.db.table("NoSupport").columns == (
            "BodyId",
            "HeadId",
            "CONFIDENCE",
        )

    def test_neither_measure_selected(self, system):
        system.execute(
            SIMPLE.replace(", SUPPORT, CONFIDENCE", "").replace(
                "Normalized", "Bare"
            )
        )
        assert system.db.table("Bare").columns == ("BodyId", "HeadId")

    def test_identical_bodies_share_one_id(self, executed):
        system, result = executed
        pairs = system.db.query("SELECT BodyId, Bid FROM MR1_OutputBodies")
        memberships = {}
        for body_id, bid in pairs:
            memberships.setdefault(body_id, set()).add(bid)
        # no two BodyIds map to the same itemset
        as_sets = [frozenset(v) for v in memberships.values()]
        assert len(as_sets) == len(set(as_sets))

    def test_every_rule_references_valid_ids(self, executed):
        system, _ = executed
        body_ids = {
            i for (i,) in system.db.query(
                "SELECT DISTINCT BodyId FROM MR1_OutputBodies")
        }
        head_ids = {
            i for (i,) in system.db.query(
                "SELECT DISTINCT HeadId FROM MR1_OutputHeads")
        }
        for body_id, head_id in system.db.query(
            "SELECT BodyId, HeadId FROM Normalized"
        ):
            assert body_id in body_ids
            assert head_id in head_ids

    def test_decoded_bodies_match_rules(self, executed):
        system, result = executed
        decoded_bodies = {}
        for body_id, item in system.db.query(
            "SELECT BodyId, item FROM Normalized_Bodies"
        ):
            decoded_bodies.setdefault(body_id, set()).add(item)
        rule_bodies = {frozenset(r.body) for r in result.rules}
        assert {frozenset(v) for v in decoded_bodies.values()} == rule_bodies

    def test_display_table_sorted_and_braced(self, executed):
        system, _ = executed
        rows = system.db.query("SELECT BODY, HEAD FROM Normalized_Display")
        assert rows == sorted(rows)
        assert all(b.startswith("{") and b.endswith("}") for b, _ in rows)

    def test_decoded_rule_str(self):
        rule = DecodedRule(
            body=frozenset({"a"}), head=frozenset({"b"}),
            support=0.5, confidence=1.0,
        )
        assert "{a} => {b}" in str(rule)


class TestItemRendering:
    def test_single_attribute(self):
        assert render_itemset([1, 2], {1: "b", 2: "a"}) == "{a,b}"

    def test_composite_items(self):
        decoder = {1: ("boots", 150.0)}
        assert render_itemset([1], decoder) == "{(boots,150.0)}"


class TestCompositeSchemas:
    def test_two_attribute_body_schema(self, system):
        result = system.execute(
            "MINE RULE Pairs AS SELECT DISTINCT item, price AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5"
        )
        assert result.directives.H  # different schemas
        # body items decode to (item, price) tuples
        assert all(
            isinstance(next(iter(r.body)), tuple) for r in result.rules
        )
        bodies_table = system.db.table("Pairs_Bodies")
        assert bodies_table.columns == ("BodyId", "item", "price")
