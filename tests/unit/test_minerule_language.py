"""MINE RULE parser, validator and classifier tests (Section 4.1)."""

import pytest

from repro.minerule import (
    Directives,
    MineRuleParseError,
    MineRuleValidationError,
    classify,
    parse_mine_rule,
    validate,
)
from repro.sqlengine import ast_nodes as ast

PURCHASE_COLUMNS = ["tr", "customer", "item", "date", "price", "qty"]

SIMPLE = """
MINE RULE Out AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""

PAPER = """
MINE RULE FilteredOrderedSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""


class TestParserAccepts:
    def test_paper_statement(self):
        stmt = parse_mine_rule(PAPER)
        assert stmt.output_table == "FilteredOrderedSets"
        assert stmt.body.attributes == ("item",)
        assert stmt.body.card_min == 1 and stmt.body.card_max is None
        assert stmt.head.card_max is None
        assert stmt.select_support and stmt.select_confidence
        assert stmt.group_attributes == ("customer",)
        assert stmt.cluster_attributes == ("date",)
        assert stmt.min_support == 0.2
        assert stmt.min_confidence == 0.3
        assert stmt.mining_condition is not None
        assert stmt.source_condition is not None
        assert stmt.cluster_condition is not None

    def test_defaults_body_1n_head_11(self):
        stmt = parse_mine_rule(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD "
            "FROM t GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert (stmt.body.card_min, stmt.body.card_max) == (1, None)
        assert (stmt.head.card_min, stmt.head.card_max) == (1, 1)
        assert not stmt.select_support and not stmt.select_confidence

    def test_explicit_cardinalities(self):
        stmt = parse_mine_rule(
            "MINE RULE r AS SELECT DISTINCT 2..4 item AS BODY, "
            "1..2 item AS HEAD FROM t GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert (stmt.body.card_min, stmt.body.card_max) == (2, 4)
        assert (stmt.head.card_min, stmt.head.card_max) == (1, 2)

    def test_multi_attribute_schemas(self):
        stmt = parse_mine_rule(
            "MINE RULE r AS SELECT DISTINCT item, price AS BODY, "
            "item AS HEAD FROM t GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert stmt.body.attributes == ("item", "price")

    def test_multiple_source_tables(self):
        stmt = parse_mine_rule(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD "
            "FROM orders o, lines l WHERE o.id = l.oid GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert [t.name for t in stmt.from_list] == ["orders", "lines"]
        assert stmt.from_list[1].alias == "l"

    def test_group_having(self):
        stmt = parse_mine_rule(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD "
            "FROM t GROUP BY g HAVING COUNT(*) >= 2 "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert stmt.group_condition is not None

    def test_support_and_confidence_order_free(self):
        stmt = parse_mine_rule(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD, "
            "CONFIDENCE, SUPPORT FROM t GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert stmt.select_support and stmt.select_confidence

    def test_describe_summary(self):
        text = parse_mine_rule(PAPER).describe()
        assert "FilteredOrderedSets" in text
        assert "cluster by date" in text


class TestParserRejects:
    def reject(self, text):
        with pytest.raises(MineRuleParseError):
            parse_mine_rule(text)

    def test_missing_mine_keyword(self):
        self.reject("RULE r AS SELECT DISTINCT item AS BODY FROM t")

    def test_missing_distinct(self):
        self.reject(
            "MINE RULE r AS SELECT item AS BODY, item AS HEAD FROM t "
            "GROUP BY g EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )

    def test_missing_group_by(self):
        self.reject(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD "
            "FROM t EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )

    def test_missing_extracting(self):
        self.reject(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD "
            "FROM t GROUP BY g"
        )

    def test_threshold_above_one(self):
        self.reject(SIMPLE.replace("SUPPORT: 0.2", "SUPPORT: 1.5"))

    def test_negative_threshold(self):
        self.reject(SIMPLE.replace("CONFIDENCE: 0.3", "CONFIDENCE: -0.1"))

    def test_empty_card_range(self):
        self.reject(SIMPLE.replace("1..n item AS BODY", "3..2 item AS BODY"))

    def test_zero_cardinality(self):
        self.reject(SIMPLE.replace("1..n item AS BODY", "0..n item AS BODY"))

    def test_bad_card_upper(self):
        self.reject(SIMPLE.replace("1..n item AS BODY", "1..x item AS BODY"))

    def test_trailing_garbage(self):
        self.reject(SIMPLE + " AND MORE")

    def test_wrong_side_label(self):
        self.reject(
            "MINE RULE r AS SELECT DISTINCT item AS HEAD, item AS BODY "
            "FROM t GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )


class TestValidator:
    def test_paper_statement_passes(self):
        validate(parse_mine_rule(PAPER), PURCHASE_COLUMNS)

    def check_fails(self, text, check, columns=None):
        with pytest.raises(MineRuleValidationError) as excinfo:
            validate(parse_mine_rule(text), columns or PURCHASE_COLUMNS)
        assert excinfo.value.check == check

    def test_check1_unknown_body_attribute(self):
        self.check_fails(SIMPLE.replace("n item AS BODY", "n sku AS BODY"), 1)

    def test_check1_unknown_group_attribute(self):
        self.check_fails(SIMPLE.replace("GROUP BY customer", "GROUP BY shop"), 1)

    def test_check2_group_and_cluster_overlap(self):
        text = PAPER.replace("CLUSTER BY date", "CLUSTER BY customer")
        # adjust the HAVING so it still parses on the renamed attribute
        text = text.replace("BODY.date < HEAD.date", "BODY.customer < HEAD.customer")
        self.check_fails(text, 2)

    def test_check2_body_overlaps_grouping(self):
        self.check_fails(
            SIMPLE.replace("n item AS BODY", "n customer AS BODY"), 2
        )

    def test_check3_group_having_foreign_attribute(self):
        self.check_fails(
            SIMPLE.replace(
                "GROUP BY customer", "GROUP BY customer HAVING price > 3"
            ),
            3,
        )

    def test_check3_group_having_aggregate_is_allowed(self):
        validate(
            parse_mine_rule(
                SIMPLE.replace(
                    "GROUP BY customer",
                    "GROUP BY customer HAVING SUM(price) > 100",
                )
            ),
            PURCHASE_COLUMNS,
        )

    def test_check3_cluster_having_foreign_attribute(self):
        self.check_fails(
            PAPER.replace("BODY.date < HEAD.date", "BODY.price < HEAD.date"),
            3,
        )

    def test_check4_mining_condition_requires_qualifier(self):
        self.check_fails(
            PAPER.replace(
                "WHERE BODY.price >= 100 AND HEAD.price < 100",
                "WHERE price >= 100",
            ),
            4,
        )

    def test_check4_mining_condition_on_grouping_attribute(self):
        self.check_fails(
            PAPER.replace(
                "WHERE BODY.price >= 100 AND HEAD.price < 100",
                "WHERE BODY.customer = HEAD.customer",
            ),
            4,
        )


class TestClassifier:
    def classify_text(self, text):
        return classify(parse_mine_rule(text))

    def test_paper_statement_vector(self):
        d = self.classify_text(PAPER)
        assert d.as_tuple() == (
            False,  # H: same attribute on both sides
            True,  # W: source condition present
            True,  # M
            False,  # G
            True,  # C
            True,  # K
            False,  # F
            False,  # R
        )
        assert d.general and not d.simple

    def test_simple_statement(self):
        d = self.classify_text(SIMPLE)
        assert d.simple
        assert str(d).endswith("(simple)")

    def test_w_true_with_two_tables(self):
        d = self.classify_text(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, item AS HEAD "
            "FROM a, b GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert d.W

    def test_h_true_with_different_schemas(self):
        d = self.classify_text(
            "MINE RULE r AS SELECT DISTINCT item AS BODY, brand AS HEAD "
            "FROM t GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
        )
        assert d.H and d.general

    def test_r_true_with_group_aggregate(self):
        d = self.classify_text(
            SIMPLE.replace(
                "GROUP BY customer",
                "GROUP BY customer HAVING COUNT(*) >= 2",
            )
        )
        assert d.G and d.R
        assert d.simple  # G/R do not force the general class

    def test_f_true_with_cluster_aggregate(self):
        d = self.classify_text(
            PAPER.replace(
                "HAVING BODY.date < HEAD.date",
                "HAVING SUM(BODY.price) > 100",
            )
        )
        assert d.C and d.K and d.F

    def test_k_requires_c_invariant(self):
        with pytest.raises(ValueError):
            Directives(
                H=False, W=False, M=False, G=False,
                C=False, K=True, F=False, R=False,
            )

    def test_f_requires_k_invariant(self):
        with pytest.raises(ValueError):
            Directives(
                H=False, W=False, M=False, G=False,
                C=True, K=False, F=True, R=False,
            )

    def test_r_requires_g_invariant(self):
        with pytest.raises(ValueError):
            Directives(
                H=False, W=False, M=False, G=False,
                C=False, K=False, F=False, R=True,
            )
