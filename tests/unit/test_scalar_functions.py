"""Scalar function evaluation tests."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import ExecutionError


@pytest.fixture
def db():
    return Database()


def scalar(db, expr, **params):
    return db.execute(f"SELECT {expr}", params or None).scalar()


class TestStringFunctions:
    def test_upper_lower(self, db):
        assert scalar(db, "UPPER('abc')") == "ABC"
        assert scalar(db, "LOWER('AbC')") == "abc"

    def test_length(self, db):
        assert scalar(db, "LENGTH('hello')") == 5
        assert scalar(db, "LENGTH('')") == 0

    def test_trim(self, db):
        assert scalar(db, "TRIM('  x  ')") == "x"

    def test_substr_one_based(self, db):
        assert scalar(db, "SUBSTR('abcdef', 2, 3)") == "bcd"

    def test_substr_without_length(self, db):
        assert scalar(db, "SUBSTR('abcdef', 4)") == "def"

    def test_substring_synonym(self, db):
        assert scalar(db, "SUBSTRING('abc', 1, 1)") == "a"

    def test_substr_zero_start_counts_from_one(self, db):
        # Oracle: position 0 is treated as position 1
        assert scalar(db, "SUBSTR('abcdef', 0, 3)") == "abc"

    def test_substr_negative_start_counts_from_end(self, db):
        assert scalar(db, "SUBSTR('abcdef', -3)") == "def"
        assert scalar(db, "SUBSTR('abcdef', -3, 2)") == "de"
        assert scalar(db, "SUBSTR('abcdef', -6)") == "abcdef"

    def test_substr_out_of_range_is_null(self, db):
        assert scalar(db, "SUBSTR('abcdef', 9)") is None
        assert scalar(db, "SUBSTR('abcdef', -9)") is None
        assert scalar(db, "SUBSTR('abcdef', 2, 0)") is None
        assert scalar(db, "SUBSTR('abcdef', 2, -1)") is None

    def test_null_propagates(self, db):
        assert scalar(db, "UPPER(NULL)") is None
        assert scalar(db, "SUBSTR(NULL, 1)") is None

    def test_concat_operator_coerces(self, db):
        assert scalar(db, "'n=' || 5") == "n=5"
        assert scalar(db, "1.5 || 'x'") == "1.5x"


class TestNumericFunctions:
    def test_abs(self, db):
        assert scalar(db, "ABS(-3)") == 3
        assert scalar(db, "ABS(2.5)") == 2.5

    def test_round(self, db):
        assert scalar(db, "ROUND(2.567, 2)") == 2.57
        assert scalar(db, "ROUND(2.5)") == 3  # half away from zero

    def test_round_half_away_from_zero(self, db):
        # SQL ROUND, not Python's banker's rounding
        assert scalar(db, "ROUND(0.5)") == 1
        assert scalar(db, "ROUND(1.5)") == 2
        assert scalar(db, "ROUND(-0.5)") == -1
        assert scalar(db, "ROUND(-2.5)") == -3
        assert scalar(db, "ROUND(2.675, 2)") == 2.68
        assert scalar(db, "ROUND(-2.675, 2)") == -2.68

    def test_round_negative_digits_and_ints(self, db):
        assert scalar(db, "ROUND(1250, -2)") == 1300
        assert scalar(db, "ROUND(1249, -2)") == 1200
        assert scalar(db, "ROUND(-1250, -2)") == -1300
        # int in, int out; float in, float out
        assert scalar(db, "ROUND(7)") == 7
        assert isinstance(scalar(db, "ROUND(7)"), int)
        assert isinstance(scalar(db, "ROUND(7.0)"), float)

    def test_floor_ceil(self, db):
        assert scalar(db, "FLOOR(2.9)") == 2
        assert scalar(db, "CEIL(2.1)") == 3
        assert scalar(db, "CEILING(2.0)") == 2

    def test_mod(self, db):
        assert scalar(db, "MOD(7, 3)") == 1

    def test_mod_takes_dividend_sign(self, db):
        # SQL MOD follows the dividend, unlike Python's % operator
        assert scalar(db, "MOD(-7, 3)") == -1
        assert scalar(db, "MOD(7, -3)") == 1
        assert scalar(db, "MOD(-7, -3)") == -1
        assert scalar(db, "MOD(-7.5, 2)") == -1.5

    def test_mod_by_zero_returns_dividend(self, db):
        # Oracle semantics: MOD(n, 0) = n
        assert scalar(db, "MOD(7, 0)") == 7
        assert scalar(db, "MOD(-7, 0)") == -7

    def test_percent_operator_matches_mod(self, db):
        for a in (-7, -1, 0, 1, 7):
            for b in (-3, -2, 2, 3):
                assert scalar(db, f"{a} % {b}") == scalar(
                    db, f"MOD({a}, {b})"
                )

    def test_power_sqrt(self, db):
        assert scalar(db, "POWER(2, 10)") == 1024
        assert scalar(db, "SQRT(9.0)") == 3.0

    def test_sign(self, db):
        assert scalar(db, "SIGN(-9)") == -1
        assert scalar(db, "SIGN(0)") == 0
        assert scalar(db, "SIGN(4)") == 1

    def test_null_propagates(self, db):
        assert scalar(db, "ABS(NULL)") is None
        assert scalar(db, "MOD(NULL, 2)") is None


class TestConditionalFunctions:
    def test_coalesce_chain(self, db):
        assert scalar(db, "COALESCE(NULL, NULL, 7, 9)") == 7
        assert scalar(db, "COALESCE(NULL, NULL)") is None

    def test_nullif_arity_checked(self, db):
        with pytest.raises(ExecutionError):
            scalar(db, "NULLIF(1)")

    def test_case_in_projection(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        for v in (-2, 0, 5):
            db.execute(f"INSERT INTO t VALUES ({v})")
        rows = db.query(
            "SELECT CASE WHEN x < 0 THEN 'neg' WHEN x = 0 THEN 'zero' "
            "ELSE 'pos' END FROM t ORDER BY x"
        )
        assert rows == [("neg",), ("zero",), ("pos",)]

    def test_unknown_function_rejected(self, db):
        with pytest.raises(ExecutionError):
            scalar(db, "FROBNICATE(1)")


class TestFunctionsOverRows:
    def test_function_of_column(self, db):
        db.execute("CREATE TABLE t (name VARCHAR)")
        db.execute("INSERT INTO t VALUES ('Alice'), ('bob')")
        rows = db.query("SELECT UPPER(name) FROM t ORDER BY 1")
        assert rows == [("ALICE",), ("BOB",)]

    def test_function_inside_aggregate(self, db):
        db.execute("CREATE TABLE t (name VARCHAR)")
        db.execute("INSERT INTO t VALUES ('aa'), ('bbb'), ('c')")
        assert db.execute("SELECT MAX(LENGTH(name)) FROM t").scalar() == 3

    def test_aggregate_inside_function(self, db):
        db.execute("CREATE TABLE t (x INTEGER)")
        db.execute("INSERT INTO t VALUES (3), (-10)")
        assert db.execute("SELECT ABS(MIN(x)) FROM t").scalar() == 10

    def test_function_in_where(self, db):
        db.execute("CREATE TABLE t (name VARCHAR)")
        db.execute("INSERT INTO t VALUES ('short'), ('muchlongername')")
        rows = db.query("SELECT name FROM t WHERE LENGTH(name) > 6")
        assert rows == [("muchlongername",)]
