"""Units for the metrics registry, Prometheus rendering, slow-query
log and structured JSON logging."""

import io
import json
import threading

import pytest

from repro.obs.jsonlog import JsonLogger
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    MetricsRegistry,
    publish_gauge,
    sanitize_metric_name,
)
from repro.obs.promtext import CONTENT_TYPE, render_prometheus
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import Tracer


# ----------------------------------------------------------------------
# registry basics
# ----------------------------------------------------------------------


def test_counter_accumulates_and_labels_partition():
    reg = MetricsRegistry()
    c = reg.counter("hits_total", "hits", ("cache",))
    c.inc(cache="plan")
    c.inc(2, cache="plan")
    c.inc(cache="statement")
    assert c.value(cache="plan") == 3
    assert c.value(cache="statement") == 1


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("c_total").inc(-1)


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("rows")
    g.set(10)
    g.inc(5)
    assert g.value() == 15


def test_histogram_buckets_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        h.observe(value)
    state = h.state()
    assert state.count == 5
    assert state.counts == [1, 2, 1, 1]  # per-bucket, +Inf last
    assert state.cumulative() == [1, 3, 4, 5]
    assert state.sum == pytest.approx(5.605)


def test_histogram_value_on_boundary_falls_in_bucket():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(0.1, 1.0))
    h.observe(0.1)
    assert h.state().counts == [1, 0, 0]  # le="0.1" is inclusive


def test_get_or_create_is_idempotent():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "help", ("k",))
    b = reg.counter("x_total", "other help", ("k",))
    assert a is b


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x_total")
    with pytest.raises(ValueError):
        reg.gauge("x_total")


def test_labelnames_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("x_total", labelnames=("a",))
    with pytest.raises(ValueError):
        reg.counter("x_total", labelnames=("b",))


def test_wrong_labels_on_observation_raises():
    reg = MetricsRegistry()
    c = reg.counter("x_total", labelnames=("a",))
    with pytest.raises(ValueError):
        c.inc(b="nope")


def test_disabled_registry_hands_out_null_instrument():
    assert not NULL_REGISTRY.enabled
    c = NULL_REGISTRY.counter("x_total")
    assert c is NULL_INSTRUMENT
    c.inc()
    c.observe(1.0)
    c.set(2.0)
    assert c.value() == 0
    assert NULL_REGISTRY.collect() == []


def test_snapshot_is_json_ready():
    reg = MetricsRegistry()
    reg.counter("c_total", "c", ("k",)).inc(3, k="v")
    reg.histogram("h", "h", buckets=(1.0,)).observe(0.5)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["c_total"]["samples"][0] == {"labels": {"k": "v"}, "value": 3}
    hist = snap["h"]["samples"][0]
    assert hist["count"] == 1
    assert hist["buckets"]["+Inf"] == 1


def test_sanitize_metric_name():
    assert sanitize_metric_name("engine.plan_cache_hits") == (
        "engine_plan_cache_hits"
    )
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("a-b c") == "a_b_c"


# ----------------------------------------------------------------------
# tracer feed
# ----------------------------------------------------------------------


def test_tracer_span_close_feeds_span_histogram():
    reg = MetricsRegistry()
    tracer = Tracer(enabled=True, metrics=reg)
    with tracer.span("work", category="core"):
        pass
    state = reg.get("repro_span_seconds").state(category="core")
    assert state is not None and state.count == 1


def test_tracer_bump_mirrors_counter():
    reg = MetricsRegistry()
    tracer = Tracer(enabled=True, metrics=reg)
    tracer.bump("engine.cache.hits", 4)
    assert reg.get("repro_engine_cache_hits_total").value() == 4


def test_tracer_gauge_run_labels_and_numeric_mirror():
    reg = MetricsRegistry()
    tracer = Tracer(enabled=True, metrics=reg)
    tracer.gauge("rules.decoded", 7, run=1)
    tracer.gauge("rules.decoded", 9, run=2)
    assert tracer.gauges["rules.decoded{run=1}"] == 7
    assert tracer.gauges["rules.decoded{run=2}"] == 9
    # the registry mirror keeps bounded cardinality: labels dropped,
    # last write wins there (the tracer dict keeps the history)
    assert reg.get("repro_rules_decoded").value() == 9


def test_tracer_gauge_string_values_not_mirrored():
    reg = MetricsRegistry()
    tracer = Tracer(enabled=True, metrics=reg)
    tracer.gauge("core.variant", "general")
    assert tracer.gauges["core.variant"] == "general"
    assert reg.get("repro_core_variant") is None


def test_publish_gauge_reaches_registry_without_tracer():
    reg = MetricsRegistry()
    publish_gauge(None, reg, "preprocessor.totg", 42, run=1)
    assert reg.get("repro_preprocessor_totg").value() == 42


# ----------------------------------------------------------------------
# prometheus text rendering
# ----------------------------------------------------------------------


def test_render_prometheus_counter_and_gauge():
    reg = MetricsRegistry()
    reg.counter("req_total", "requests", ("kind",)).inc(2, kind="sql")
    reg.gauge("temp", "temperature").set(1.5)
    text = render_prometheus(reg)
    assert "# HELP req_total requests" in text
    assert "# TYPE req_total counter" in text
    assert 'req_total{kind="sql"} 2' in text
    assert "# TYPE temp gauge" in text
    assert "temp 1.5" in text
    assert text.endswith("\n")
    assert "version=0.0.4" in CONTENT_TYPE


def test_render_prometheus_histogram_shape():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", "latency", ("op",), buckets=(0.1, 1.0))
    h.observe(0.05, op="q")
    h.observe(0.5, op="q")
    text = render_prometheus(reg)
    assert 'lat_seconds_bucket{op="q",le="0.1"} 1' in text
    assert 'lat_seconds_bucket{op="q",le="1"} 2' in text
    assert 'lat_seconds_bucket{op="q",le="+Inf"} 2' in text
    assert 'lat_seconds_count{op="q"} 2' in text
    assert 'lat_seconds_sum{op="q"} 0.55' in text


def test_render_prometheus_escapes_label_values():
    reg = MetricsRegistry()
    reg.counter("c_total", "c", ("q",)).inc(q='say "hi"\nback\\slash')
    text = render_prometheus(reg)
    assert '\\"hi\\"' in text
    assert "\\n" in text
    assert "\\\\slash" in text


def test_default_buckets_are_sorted_and_span_the_range():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
    assert DEFAULT_BUCKETS[0] <= 0.001
    assert DEFAULT_BUCKETS[-1] >= 5.0


# ----------------------------------------------------------------------
# thread safety
# ----------------------------------------------------------------------


def test_concurrent_increments_do_not_lose_updates():
    reg = MetricsRegistry()
    c = reg.counter("n_total")
    h = reg.histogram("h", buckets=(0.5,))

    def work():
        for _ in range(500):
            c.inc()
            h.observe(0.1)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert c.value() == 4000
    assert h.state().count == 4000


# ----------------------------------------------------------------------
# slow-query log
# ----------------------------------------------------------------------


def test_slowlog_threshold_and_ring_buffer():
    log = SlowQueryLog(threshold=0.010, capacity=3, clock=lambda: 123.0)
    assert not log.record("sql.Select", 0.001)
    for i in range(5):
        assert log.record(f"q{i}", 0.020 + i / 1000)
    entries = log.entries()
    assert [e.name for e in entries] == ["q2", "q3", "q4"]  # oldest evicted
    assert log.total_recorded == 5
    assert entries[0].at == 123.0


def test_slowlog_render_and_dicts():
    log = SlowQueryLog(threshold=0.0)
    log.record("minerule.run", 0.2, detail="MINE  RULE   x")
    rendered = log.render()
    assert "minerule.run" in rendered
    assert "200.00 ms" in rendered
    dicts = log.as_dicts()
    assert dicts[0]["ms"] == 200.0
    assert dicts[0]["detail"] == "MINE RULE x"  # whitespace squeezed
    json.dumps(dicts)


def test_slowlog_rejects_bad_construction():
    with pytest.raises(ValueError):
        SlowQueryLog(capacity=0)
    with pytest.raises(ValueError):
        SlowQueryLog(threshold=-1)


def test_slowlog_empty_render_mentions_threshold():
    assert "50.0 ms" in SlowQueryLog(threshold=0.050).render()


# ----------------------------------------------------------------------
# json logging
# ----------------------------------------------------------------------


def test_jsonlog_one_line_per_event():
    stream = io.StringIO()
    logger = JsonLogger(stream=stream, clock=lambda: 1700000000.0)
    logger.log("statement", kind="mine", ms=12.5, ok=True)
    logger.error("boom", error="KeyError: 'x'")
    lines = stream.getvalue().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["event"] == "statement"
    assert first["level"] == "info"
    assert first["kind"] == "mine"
    assert first["ts"] == 1700000000.0
    second = json.loads(lines[1])
    assert second["level"] == "error"


def test_jsonlog_survives_broken_stream():
    class Broken:
        def write(self, data):
            raise OSError("gone")

        def flush(self):
            raise OSError("gone")

    logger = JsonLogger(stream=Broken())
    logger.log("event")  # must not raise
