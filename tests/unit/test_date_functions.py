"""Date-part function tests (and their use in MINE RULE clauses)."""

import pytest

from repro import MiningSystem
from repro.datagen import load_purchase_figure1
from repro.sqlengine import Database
from repro.sqlengine.errors import SqlTypeError


@pytest.fixture
def db():
    return Database()


class TestDateParts:
    def test_year_month_day(self, db):
        row = db.query(
            "SELECT YEAR(DATE '1995-12-17'), MONTH(DATE '1995-12-17'), "
            "DAY(DATE '1995-12-17')"
        )[0]
        assert row == (1995, 12, 17)

    def test_weekday(self, db):
        # 1995-12-17 was a Sunday (weekday 6)
        assert db.execute("SELECT WEEKDAY(DATE '1995-12-17')").scalar() == 6

    def test_null_propagates(self, db):
        assert db.execute("SELECT YEAR(NULL)").scalar() is None

    def test_non_date_rejected(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("SELECT YEAR(5)")

    def test_over_column(self):
        database = Database()
        load_purchase_figure1(database)
        rows = database.query(
            "SELECT DISTINCT DAY(date) FROM Purchase ORDER BY 1"
        )
        assert rows == [(17,), (18,), (19,)]

    def test_in_group_by(self):
        database = Database()
        load_purchase_figure1(database)
        rows = database.query(
            "SELECT DAY(date), COUNT(*) FROM Purchase GROUP BY DAY(date) "
            "ORDER BY 1"
        )
        assert rows == [(17, 2), (18, 4), (19, 2)]


class TestDatePartsInMineRule:
    def test_cluster_condition_with_date_arithmetic(self):
        """Consecutive-day sequences: head exactly one day after body."""
        system = MiningSystem()
        load_purchase_figure1(system.db)
        result = system.execute(
            "MINE RULE NextDay AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "CLUSTER BY date HAVING HEAD.date - BODY.date = 1 "
            "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1"
        )
        keys = {
            (next(iter(r.body)), next(iter(r.head))) for r in result.rules
        }
        # cust1: 12/17 -> 12/18, cust2: 12/18 -> 12/19
        assert ("ski_pants", "jackets") in keys
        assert ("brown_boots", "col_shirts") in keys
        # two days apart: must be absent
        assert ("ski_pants", "col_shirts") not in keys
