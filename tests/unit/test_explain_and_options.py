"""EXPLAIN output and engine-option (planner ablation) tests."""

import pytest

from repro.sqlengine import Database, EngineOptions


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE s (g INTEGER, item VARCHAR)")
    database.execute("CREATE TABLE v (gid INTEGER, g INTEGER)")
    database.execute("CREATE TABLE b (bid INTEGER, item VARCHAR)")
    for g, item in [(1, "a"), (1, "b"), (2, "a")]:
        database.execute(f"INSERT INTO s VALUES ({g}, '{item}')")
    for gid, g in [(10, 1), (20, 2)]:
        database.execute(f"INSERT INTO v VALUES ({gid}, {g})")
    for bid, item in [(100, "a"), (200, "b")]:
        database.execute(f"INSERT INTO b VALUES ({bid}, '{item}')")
    return database


Q4_SHAPE = (
    "SELECT DISTINCT V.gid, B.bid FROM s S, v V, b B "
    "WHERE S.g = V.g AND S.item = B.item"
)


class TestExplain:
    def test_equijoins_become_hash_joins(self, db):
        plan = db.explain(Q4_SHAPE)
        assert plan.count("HashJoin") == 2
        assert "NestedLoopJoin" not in plan
        assert plan.startswith("Project [distinct]")

    def test_filter_pushdown_visible(self, db):
        plan = db.explain(
            "SELECT S.item FROM s S, v V WHERE S.g = V.g AND V.gid > 5"
        )
        # the single-table conjunct sits below the join, on v's scan
        join_pos = plan.index("HashJoin")
        filter_pos = plan.index("Filter")
        assert filter_pos > join_pos

    def test_aggregate_and_sort_nodes(self, db):
        plan = db.explain(
            "SELECT item, COUNT(*) FROM s GROUP BY item "
            "HAVING COUNT(*) > 1 ORDER BY item"
        )
        assert "Sort" in plan
        assert "Aggregate keys=(item)" in plan
        assert "having=" in plan

    def test_theta_join_is_nested_loop(self, db):
        plan = db.explain("SELECT 1 FROM s a, s b WHERE a.g < b.g")
        assert "NestedLoopJoin" in plan

    def test_view_shows_materialized(self, db):
        db.execute("CREATE VIEW vw AS (SELECT item FROM s)")
        plan = db.explain("SELECT * FROM vw")
        assert "Materialized" in plan

    def test_non_select_statement(self, db):
        text = db.explain("DROP TABLE IF EXISTS zz")
        assert "no plan" in text

    def test_select_without_from(self, db):
        assert "SingleRow" in db.explain("SELECT 1 + 1")


class TestEngineOptions:
    def options_db(self, **kwargs):
        database = Database(EngineOptions(**kwargs))
        database.execute("CREATE TABLE l (x INTEGER)")
        database.execute("CREATE TABLE r (x INTEGER)")
        for v in (1, 2, 3):
            database.execute(f"INSERT INTO l VALUES ({v})")
            database.execute(f"INSERT INTO r VALUES ({v})")
        return database

    def test_hash_joins_disabled_uses_nested_loop(self):
        database = self.options_db(hash_joins=False)
        plan = database.explain(
            "SELECT 1 FROM l, r WHERE l.x = r.x"
        )
        assert "NestedLoopJoin" in plan
        assert "HashJoin" not in plan

    def test_results_identical_regardless_of_strategy(self):
        fast = self.options_db()
        slow = self.options_db(hash_joins=False, filter_pushdown=False)
        query = "SELECT l.x FROM l, r WHERE l.x = r.x AND l.x > 1 ORDER BY 1"
        assert fast.query(query) == slow.query(query)

    def test_pushdown_disabled_keeps_filter_at_join_level(self):
        database = self.options_db(filter_pushdown=False)
        plan = database.explain(
            "SELECT l.x FROM l, r WHERE l.x = r.x AND r.x > 1"
        )
        # the single-table conjunct is evaluated as a join residual
        # instead of below the scan
        assert "residual=(r.x > 1)" in plan
        with_pushdown = self.options_db().explain(
            "SELECT l.x FROM l, r WHERE l.x = r.x AND r.x > 1"
        )
        assert "Filter (r.x > 1)" in with_pushdown

    def test_left_join_without_hash_joins_still_correct(self):
        database = self.options_db(hash_joins=False)
        database.execute("INSERT INTO l VALUES (99)")
        rows = database.query(
            "SELECT l.x, r.x FROM l LEFT JOIN r ON l.x = r.x ORDER BY 1"
        )
        assert (99, None) in rows

    def test_mining_pipeline_unaffected_by_options(self):
        from repro import MiningSystem
        from repro.datagen import load_purchase_figure1

        baseline_db = Database()
        load_purchase_figure1(baseline_db)
        baseline = MiningSystem(database=baseline_db).execute(STATEMENT)

        slow_db = Database(EngineOptions(hash_joins=False,
                                         filter_pushdown=False))
        load_purchase_figure1(slow_db)
        slow = MiningSystem(database=slow_db).execute(STATEMENT)
        assert baseline.rule_set() == slow.rule_set()


STATEMENT = """
MINE RULE OptCheck AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Purchase
GROUP BY customer
CLUSTER BY date HAVING BODY.date < HEAD.date
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""
