"""Session report tests (ease-of-view, Section 3 objective 4)."""

import pytest

from repro import MiningSystem
from repro.cli import Shell
from repro.datagen import load_purchase_figure1
from repro.report import ReportOptions, render_report, report

STATEMENT = """
MINE RULE Rep AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5
"""


@pytest.fixture
def system():
    sys_ = MiningSystem()
    load_purchase_figure1(sys_.db)
    return sys_


class TestRenderReport:
    def test_basic_sections(self, system):
        result = system.execute(STATEMENT)
        text = render_report(system, result)
        assert "MINE RULE report — Rep" in text
        assert "classification:" in text
        assert "groups: 2" in text
        assert "encoded tables:" in text
        assert "timings:" in text
        assert f"rules: {len(result.rules)}" in text

    def test_rules_sorted_by_support_default(self, system):
        result = system.execute(STATEMENT)
        text = render_report(system, result)
        rule_lines = [l for l in text.splitlines() if "=>" in l]
        assert rule_lines  # rules are listed

    def test_top_truncation(self, system):
        result = system.execute(STATEMENT)
        text = render_report(
            system, result, options=ReportOptions(top=2)
        )
        assert "... and" in text
        assert len([l for l in text.splitlines() if "=>" in l]) == 2

    def test_metrics_annotated(self, system):
        result = system.execute(STATEMENT)
        metrics = system.compute_metrics(result, store=False)
        text = render_report(system, result, metrics)
        assert "lift=" in text and "conviction=" in text

    def test_sort_by_confidence(self, system):
        result = system.execute(STATEMENT)
        text = render_report(
            system, result, options=ReportOptions(sort_by="confidence")
        )
        confidences = [
            float(line.split("confidence=")[1].split(")")[0])
            for line in text.splitlines()
            if "confidence=" in line and "=>" in line
        ]
        assert confidences == sorted(confidences, reverse=True)

    def test_include_program(self, system):
        result = system.execute(STATEMENT)
        text = render_report(
            system, result, options=ReportOptions(include_program=True)
        )
        assert "translation program:" in text
        assert "-- Q1:" in text

    def test_one_call_report(self, system):
        text = report(system, STATEMENT)
        assert "MINE RULE report" in text
        assert "lift=" in text

    def test_reused_preprocessing_noted(self, system):
        system.execute(STATEMENT)
        second = system.execute(STATEMENT.replace("Rep", "Rep2"))
        text = render_report(system, second)
        assert "reused encoded tables" in text


class TestShellReport:
    def test_report_requires_prior_statement(self):
        shell = Shell()
        assert "no MINE RULE" in shell.execute(".report")

    def test_report_after_statement(self):
        shell = Shell()
        shell.execute(".load purchase")
        shell.execute(STATEMENT)
        out = shell.execute(".report")
        assert "MINE RULE report — Rep" in out
        assert "lift=" in out

    def test_report_sort_argument(self):
        shell = Shell()
        shell.execute(".load purchase")
        shell.execute(STATEMENT)
        out = shell.execute(".report confidence")
        assert "MINE RULE report" in out
