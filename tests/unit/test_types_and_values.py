"""Type system and value-semantics tests."""

import datetime

import pytest

from repro.sqlengine.errors import SqlTypeError
from repro.sqlengine.evaluator import compare, tvl_and, tvl_not, tvl_or
from repro.sqlengine.types import (
    SqlType,
    coerce,
    infer_type,
    is_comparable,
    type_from_name,
)


class TestTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("INTEGER", SqlType.INTEGER),
            ("int", SqlType.INTEGER),
            ("BIGINT", SqlType.INTEGER),
            ("REAL", SqlType.REAL),
            ("float", SqlType.REAL),
            ("NUMERIC", SqlType.REAL),
            ("DECIMAL", SqlType.REAL),
            ("VARCHAR", SqlType.VARCHAR),
            ("char", SqlType.VARCHAR),
            ("TEXT", SqlType.VARCHAR),
            ("DATE", SqlType.DATE),
            ("BOOLEAN", SqlType.BOOLEAN),
        ],
    )
    def test_synonyms(self, name, expected):
        assert type_from_name(name) is expected

    def test_unknown_type_rejected(self):
        with pytest.raises(SqlTypeError):
            type_from_name("BLOB")


class TestInference:
    def test_infer(self):
        assert infer_type(None) is None
        assert infer_type(True) is SqlType.BOOLEAN
        assert infer_type(3) is SqlType.INTEGER
        assert infer_type(3.5) is SqlType.REAL
        assert infer_type("x") is SqlType.VARCHAR
        assert infer_type(datetime.date(2000, 1, 1)) is SqlType.DATE

    def test_infer_unsupported(self):
        with pytest.raises(SqlTypeError):
            infer_type(object())


class TestCoercion:
    def test_null_passes_through(self):
        assert coerce(None, SqlType.INTEGER) is None

    def test_int_widens_to_real(self):
        value = coerce(3, SqlType.REAL)
        assert value == 3.0 and isinstance(value, float)

    def test_integral_float_narrows_to_int(self):
        assert coerce(3.0, SqlType.INTEGER) == 3

    def test_fractional_float_to_int_rejected(self):
        with pytest.raises(SqlTypeError):
            coerce(3.5, SqlType.INTEGER)

    def test_iso_string_to_date(self):
        assert coerce("1995-12-17", SqlType.DATE) == datetime.date(1995, 12, 17)

    def test_bad_date_string_rejected(self):
        with pytest.raises(SqlTypeError):
            coerce("12/17/1995", SqlType.DATE)

    def test_string_to_int_rejected(self):
        with pytest.raises(SqlTypeError):
            coerce("5", SqlType.INTEGER)

    def test_bool_to_int(self):
        assert coerce(True, SqlType.INTEGER) == 1


class TestComparability:
    def test_numeric_cross_type(self):
        assert is_comparable(1, 2.5)

    def test_string_vs_number(self):
        assert not is_comparable("a", 1)

    def test_null_comparable_with_anything(self):
        assert is_comparable(None, "x")

    def test_dates(self):
        assert is_comparable(
            datetime.date(2000, 1, 1), datetime.date(2001, 1, 1)
        )


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        assert tvl_and(True, True) is True
        assert tvl_and(True, False) is False
        assert tvl_and(False, None) is False
        assert tvl_and(True, None) is None
        assert tvl_and(None, None) is None

    def test_or_truth_table(self):
        assert tvl_or(False, False) is False
        assert tvl_or(True, None) is True
        assert tvl_or(False, None) is None
        assert tvl_or(None, None) is None

    def test_not(self):
        assert tvl_not(True) is False
        assert tvl_not(False) is True
        assert tvl_not(None) is None

    def test_compare_null_is_unknown(self):
        assert compare("=", None, 1) is None
        assert compare("<", 1, None) is None

    def test_compare_operators(self):
        assert compare("=", 2, 2) is True
        assert compare("<>", 2, 3) is True
        assert compare("<", 1, 2) is True
        assert compare("<=", 2, 2) is True
        assert compare(">", 3, 2) is True
        assert compare(">=", 2, 3) is False

    def test_compare_mixed_numeric(self):
        assert compare("=", 2, 2.0) is True

    def test_compare_incompatible_rejected(self):
        with pytest.raises(SqlTypeError):
            compare("<", "a", 1)
