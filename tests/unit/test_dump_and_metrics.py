"""Persistence (dump/load) and rule-quality metric tests."""

import datetime
import math

import pytest

from repro import MiningSystem
from repro.datagen import load_purchase_figure1
from repro.sqlengine import Database
from repro.sqlengine.dump import dump_database, load_database


class TestDumpLoad:
    @pytest.fixture
    def populated(self):
        db = Database()
        load_purchase_figure1(db)
        db.execute("CREATE VIEW cheap AS (SELECT item FROM Purchase "
                   "WHERE price < 100)")
        db.execute("CREATE SEQUENCE ids")
        db.execute("SELECT ids.NEXTVAL")  # advance to 2
        db.execute("CREATE INDEX pidx ON Purchase (customer)")
        db.execute("SELECT COUNT(*) INTO :n FROM Purchase")
        return db

    def test_roundtrip_tables(self, populated, tmp_path):
        dump_database(populated, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        assert restored.query(
            "SELECT tr, customer, item, date, price, qty FROM Purchase"
        ) == populated.query(
            "SELECT tr, customer, item, date, price, qty FROM Purchase"
        )

    def test_roundtrip_preserves_types(self, populated, tmp_path):
        dump_database(populated, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        row = restored.query("SELECT date, price, qty FROM Purchase "
                             "WHERE tr = 1")[0]
        assert isinstance(row[0], datetime.date)
        assert isinstance(row[1], float)
        assert isinstance(row[2], int)

    def test_roundtrip_views_work(self, populated, tmp_path):
        dump_database(populated, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        assert len(restored.query("SELECT * FROM cheap")) == 2

    def test_roundtrip_sequence_continues(self, populated, tmp_path):
        dump_database(populated, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        assert restored.execute("SELECT ids.NEXTVAL").scalar() == 2

    def test_roundtrip_variables(self, populated, tmp_path):
        dump_database(populated, tmp_path / "dump")
        restored = load_database(tmp_path / "dump")
        assert restored.variables["n"] == 8

    def test_nulls_and_special_strings(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        db.execute("INSERT INTO t VALUES (NULL, 'tab\there')")
        db.execute("INSERT INTO t VALUES (1, :s)", {"s": "back\\slash"})
        db.execute("INSERT INTO t VALUES (2, :s)", {"s": "\\N"})
        dump_database(db, tmp_path / "d")
        restored = load_database(tmp_path / "d")
        assert restored.query("SELECT a, b FROM t") == db.query(
            "SELECT a, b FROM t"
        )

    def test_corrupt_row_count_detected(self, populated, tmp_path):
        target = dump_database(populated, tmp_path / "dump")
        tsv = target / "Purchase.tsv"
        lines = tsv.read_text().splitlines()
        tsv.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError):
            load_database(target)

    def test_mining_results_survive_dump(self, tmp_path):
        system = MiningSystem()
        load_purchase_figure1(system.db)
        system.execute(
            "MINE RULE Kept AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.9"
        )
        dump_database(system.db, tmp_path / "session")
        restored = load_database(tmp_path / "session")
        assert restored.execute("SELECT COUNT(*) FROM Kept").scalar() > 0
        assert restored.query("SELECT BODY FROM Kept_Display") \
            == system.db.query("SELECT BODY FROM Kept_Display")


class TestMetrics:
    @pytest.fixture
    def executed(self):
        system = MiningSystem()
        load_purchase_figure1(system.db)
        result = system.execute(
            "MINE RULE M AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5"
        )
        return system, result

    def test_metrics_computed_for_every_rule(self, executed):
        system, result = executed
        metrics = system.compute_metrics(result, store=False)
        assert len(metrics) == len(result.rules)

    def test_lift_matches_direct_computation(self, executed):
        system, result = executed
        metrics = system.compute_metrics(result, store=False)
        totg = system.db.variables["totg"]
        for m in metrics:
            head_support = m.head_count / totg
            assert math.isclose(m.lift, m.rule.confidence / head_support)

    def test_leverage_bounds(self, executed):
        system, result = executed
        for m in system.compute_metrics(result, store=False):
            assert -0.25 <= m.leverage <= 0.25 + 1e-9

    def test_conviction_none_iff_confidence_one(self, executed):
        system, result = executed
        for m in system.compute_metrics(result, store=False):
            if m.rule.confidence >= 1.0 - 1e-12:
                assert m.conviction is None
            else:
                assert m.conviction is not None and m.conviction >= 0

    def test_metrics_stored_and_joinable(self, executed):
        system, result = executed
        system.compute_metrics(result, store=True)
        rows = system.db.query(
            "SELECT R.SUPPORT, X.LIFT FROM M R, M_Metrics X "
            "WHERE R.BodyId = X.BodyId AND R.HeadId = X.HeadId"
        )
        assert len(rows) == len(result.rules)

    def test_independent_items_have_lift_one(self):
        # 4 groups; x and y co-occur exactly at independence:
        # supp(x)=0.5, supp(y)=0.5, supp(xy)=0.25
        system = MiningSystem()
        system.db.create_table_from_rows(
            "T",
            ("g", "item"),
            [(1, "x"), (1, "y"), (2, "x"), (3, "y"), (4, "z")],
        )
        result = system.execute(
            "MINE RULE L AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY g "
            "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.1"
        )
        metrics = {
            (tuple(sorted(m.rule.body)), tuple(sorted(m.rule.head))): m
            for m in system.compute_metrics(result, store=False)
        }
        # decode: find encoded ids through the decoded rules
        for m in metrics.values():
            assert m.lift > 0
        # the x => y rule has confidence 0.5 and head support 0.5
        one = [
            m for m in metrics.values()
            if math.isclose(m.rule.confidence, 0.5)
            and math.isclose(m.lift, 1.0)
        ]
        assert one  # independence detected
