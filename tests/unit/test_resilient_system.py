"""System-level resilience semantics: checkpoints, validation, and
the retry-policy plumbing of :meth:`MiningSystem.run`."""

import pytest

from repro import (
    Database,
    FaultError,
    FaultSchedule,
    MiningSystem,
    RetryPolicy,
    faults,
)
from repro.datagen import load_purchase_figure1

STATEMENT = (
    "MINE RULE ResumeCheck AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY customer "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
)


@pytest.fixture
def system():
    database = Database()
    load_purchase_figure1(database)
    return MiningSystem(database=database)


def _crash(system, site="core.load"):
    with faults.injected(FaultSchedule().arm(site)):
        with pytest.raises(FaultError):
            system.run(STATEMENT)


class TestCheckpoints:
    def test_resume_without_checkpoint_is_a_normal_run(self, system):
        result = system.run(STATEMENT, resume=True)
        assert result.rules
        assert result.resilience.stages_resumed == 0

    def test_crash_leaves_checkpoint_success_consumes_it(self, system):
        _crash(system)
        checkpoint = system.checkpoint_for(STATEMENT)
        assert checkpoint is not None
        assert checkpoint.completed_queries
        assert checkpoint.encoded_rules is None  # crashed before core
        system.run(STATEMENT, resume=True)
        assert system.checkpoint_for(STATEMENT) is None

    def test_whitespace_differences_share_one_checkpoint(self, system):
        _crash(system)
        reformatted = STATEMENT.replace(" FROM", "\n  FROM")
        assert system.checkpoint_for(reformatted) is not None
        result = system.run(reformatted, resume=True)
        assert result.resilience.stages_resumed > 0

    def test_plain_run_ignores_checkpoint(self, system):
        _crash(system)
        result = system.run(STATEMENT)  # resume not requested
        assert result.resilience.stages_resumed == 0
        assert result.rules

    def test_stale_checkpoint_restarts_from_scratch(self, system):
        _crash(system)
        checkpoint = system.checkpoint_for(STATEMENT)
        # an encoded table changed underneath the checkpoint
        victim = next(iter(checkpoint.table_snapshot))
        system.db.catalog.get_table(victim).rows.append(
            system.db.catalog.get_table(victim).rows[0]
        )
        result = system.run(STATEMENT, resume=True)
        assert result.rules
        assert result.resilience.stages_resumed == 0
        assert any(
            event.action == "checkpoint discarded"
            for event in result.flow.events
        )

    def test_checkpoint_store_is_bounded(self, system):
        cap = MiningSystem._CHECKPOINT_CAP
        for i in range(cap + 5):
            statement = STATEMENT.replace("ResumeCheck", f"Out{i}")
            with faults.injected(FaultSchedule().arm("core.load")):
                with pytest.raises(FaultError):
                    system.run(statement)
        assert len(system._checkpoints) == cap

    def test_invalidate_preprocessing_drops_checkpoints(self, system):
        _crash(system)
        system.invalidate_preprocessing()
        assert system.checkpoint_for(STATEMENT) is None

    def test_discarded_checkpoint_sweeps_its_workspace(self, system):
        """Satellite fix: a stale checkpoint discarded on
        ``resume=True`` used to leak its workspace — the restarted run
        mints a fresh prefix, so the orphaned encoded tables were never
        dropped.  The discard path now sweeps the old prefix."""
        _crash(system, site="core.load")
        checkpoint = system.checkpoint_for(STATEMENT)
        prefix = checkpoint.workspace_prefix
        orphans = [
            t.name for t in system.db.catalog.tables()
            if t.name.startswith(prefix)
        ]
        assert orphans  # the crash left encoded tables behind
        # drop one encoded table mid-crash: the checkpoint is now stale
        victim = next(iter(checkpoint.table_snapshot))
        system.db.catalog.drop_table(victim)
        result = system.run(STATEMENT, resume=True)
        assert result.rules
        assert result.resilience.stages_resumed == 0
        leaked = [
            t.name for t in system.db.catalog.tables()
            if t.name.startswith(prefix)
        ]
        assert leaked == []
        assert any(
            event.action == "swept orphaned workspace"
            for event in result.flow.events
        )
        # the sweep also evicts reuse-cache entries pointing at the
        # dropped prefix, or a later statement would be handed
        # just-dropped encoded tables
        assert all(
            entry[0].prefix != prefix
            for entry in system._preprocess_cache.values()
        )


class TestRetryPlumbing:
    def test_system_wide_retry_policy_is_used(self):
        database = Database()
        load_purchase_figure1(database)
        system = MiningSystem(
            database=database,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.0),
        )
        with faults.injected(FaultSchedule().arm("core.load")):
            result = system.run(STATEMENT)
        assert result.rules
        assert result.resilience.retries == 1
        assert result.resilience.faults_injected == 1

    def test_per_call_retry_overrides_system_policy(self, system):
        # system has no retry policy; the call-level one saves the run
        with faults.injected(FaultSchedule().arm("postprocessor.store")):
            result = system.run(
                STATEMENT, retry=RetryPolicy(max_attempts=2, base_delay=0.0)
            )
        assert result.rules
        assert result.resilience.retries == 1

    def test_execute_keeps_single_attempt_semantics(self, system):
        with faults.injected(FaultSchedule().arm("core.load")):
            with pytest.raises(FaultError):
                system.execute(STATEMENT)

    def test_fault_free_run_reports_quiet_resilience(self, system):
        result = system.run(STATEMENT)
        assert result.resilience is not None
        assert not result.resilience.any()
        assert "resilience" not in result.flow.render().split("counters")[0]
