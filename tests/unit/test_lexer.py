"""Tokenizer tests."""

import datetime

import pytest

from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.lexer import Token, TokenType, tokenize


def kinds(text):
    return [t.type for t in tokenize(text)[:-1]]


def texts(text):
    return [t.text for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        for variant in ("select", "SELECT", "SeLeCt"):
            tok = tokenize(variant)[0]
            assert tok.type is TokenType.KEYWORD
            assert tok.text == "SELECT"

    def test_identifier_preserves_case(self):
        tok = tokenize("CodedSource")[0]
        assert tok.type is TokenType.IDENT
        assert tok.value == "CodedSource"

    def test_integer_literal(self):
        tok = tokenize("42")[0]
        assert tok.type is TokenType.NUMBER
        assert tok.value == 42
        assert isinstance(tok.value, int)

    def test_float_literal(self):
        tok = tokenize("0.25")[0]
        assert tok.value == 0.25
        assert isinstance(tok.value, float)

    def test_float_without_leading_zero(self):
        assert tokenize(".5")[0].value == 0.5

    def test_string_literal(self):
        tok = tokenize("'hello world'")[0]
        assert tok.type is TokenType.STRING
        assert tok.value == "hello world"

    def test_string_with_escaped_quote(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_empty_string(self):
        assert tokenize("''")[0].value == ""

    def test_eof_token_terminates(self):
        assert tokenize("x")[-1].type is TokenType.EOF


class TestDateLiterals:
    def test_date_literal(self):
        tok = tokenize("DATE '1995-12-17'")[0]
        assert tok.type is TokenType.DATE
        assert tok.value == datetime.date(1995, 12, 17)

    def test_bare_date_is_keyword(self):
        # column named "date": no string follows
        tok = tokenize("date BETWEEN x AND y")[0]
        assert tok.type is TokenType.KEYWORD
        assert tok.text == "DATE"

    def test_invalid_date_literal(self):
        with pytest.raises(SqlParseError):
            tokenize("DATE '17/12/1995'")


class TestHostVariables:
    def test_hostvar(self):
        tok = tokenize(":totg")[0]
        assert tok.type is TokenType.HOSTVAR
        assert tok.value == "totg"

    def test_hostvar_with_underscore_and_digits(self):
        assert tokenize(":min_groups2")[0].value == "min_groups2"

    def test_bare_colon_is_symbol(self):
        toks = tokenize("SUPPORT: 0.2")
        assert toks[0].type is TokenType.IDENT
        assert toks[1].is_symbol(":")
        assert toks[2].value == 0.2


class TestSymbols:
    def test_two_char_symbols(self):
        assert texts("<> <= >= || ..") == ["<>", "<=", ">=", "||", ".."]

    def test_bang_equals_normalized(self):
        assert tokenize("a != b")[1].text == "<>"

    def test_cardinality_range_not_a_float(self):
        toks = tokenize("1..n")
        assert toks[0].value == 1
        assert toks[1].text == ".."
        assert toks[2].value == "n"

    def test_one_dot_dot_number(self):
        toks = tokenize("1..3")
        assert [toks[0].value, toks[1].text, toks[2].value] == [1, "..", 3]

    def test_unknown_character_rejected(self):
        with pytest.raises(SqlParseError):
            tokenize("a ~ b")


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("a -- comment\n b") == [TokenType.IDENT, TokenType.IDENT]

    def test_block_comment_skipped(self):
        assert kinds("a /* xx\nyy */ b") == [TokenType.IDENT, TokenType.IDENT]

    def test_unterminated_block_comment(self):
        with pytest.raises(SqlParseError):
            tokenize("a /* no end")

    def test_unterminated_string(self):
        with pytest.raises(SqlParseError):
            tokenize("'no end")


class TestLineTracking:
    def test_line_numbers(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]

    def test_parse_error_carries_line(self):
        with pytest.raises(SqlParseError) as excinfo:
            tokenize("ok\n ~")
        assert excinfo.value.line == 2


class TestDelimitedIdentifiers:
    def test_quoted_identifier(self):
        tok = tokenize('"Weird Name"')[0]
        assert tok.type is TokenType.IDENT
        assert tok.value == "Weird Name"

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlParseError):
            tokenize('"no end')
