"""Thread-safety regression tests for the engine layer.

The jobs subsystem executes statements from a pool of worker threads
against one shared :class:`Database`; these tests hammer the pieces
that used to assume a single thread — the statement/plan caches, the
catalog version counter, sequences, host-variable bindings — plus the
reader/writer lock itself.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.sqlengine.catalog import Sequence
from repro.sqlengine.engine import Database
from repro.sqlengine.locks import RWLock

THREADS = 8


def run_threads(count, target):
    """Run *target(i)* on *count* threads; re-raise the first error."""
    errors = []

    def wrapped(i):
        try:
            target(i)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# RWLock
# ---------------------------------------------------------------------------


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = threading.Barrier(4, timeout=5)

        def reader(i):
            with lock.read_locked():
                inside.wait()  # all 4 readers in simultaneously

        run_threads(4, reader)

    def test_writer_excludes_writers_and_readers(self):
        lock = RWLock()
        counter = {"value": 0, "max": 0}
        active = threading.Lock()

        def writer(i):
            with lock.write_locked():
                with active:
                    counter["value"] += 1
                    counter["max"] = max(counter["max"], counter["value"])
                with active:
                    counter["value"] -= 1

        run_threads(8, writer)
        assert counter["max"] == 1

    def test_write_reentrant_and_nested_read(self):
        lock = RWLock()
        with lock.write_locked():
            with lock.write_locked():
                with lock.read_locked():
                    assert lock.status()["writer_depth"] == 2

    def test_read_reentrant(self):
        lock = RWLock()
        with lock.read_locked():
            with lock.read_locked():
                assert lock.status()["readers"] == 2

    def test_upgrade_raises(self):
        lock = RWLock()
        with lock.read_locked():
            with pytest.raises(RuntimeError):
                lock.acquire_write()

    def test_release_without_acquire_raises(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        order = []
        reader_in = threading.Event()
        writer_waiting = threading.Event()

        def first_reader():
            with lock.read_locked():
                reader_in.set()
                writer_waiting.wait(timeout=5)
                # give the writer time to queue up before releasing

        def writer():
            reader_in.wait(timeout=5)
            writer_waiting.set()
            with lock.write_locked():
                order.append("writer")

        def second_reader():
            writer_waiting.wait(timeout=5)
            with lock.read_locked():
                order.append("reader2")

        threads = [
            threading.Thread(target=t)
            for t in (first_reader, writer, second_reader)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert order[0] == "writer"  # writer preference


# ---------------------------------------------------------------------------
# statement/plan caches under prepare() from 8 threads (the satellite
# regression test)
# ---------------------------------------------------------------------------


class TestPrepareHammer:
    def test_prepare_hammer_8_threads(self):
        db = Database()
        db.execute("CREATE TABLE t (k INTEGER, v INTEGER)")
        for i in range(50):
            db.execute(f"INSERT INTO t VALUES ({i % 10}, {i})")
        statements = [
            f"SELECT k, COUNT(*) AS c FROM t WHERE k >= {i} GROUP BY k"
            for i in range(6)
        ]
        expected = {
            sql: db.prepare(sql).execute().rows for sql in statements
        }
        db.clear_caches()

        def hammer(i):
            for round_ in range(40):
                sql = statements[(i + round_) % len(statements)]
                prepared = db.prepare(sql)
                assert prepared.execute().rows == expected[sql]

        run_threads(THREADS, hammer)
        # the statement cache must hold exactly one AST per text
        assert len(db._statement_cache) == len(statements)

    def test_shared_plan_thread_local_params(self):
        """Concurrent executions of one cached plan must each see
        their own host variables (the old rebinding race)."""
        db = Database()
        db.execute("CREATE TABLE n (v INTEGER)")
        for i in range(10):
            db.execute(f"INSERT INTO n VALUES ({i})")
        sql = "SELECT COUNT(*) AS c FROM n WHERE v < :limit"
        prepared = db.prepare(sql)
        barrier = threading.Barrier(THREADS, timeout=10)

        def probe(i):
            for _ in range(30):
                barrier.wait()
                rows = prepared.execute({"limit": i}).rows
                assert rows == [(i,)], f"thread {i} saw {rows}"

        run_threads(THREADS, probe)

    def test_statements_executed_is_accurate(self):
        db = Database()
        db.execute("CREATE TABLE c (v INTEGER)")
        before = db.statements_executed

        def insert(i):
            for j in range(50):
                db.execute("INSERT INTO c VALUES (:v)", {"v": i * 50 + j})

        run_threads(THREADS, insert)
        assert db.statements_executed == before + THREADS * 50
        assert db.query("SELECT COUNT(*) FROM c") == [(THREADS * 50,)]


# ---------------------------------------------------------------------------
# catalog + sequences
# ---------------------------------------------------------------------------


class TestCatalogConcurrency:
    def test_concurrent_ddl_bumps_version_exactly(self):
        db = Database()
        version = db.catalog.version

        def ddl(i):
            db.execute(f"CREATE TABLE t{i} (v INTEGER)")

        run_threads(THREADS, ddl)
        assert db.catalog.version == version + THREADS
        assert len(db.catalog.tables()) == THREADS

    def test_sequence_nextval_no_duplicates(self):
        seq = Sequence("s")
        drawn = []
        lock = threading.Lock()

        def draw(i):
            values = [seq.nextval() for _ in range(200)]
            with lock:
                drawn.extend(values)

        run_threads(THREADS, draw)
        assert len(drawn) == len(set(drawn)) == THREADS * 200
        assert seq.next_value == THREADS * 200 + 1

    def test_sequence_through_sql(self):
        db = Database()
        db.execute("CREATE SEQUENCE ids")
        db.execute("CREATE TABLE seqrows (v INTEGER)")

        def draw(i):
            for _ in range(50):
                db.execute("INSERT INTO seqrows VALUES (ids.NEXTVAL)")

        run_threads(THREADS, draw)
        rows = db.query("SELECT v FROM seqrows")
        values = [v for (v,) in rows]
        assert sorted(values) == list(range(1, THREADS * 50 + 1))


# ---------------------------------------------------------------------------
# mixed readers/writers through the statement guard
# ---------------------------------------------------------------------------


class TestStatementInterleaving:
    def test_no_torn_reads_under_case_transfer(self):
        """A CASE update moves 10 between two rows, preserving the
        total; concurrent scans must never observe a partial move."""
        db = Database()
        db.execute("CREATE TABLE bank (id INTEGER, amount INTEGER)")
        db.execute("INSERT INTO bank VALUES (1, 100)")
        db.execute("INSERT INTO bank VALUES (2, 100)")
        stop = threading.Event()
        sums = []

        def writer():
            for i in range(150):
                sign = 1 if i % 2 == 0 else -1
                db.execute(
                    "UPDATE bank SET amount = CASE id "
                    f"WHEN 1 THEN amount - {10 * sign} "
                    f"ELSE amount + {10 * sign} END"
                )
            stop.set()

        def reader():
            while True:
                rows = db.query("SELECT SUM(amount) FROM bank")
                sums.append(rows[0][0])
                if stop.is_set():
                    return

        with ThreadPoolExecutor(max_workers=5) as pool:
            futures = [pool.submit(writer)]
            futures += [pool.submit(reader) for _ in range(4)]
            for future in futures:
                future.result(timeout=60)
        assert sums, "readers never ran"
        assert set(sums) == {200}

    def test_no_lost_updates_on_increment(self):
        db = Database()
        db.execute("CREATE TABLE tally (n INTEGER)")
        db.execute("INSERT INTO tally VALUES (0)")

        def bump(i):
            for _ in range(50):
                db.execute("UPDATE tally SET n = n + 1")

        run_threads(THREADS, bump)
        assert db.query("SELECT n FROM tally") == [(THREADS * 50,)]

    def test_select_into_is_exclusive(self):
        """SELECT INTO writes host variables, so it takes the write
        side; concurrent INTOs must not clobber each other mid-read."""
        db = Database()
        db.execute("CREATE TABLE src (v INTEGER)")
        db.execute("INSERT INTO src VALUES (7)")

        def into(i):
            for _ in range(50):
                db.execute("SELECT v INTO :x FROM src")
                assert db.variables["x"] == 7

        run_threads(4, into)
