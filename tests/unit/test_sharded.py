"""Unit tests for the sharded executor (PR 6): plan arithmetic, the
exact recount kernels, executor fallbacks and the system facade wiring
(``workers=N``)."""

import pytest

from repro import MiningSystem
from repro.algorithms import get_algorithm
from repro.datagen import load_purchase_figure1
from repro.kernel.core.inputs import SimpleInput
from repro.kernel.core.simple import SimpleCoreOperator
from repro.kernel.program import CoreDirectives
from repro.parallel import (
    ShardPlan,
    ShardedMiner,
    exact_itemset_counts,
    local_min_count,
)

GROUPS = {
    1: frozenset({1, 2, 5}),
    2: frozenset({2, 4}),
    3: frozenset({2, 3}),
    4: frozenset({1, 2, 4}),
    5: frozenset({1, 3}),
    8: frozenset({1, 2}),
    9: frozenset({2, 3}),
    12: frozenset({1, 2, 3}),
    15: frozenset({2}),
    20: frozenset({1, 2}),
}


def _directives(**overrides):
    base = dict(
        simple=True,
        same_schema=True,
        clustered=False,
        cluster_condition=False,
        mining_condition=False,
        coded_source="CS",
        cluster_couples=None,
        input_rules=None,
        min_support=0.0,
        min_confidence=0.0,
        body_card=(1, None),
        head_card=(1, 1),
    )
    base.update(overrides)
    return CoreDirectives(**base)


class TestShardPlan:
    def test_ragged_split(self):
        plan = ShardPlan.split(GROUPS, 4)
        assert plan.sizes == (3, 3, 2, 2)
        assert plan.bounds == ((1, 3), (4, 8), (9, 12), (15, 20))
        assert plan.total == len(GROUPS)
        assert plan.shard_of(8) == 1
        assert plan.shard_of(13) is None
        assert "1..3 (3)" in plan.describe()

    def test_empty_shards(self):
        plan = ShardPlan.split([7, 11], 4)
        assert plan.sizes == (1, 1, 0, 0)
        assert plan.bounds == ((7, 7), (11, 11), None, None)
        assert "empty" in plan.describe()

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError, match="positive"):
            ShardPlan.split([1], 0)

    def test_assign_preserves_groups(self):
        plan = ShardPlan.split(GROUPS, 3)
        shards = plan.assign(GROUPS)
        merged = {}
        for shard in shards:
            merged.update(shard)
        assert merged == GROUPS
        assert [len(s) for s in shards] == list(plan.sizes)

    def test_local_min_count_scaling(self):
        # Partition's ceil scaling, and the empty-shard convention
        assert local_min_count(4, 10, 5) == 2
        assert local_min_count(1, 10, 5) == 1
        assert local_min_count(10, 10, 3) == 3
        assert local_min_count(3, 9, 3) == 1
        assert local_min_count(5, 10, 0) == 1


class TestExactItemsetCounts:
    CANDIDATES = [(1,), (2,), (1, 2), (2, 3), (1, 2, 3), (7,), (1, 7)]

    def _expected(self):
        return [
            sum(
                1
                for items in GROUPS.values()
                if frozenset(candidate) <= items
            )
            for candidate in self.CANDIDATES
        ]

    @pytest.mark.parametrize("representation", ["bitset", "packed", "set"])
    def test_counts_match_subset_scan(self, representation):
        counts = exact_itemset_counts(
            GROUPS, self.CANDIDATES, representation
        )
        assert counts == self._expected()

    def test_packed_kernels_engaged_on_forced_cutover(self, monkeypatch):
        from repro.algorithms import bitset as module

        if module._BITWISE_COUNT is None:
            pytest.skip("numpy not importable")
        monkeypatch.setattr(module, "PACKED_MIN_SLOTS", 1)
        counts = exact_itemset_counts(GROUPS, self.CANDIDATES, "packed")
        assert counts == self._expected()

    def test_empty_groups(self):
        assert exact_itemset_counts({}, self.CANDIDATES, "bitset") == [
            0
        ] * len(self.CANDIDATES)


class TestShardedMinerMachinery:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedMiner(workers=0)
        with pytest.raises(ValueError, match="shards"):
            ShardedMiner(workers=2, shards=0)
        with pytest.raises(ValueError, match="start method"):
            ShardedMiner(workers=2, start_method="thread")

    def test_empty_input_yields_no_rules(self):
        miner = ShardedMiner(workers=2, in_process=True)
        data = SimpleInput(totg=0, min_count=1, groups={})
        rules, stats = miner.mine_simple(
            data, _directives(), get_algorithm("apriori")
        )
        assert rules == []
        assert stats.shards == 2 and stats.workers == 2

    def test_shard_seconds_recorded_per_phase(self):
        miner = ShardedMiner(workers=2, shards=3, in_process=True)
        data = SimpleInput(totg=len(GROUPS), min_count=2, groups=GROUPS)
        miner.mine_simple(data, _directives(), get_algorithm("apriori"))
        phases = {phase for phase, _ in miner.shard_seconds}
        assert phases == {"local", "recount"}
        assert len(miner.shard_seconds) == 6

    def test_matches_serial_operator(self):
        data = SimpleInput(totg=len(GROUPS), min_count=2, groups=GROUPS)
        directives = _directives(min_confidence=0.4)
        serial = SimpleCoreOperator(get_algorithm("apriori")).run(
            data, directives
        )
        miner = ShardedMiner(workers=4, shards=7, in_process=True)
        rules, _ = miner.mine_simple(
            data, directives, get_algorithm("apriori")
        )
        assert rules == serial


class TestSystemFacadeWiring:
    STATEMENT = (
        "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
        "GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
    )
    CLUSTERED = (
        "MINE RULE C AS SELECT DISTINCT 1..n item AS BODY, "
        "1..n item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
        "GROUP BY customer CLUSTER BY date "
        "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.2"
    )

    def _run(self, statement, **kwargs):
        system = MiningSystem(**kwargs)
        load_purchase_figure1(system.db)
        return system.execute(statement)

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            MiningSystem(workers=0)

    def test_sharded_simple_matches_serial(self):
        serial = self._run(self.STATEMENT)
        sharded = self._run(self.STATEMENT, workers=2)
        assert sharded.encoded_rules == serial.encoded_rules
        assert sharded.core_stats.shards == 2
        assert sharded.core_stats.workers == 2
        assert serial.core_stats.shards == 0

    def test_sharded_general_matches_serial(self):
        serial = self._run(self.CLUSTERED)
        sharded = self._run(self.CLUSTERED, workers=2)
        assert sharded.encoded_rules == serial.encoded_rules
        assert sharded.core_stats.variant == "general"
        assert sharded.core_stats.shards == 2

    def test_workers_default_representation_is_packed(self):
        sharded = self._run(self.STATEMENT, workers=2)
        assert sharded.core_stats.representation == "packed"
        explicit = self._run(
            self.STATEMENT, workers=2, representation="set"
        )
        assert explicit.core_stats.representation == "set"
        assert explicit.encoded_rules == sharded.encoded_rules

    def test_shards_describe_in_flow(self):
        sharded = self._run(self.STATEMENT, workers=2)
        assert "2 shards x 2 workers" in sharded.flow.render()


class TestPackedLatticeRemapWarning:
    """Satellite fix: an *explicitly requested* ``packed`` layout that
    the lattice (general) core remaps to ``bitset`` must say so — a
    tracer instant plus a one-time ``RuntimeWarning`` — instead of the
    old silent remap."""

    STATEMENT = TestSystemFacadeWiring.CLUSTERED

    def _run(self, **kwargs):
        system = MiningSystem(**kwargs)
        load_purchase_figure1(system.db)
        return system.execute(self.STATEMENT)

    def test_explicit_packed_warns_with_pinned_message(self):
        from repro.parallel import (
            PACKED_LATTICE_REMAP_MESSAGE,
            reset_packed_remap_warning,
        )

        reset_packed_remap_warning()
        with pytest.warns(RuntimeWarning) as captured:
            result = self._run(workers=2, representation="packed")
        assert result.rules
        messages = [str(w.message) for w in captured]
        assert PACKED_LATTICE_REMAP_MESSAGE in messages

    def test_warning_fires_once_per_process(self):
        import warnings as warnings_mod

        from repro.parallel import reset_packed_remap_warning

        reset_packed_remap_warning()
        with pytest.warns(RuntimeWarning):
            self._run(workers=2, representation="packed")
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            result = self._run(workers=2, representation="packed")
        assert result.rules

    def test_remap_surfaces_in_tracer(self):
        from repro.obs.spans import Tracer
        from repro.parallel import reset_packed_remap_warning

        reset_packed_remap_warning()
        system = MiningSystem(
            workers=2, representation="packed", tracer=Tracer(enabled=True)
        )
        load_purchase_figure1(system.db)
        with pytest.warns(RuntimeWarning):
            system.execute(self.STATEMENT)
        remaps = [
            instant
            for instant in system.tracer.instants
            if instant.name == "core.representation_remap"
        ]
        assert remaps
        assert remaps[0].args["requested"] == "packed"
        assert remaps[0].args["effective"] == "bitset"

    def test_auto_upgrade_does_not_warn(self):
        import warnings as warnings_mod

        from repro.parallel import reset_packed_remap_warning

        reset_packed_remap_warning()
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            # workers>1 auto-upgrades bitset->packed internally; the
            # lattice core remap of that *implicit* choice stays quiet
            result = self._run(workers=2)
        assert result.rules
