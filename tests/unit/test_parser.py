"""SQL parser tests: SELECT shapes, DDL, DML, expressions."""

import datetime

import pytest

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.parser import parse_script, parse_sql, split_statements
from repro.sqlengine.types import SqlType


class TestSelectCore:
    def test_minimal_select(self):
        stmt = parse_sql("SELECT a FROM t")
        assert isinstance(stmt, ast.Select)
        assert stmt.items[0].expr == ast.ColumnRef(None, "a")
        assert stmt.from_sources[0].name == "t"

    def test_distinct_flag(self):
        assert parse_sql("SELECT DISTINCT a FROM t").distinct
        assert not parse_sql("SELECT ALL a FROM t").distinct

    def test_star(self):
        stmt = parse_sql("SELECT * FROM t")
        assert isinstance(stmt.items[0].expr, ast.Star)

    def test_qualified_star(self):
        stmt = parse_sql("SELECT v.* FROM t v")
        assert stmt.items[0].expr == ast.Star("v")

    def test_aliases(self):
        stmt = parse_sql("SELECT a AS x, b y FROM t")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"

    def test_from_alias_with_and_without_as(self):
        stmt = parse_sql("SELECT 1 FROM t1 AS a, t2 b")
        assert stmt.from_sources[0].alias == "a"
        assert stmt.from_sources[1].alias == "b"

    def test_where(self):
        stmt = parse_sql("SELECT a FROM t WHERE a > 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == ">"

    def test_group_by_having(self):
        stmt = parse_sql(
            "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, ast.BinaryOp)

    def test_order_by_directions(self):
        stmt = parse_sql("SELECT a, b FROM t ORDER BY a DESC, b ASC, a")
        assert [o.ascending for o in stmt.order_by] == [False, True, True]

    def test_limit_offset(self):
        stmt = parse_sql("SELECT a FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit == ast.Literal(10)
        assert stmt.offset == ast.Literal(5)

    def test_select_into_variables(self):
        stmt = parse_sql("SELECT COUNT(*) INTO :totg FROM t")
        assert stmt.into_vars == ("totg",)

    def test_derived_table(self):
        stmt = parse_sql("SELECT x FROM (SELECT a AS x FROM t) sub")
        source = stmt.from_sources[0]
        assert isinstance(source, ast.SubquerySource)
        assert source.alias == "sub"

    def test_trailing_semicolon_accepted(self):
        parse_sql("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT 1 garbage extra tokens here FROM")

    def test_missing_expression_rejected(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT FROM t")

    def test_date_column_reference(self):
        # the Purchase table has a column literally named "date"
        stmt = parse_sql("SELECT date FROM t WHERE date > DATE '1995-01-01'")
        assert stmt.items[0].expr == ast.ColumnRef(None, "date")

    def test_qualified_date_column(self):
        stmt = parse_sql("SELECT s.date FROM t s")
        assert stmt.items[0].expr == ast.ColumnRef("s", "date")


class TestJoins:
    def test_explicit_inner_join(self):
        stmt = parse_sql("SELECT 1 FROM a JOIN b ON a.x = b.x")
        join = stmt.from_sources[0]
        assert isinstance(join, ast.Join)
        assert join.kind == "INNER"

    def test_left_join(self):
        stmt = parse_sql("SELECT 1 FROM a LEFT JOIN b ON a.x = b.x")
        assert stmt.from_sources[0].kind == "LEFT"

    def test_left_outer_join(self):
        stmt = parse_sql("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.x")
        assert stmt.from_sources[0].kind == "LEFT"

    def test_cross_join(self):
        stmt = parse_sql("SELECT 1 FROM a CROSS JOIN b")
        join = stmt.from_sources[0]
        assert join.kind == "CROSS"
        assert join.condition is None

    def test_join_chain(self):
        stmt = parse_sql(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        outer = stmt.from_sources[0]
        assert outer.kind == "LEFT"
        assert outer.left.kind == "INNER"

    def test_join_requires_on(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT 1 FROM a JOIN b")


class TestExpressions:
    def expr(self, text):
        return parse_sql(f"SELECT {text}").items[0].expr

    def test_precedence_mul_over_add(self):
        node = self.expr("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_precedence_and_over_or(self):
        node = self.expr("a OR b AND c")
        assert node.op == "OR"
        assert node.right.op == "AND"

    def test_not(self):
        node = self.expr("NOT a")
        assert node == ast.UnaryOp("NOT", ast.ColumnRef(None, "a"))

    def test_unary_minus_folds_literals(self):
        assert self.expr("-5") == ast.Literal(-5)

    def test_unary_minus_on_column(self):
        assert self.expr("-a") == ast.UnaryOp("-", ast.ColumnRef(None, "a"))

    def test_between(self):
        node = self.expr("a BETWEEN 1 AND 10")
        assert isinstance(node, ast.Between)
        assert not node.negated

    def test_not_between(self):
        assert self.expr("a NOT BETWEEN 1 AND 10").negated

    def test_in_list(self):
        node = self.expr("a IN (1, 2, 3)")
        assert isinstance(node, ast.InList)
        assert len(node.items) == 3

    def test_in_subquery(self):
        node = self.expr("a IN (SELECT b FROM t)")
        assert isinstance(node, ast.InSubquery)

    def test_exists(self):
        node = parse_sql("SELECT 1 WHERE EXISTS (SELECT 1 FROM t)").where
        assert isinstance(node, ast.Exists)

    def test_like(self):
        node = self.expr("a LIKE 'x%'")
        assert isinstance(node, ast.Like)

    def test_not_like(self):
        assert self.expr("a NOT LIKE 'x%'").negated

    def test_is_null_and_is_not_null(self):
        assert not self.expr("a IS NULL").negated
        assert self.expr("a IS NOT NULL").negated

    def test_case_searched(self):
        node = self.expr("CASE WHEN a > 1 THEN 'big' ELSE 'small' END")
        assert isinstance(node, ast.Case)
        assert node.operand is None

    def test_case_simple(self):
        node = self.expr("CASE a WHEN 1 THEN 'one' END")
        assert node.operand == ast.ColumnRef(None, "a")
        assert node.else_ is None

    def test_case_requires_when(self):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT CASE END")

    def test_cast(self):
        node = self.expr("CAST(a AS INTEGER)")
        assert node == ast.Cast(ast.ColumnRef(None, "a"), SqlType.INTEGER)

    def test_cast_with_length(self):
        node = self.expr("CAST(a AS VARCHAR(30))")
        assert node.target is SqlType.VARCHAR

    def test_scalar_subquery(self):
        node = self.expr("(SELECT MAX(x) FROM t)")
        assert isinstance(node, ast.ScalarSubquery)

    def test_count_star(self):
        node = self.expr("COUNT(*)")
        assert node.star

    def test_count_distinct(self):
        node = self.expr("COUNT(DISTINCT a)")
        assert node.distinct

    def test_sequence_nextval(self):
        node = self.expr("Gidsequence.NEXTVAL")
        assert node == ast.SequenceNextval("Gidsequence")

    def test_hostvar_expression(self):
        node = self.expr(":minsup * 2")
        assert node.left == ast.HostVar("minsup")

    def test_concat(self):
        assert self.expr("a || b").op == "||"

    def test_tuple_expression(self):
        node = self.expr("(1, 2)")
        assert isinstance(node, ast.TupleExpr)

    def test_boolean_literals(self):
        assert self.expr("TRUE") == ast.Literal(True)
        assert self.expr("FALSE") == ast.Literal(False)
        assert self.expr("NULL") == ast.Literal(None)

    def test_date_literal_expression(self):
        assert self.expr("DATE '1995-12-17'") == ast.Literal(
            datetime.date(1995, 12, 17)
        )


class TestSetOperations:
    def test_union(self):
        stmt = parse_sql("SELECT a FROM t UNION SELECT b FROM u")
        assert stmt.set_ops[0][0] == "UNION"
        assert stmt.set_ops[0][1] is False

    def test_union_all(self):
        stmt = parse_sql("SELECT a FROM t UNION ALL SELECT b FROM u")
        assert stmt.set_ops[0][1] is True

    def test_intersect_and_except(self):
        stmt = parse_sql(
            "SELECT a FROM t INTERSECT SELECT a FROM u EXCEPT SELECT a FROM v"
        )
        assert [op for op, _, _ in stmt.set_ops] == ["INTERSECT", "EXCEPT"]


class TestDdl:
    def test_create_table(self):
        stmt = parse_sql("CREATE TABLE t (a INTEGER, b VARCHAR, c DATE)")
        assert isinstance(stmt, ast.CreateTable)
        assert [c.type for c in stmt.columns] == [
            SqlType.INTEGER,
            SqlType.VARCHAR,
            SqlType.DATE,
        ]

    def test_create_table_ignores_constraints(self):
        stmt = parse_sql(
            "CREATE TABLE t (a INTEGER NOT NULL PRIMARY KEY, b TEXT)"
        )
        assert len(stmt.columns) == 2

    def test_create_table_as_select(self):
        stmt = parse_sql("CREATE TABLE t AS SELECT a FROM u")
        assert isinstance(stmt, ast.CreateTableAsSelect)

    def test_create_view(self):
        stmt = parse_sql("CREATE VIEW v AS (SELECT a FROM t)")
        assert isinstance(stmt, ast.CreateView)
        assert not stmt.or_replace

    def test_create_or_replace_view(self):
        stmt = parse_sql("CREATE OR REPLACE VIEW v AS SELECT a FROM t")
        assert stmt.or_replace

    def test_create_sequence(self):
        stmt = parse_sql("CREATE SEQUENCE Gidsequence")
        assert isinstance(stmt, ast.CreateSequence)
        assert stmt.start == 1

    def test_create_sequence_start_with(self):
        stmt = parse_sql("CREATE SEQUENCE s START WITH 100")
        assert stmt.start == 100

    def test_create_index(self):
        stmt = parse_sql("CREATE INDEX i ON t (a, b)")
        assert isinstance(stmt, ast.CreateIndex)
        assert stmt.columns == ("a", "b")

    def test_drop_objects(self):
        for kind in ("TABLE", "VIEW", "SEQUENCE", "INDEX"):
            stmt = parse_sql(f"DROP {kind} x")
            assert stmt.kind == kind
            assert not stmt.if_exists

    def test_drop_if_exists(self):
        stmt = parse_sql("DROP TABLE IF EXISTS x")
        assert stmt.if_exists


class TestDml:
    def test_insert_values(self):
        stmt = parse_sql("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(stmt, ast.InsertValues)
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_sql("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select_parenthesised(self):
        stmt = parse_sql("INSERT INTO t (SELECT a FROM u)")
        assert isinstance(stmt, ast.InsertSelect)

    def test_insert_select_bare(self):
        stmt = parse_sql("INSERT INTO t SELECT a FROM u")
        assert isinstance(stmt, ast.InsertSelect)

    def test_insert_select_missing_close_paren_tolerated(self):
        # Appendix A prints queries without some closing parentheses.
        stmt = parse_sql("INSERT INTO t (SELECT a FROM u")
        assert isinstance(stmt, ast.InsertSelect)

    def test_delete(self):
        stmt = parse_sql("DELETE FROM t WHERE a = 1")
        assert isinstance(stmt, ast.Delete)

    def test_delete_all(self):
        assert parse_sql("DELETE FROM t").where is None

    def test_update(self):
        stmt = parse_sql("UPDATE t SET a = 1, b = b + 1 WHERE c = 2")
        assert isinstance(stmt, ast.Update)
        assert len(stmt.assignments) == 2


class TestScripts:
    def test_split_statements(self):
        chunks = split_statements("SELECT 1; SELECT 2 ; ")
        assert len(chunks) == 2

    def test_split_respects_strings(self):
        chunks = split_statements("SELECT 'a;b'; SELECT 2")
        assert len(chunks) == 2
        assert "'a;b'" in chunks[0]

    def test_parse_script(self):
        stmts = parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1)")
        assert len(stmts) == 2
