"""Query execution tests: the SQL engine's SELECT behaviour."""

import datetime

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError, ExecutionError, SqlTypeError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE nums (a INTEGER, b INTEGER)")
    for a, b in [(1, 10), (2, 20), (3, 30), (4, 40)]:
        database.execute(f"INSERT INTO nums VALUES ({a}, {b})")
    return database


@pytest.fixture
def people():
    database = Database()
    database.execute(
        "CREATE TABLE people (name VARCHAR, city VARCHAR, age INTEGER)"
    )
    rows = [
        ("ann", "turin", 30),
        ("bob", "milan", 25),
        ("cal", "turin", 35),
        ("dee", "milan", 25),
        ("eve", "rome", None),
    ]
    for name, city, age in rows:
        database.execute(
            "INSERT INTO people VALUES (:n, :c, :a)",
            {"n": name, "c": city, "a": age},
        )
    return database


class TestProjectionAndFilter:
    def test_projection(self, db):
        assert db.query("SELECT a FROM nums") == [(1,), (2,), (3,), (4,)]

    def test_expression_projection(self, db):
        assert db.query("SELECT a + b FROM nums WHERE a = 1") == [(11,)]

    def test_where_filter(self, db):
        assert db.query("SELECT a FROM nums WHERE b >= 30") == [(3,), (4,)]

    def test_where_combines_and_or(self, db):
        rows = db.query("SELECT a FROM nums WHERE a = 1 OR a = 3 AND b = 30")
        assert rows == [(1,), (3,)]

    def test_between(self, db):
        assert db.query("SELECT a FROM nums WHERE b BETWEEN 20 AND 30") == [
            (2,),
            (3,),
        ]

    def test_in_list(self, db):
        assert db.query("SELECT a FROM nums WHERE a IN (2, 4)") == [(2,), (4,)]

    def test_like(self, people):
        rows = people.query("SELECT name FROM people WHERE city LIKE 't%'")
        assert rows == [("ann",), ("cal",)]

    def test_like_underscore(self, people):
        rows = people.query("SELECT name FROM people WHERE name LIKE '_ob'")
        assert rows == [("bob",)]

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1") == [(2,)]

    def test_select_without_from_false_where(self, db):
        assert db.query("SELECT 1 WHERE 1 = 2") == []

    def test_column_names(self, db):
        result = db.execute("SELECT a AS first, b FROM nums LIMIT 1")
        assert result.columns == ("first", "b")

    def test_star_expansion(self, db):
        result = db.execute("SELECT * FROM nums LIMIT 1")
        assert result.columns == ("a", "b")

    def test_unknown_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT missing FROM nums")

    def test_unknown_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.query("SELECT 1 FROM missing")


class TestNullSemantics:
    def test_null_comparison_filters_out(self, people):
        rows = people.query("SELECT name FROM people WHERE age > 0")
        assert ("eve",) not in rows

    def test_is_null(self, people):
        assert people.query("SELECT name FROM people WHERE age IS NULL") == [
            ("eve",)
        ]

    def test_is_not_null(self, people):
        rows = people.query("SELECT name FROM people WHERE age IS NOT NULL")
        assert len(rows) == 4

    def test_not_of_unknown_is_unknown(self, people):
        # NOT (NULL > 0) is UNKNOWN, so eve stays filtered out.
        rows = people.query("SELECT name FROM people WHERE NOT (age > 0)")
        assert rows == []

    def test_null_in_arithmetic_propagates(self, people):
        rows = people.query("SELECT age + 1 FROM people WHERE name = 'eve'")
        assert rows == [(None,)]

    def test_coalesce(self, people):
        rows = people.query(
            "SELECT COALESCE(age, -1) FROM people WHERE name = 'eve'"
        )
        assert rows == [(-1,)]

    def test_nullif(self, db):
        assert db.query("SELECT NULLIF(1, 1)") == [(None,)]
        assert db.query("SELECT NULLIF(2, 1)") == [(2,)]

    def test_null_never_equals_null(self, people):
        rows = people.query(
            "SELECT name FROM people WHERE age = age AND name = 'eve'"
        )
        assert rows == []


class TestAggregation:
    def test_count_star(self, people):
        assert people.execute("SELECT COUNT(*) FROM people").scalar() == 5

    def test_count_ignores_nulls(self, people):
        assert people.execute("SELECT COUNT(age) FROM people").scalar() == 4

    def test_count_distinct(self, people):
        assert (
            people.execute("SELECT COUNT(DISTINCT city) FROM people").scalar()
            == 3
        )

    def test_sum_avg_min_max(self, db):
        row = db.query("SELECT SUM(b), AVG(b), MIN(b), MAX(b) FROM nums")[0]
        assert row == (100, 25.0, 10, 40)

    def test_aggregates_on_empty_input(self, db):
        row = db.query("SELECT COUNT(*), SUM(a), MIN(a) FROM nums WHERE a > 99")
        assert row == [(0, None, None)]

    def test_group_by(self, people):
        rows = people.query(
            "SELECT city, COUNT(*) FROM people GROUP BY city ORDER BY city"
        )
        assert rows == [("milan", 2), ("rome", 1), ("turin", 2)]

    def test_group_by_having(self, people):
        rows = people.query(
            "SELECT city FROM people GROUP BY city HAVING COUNT(*) >= 2 "
            "ORDER BY city"
        )
        assert rows == [("milan",), ("turin",)]

    def test_having_with_aggregate_expression(self, db):
        rows = db.query(
            "SELECT a FROM nums GROUP BY a HAVING SUM(b) > 25 ORDER BY a"
        )
        assert rows == [(3,), (4,)]

    def test_group_by_expression_key(self, db):
        rows = db.query(
            "SELECT a % 2, COUNT(*) FROM nums GROUP BY a % 2 ORDER BY 1"
        )
        assert rows == [(0, 2), (1, 2)]

    def test_where_applies_before_grouping(self, people):
        rows = people.query(
            "SELECT city, COUNT(*) FROM people WHERE age >= 30 "
            "GROUP BY city"
        )
        assert rows == [("turin", 2)]

    def test_aggregate_outside_group_context_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a FROM nums WHERE COUNT(*) > 1")


class TestDistinctOrderLimit:
    def test_distinct(self, people):
        rows = people.query("SELECT DISTINCT city FROM people")
        assert sorted(rows) == [("milan",), ("rome",), ("turin",)]

    def test_distinct_multi_column(self, people):
        rows = people.query("SELECT DISTINCT city, age FROM people")
        assert len(rows) == 4  # milan/25 collapses

    def test_order_by_column(self, people):
        rows = people.query("SELECT name FROM people ORDER BY name DESC")
        assert rows[0] == ("eve",)

    def test_order_by_expression(self, db):
        rows = db.query("SELECT a FROM nums ORDER BY a * -1")
        assert [r[0] for r in rows] == [4, 3, 2, 1]

    def test_order_by_position(self, db):
        rows = db.query("SELECT b, a FROM nums ORDER BY 2 DESC")
        assert rows[0] == (40, 4)

    def test_order_by_alias(self, db):
        rows = db.query("SELECT a * -1 AS neg FROM nums ORDER BY neg")
        assert rows[0] == (-4,)

    def test_order_nulls_last_ascending(self, people):
        rows = people.query("SELECT age FROM people ORDER BY age")
        assert rows[-1] == (None,)

    def test_order_nulls_first_descending(self, people):
        rows = people.query("SELECT age FROM people ORDER BY age DESC")
        assert rows[0] == (None,)

    def test_order_by_aggregate(self, people):
        rows = people.query(
            "SELECT city FROM people GROUP BY city ORDER BY COUNT(*) DESC, city"
        )
        assert rows == [("milan",), ("turin",), ("rome",)]

    def test_limit(self, db):
        assert len(db.query("SELECT a FROM nums LIMIT 2")) == 2

    def test_limit_offset(self, db):
        assert db.query("SELECT a FROM nums ORDER BY a LIMIT 2 OFFSET 1") == [
            (2,),
            (3,),
        ]


class TestJoins:
    @pytest.fixture
    def joined(self):
        database = Database()
        database.execute("CREATE TABLE l (id INTEGER, v VARCHAR)")
        database.execute("CREATE TABLE r (id INTEGER, w VARCHAR)")
        for i, v in [(1, "a"), (2, "b"), (3, "c")]:
            database.execute(f"INSERT INTO l VALUES ({i}, '{v}')")
        for i, w in [(1, "x"), (1, "y"), (3, "z")]:
            database.execute(f"INSERT INTO r VALUES ({i}, '{w}')")
        return database

    def test_implicit_equijoin(self, joined):
        rows = joined.query(
            "SELECT l.v, r.w FROM l, r WHERE l.id = r.id ORDER BY l.v, r.w"
        )
        assert rows == [("a", "x"), ("a", "y"), ("c", "z")]

    def test_explicit_join(self, joined):
        rows = joined.query(
            "SELECT l.v, r.w FROM l JOIN r ON l.id = r.id ORDER BY r.w"
        )
        assert len(rows) == 3

    def test_left_join_pads_nulls(self, joined):
        rows = joined.query(
            "SELECT l.v, r.w FROM l LEFT JOIN r ON l.id = r.id "
            "ORDER BY l.v, r.w"
        )
        assert ("b", None) in rows
        assert len(rows) == 4

    def test_cross_join(self, joined):
        rows = joined.query("SELECT l.id, r.id FROM l CROSS JOIN r")
        assert len(rows) == 9

    def test_theta_join(self, joined):
        rows = joined.query(
            "SELECT l.id, r.id FROM l, r WHERE l.id < r.id ORDER BY l.id, r.id"
        )
        assert rows == [(1, 3), (2, 3)]

    def test_self_join_with_aliases(self, joined):
        rows = joined.query(
            "SELECT x.v, y.v FROM l x, l y WHERE x.id < y.id "
            "ORDER BY x.v, y.v"
        )
        assert len(rows) == 3

    def test_three_way_join(self, joined):
        rows = joined.query(
            "SELECT COUNT(*) FROM l a, l b, r c "
            "WHERE a.id = b.id AND b.id = c.id"
        )
        assert rows == [(3,)]

    def test_join_null_keys_never_match(self, joined):
        joined.execute("INSERT INTO l VALUES (NULL, 'n')")
        joined.execute("INSERT INTO r VALUES (NULL, 'n')")
        rows = joined.query("SELECT COUNT(*) FROM l, r WHERE l.id = r.id")
        assert rows == [(3,)]

    def test_ambiguous_column_rejected(self, joined):
        with pytest.raises(CatalogError):
            joined.query("SELECT id FROM l, r WHERE l.id = r.id")


class TestSubqueries:
    def test_scalar_subquery(self, db):
        rows = db.query("SELECT a FROM nums WHERE b = (SELECT MAX(b) FROM nums)")
        assert rows == [(4,)]

    def test_scalar_subquery_empty_is_null(self, db):
        rows = db.query("SELECT (SELECT a FROM nums WHERE a > 99)")
        assert rows == [(None,)]

    def test_scalar_subquery_multiple_rows_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT (SELECT a FROM nums)")

    def test_in_subquery(self, db):
        rows = db.query(
            "SELECT a FROM nums WHERE a IN (SELECT a FROM nums WHERE b > 25)"
        )
        assert rows == [(3,), (4,)]

    def test_not_in_subquery(self, db):
        rows = db.query(
            "SELECT a FROM nums WHERE a NOT IN "
            "(SELECT a FROM nums WHERE b > 25)"
        )
        assert rows == [(1,), (2,)]

    def test_exists_correlated(self, db):
        rows = db.query(
            "SELECT a FROM nums n WHERE EXISTS "
            "(SELECT 1 FROM nums m WHERE m.a = n.a + 1)"
        )
        assert rows == [(1,), (2,), (3,)]

    def test_correlated_scalar_subquery(self, db):
        rows = db.query(
            "SELECT (SELECT m.b FROM nums m WHERE m.a = n.a) FROM nums n "
            "WHERE n.a <= 2"
        )
        assert rows == [(10,), (20,)]

    def test_derived_table(self, db):
        rows = db.query(
            "SELECT big FROM (SELECT a AS big FROM nums WHERE a > 2) t "
            "ORDER BY big"
        )
        assert rows == [(3,), (4,)]


class TestSetOperations:
    def test_union_dedupes(self, db):
        rows = db.query("SELECT a FROM nums UNION SELECT a FROM nums")
        assert len(rows) == 4

    def test_union_all_keeps_duplicates(self, db):
        rows = db.query("SELECT a FROM nums UNION ALL SELECT a FROM nums")
        assert len(rows) == 8

    def test_intersect(self, db):
        rows = db.query(
            "SELECT a FROM nums WHERE a <= 2 "
            "INTERSECT SELECT a FROM nums WHERE a >= 2"
        )
        assert rows == [(2,)]

    def test_except(self, db):
        rows = db.query(
            "SELECT a FROM nums EXCEPT SELECT a FROM nums WHERE a > 2"
        )
        assert sorted(rows) == [(1,), (2,)]


class TestViewsSequencesVariables:
    def test_view_reflects_base_table(self, db):
        db.execute("CREATE VIEW big AS (SELECT a FROM nums WHERE a > 2)")
        assert len(db.query("SELECT * FROM big")) == 2
        db.execute("INSERT INTO nums VALUES (9, 90)")
        assert len(db.query("SELECT * FROM big")) == 3

    def test_view_with_alias(self, db):
        db.execute("CREATE VIEW v AS (SELECT a AS x FROM nums)")
        assert db.query("SELECT q.x FROM v q WHERE q.x = 1") == [(1,)]

    def test_sequence_nextval_increments(self, db):
        db.execute("CREATE SEQUENCE s")
        values = [db.execute("SELECT s.NEXTVAL").scalar() for _ in range(3)]
        assert values == [1, 2, 3]

    def test_sequence_in_insert_select(self, db):
        db.execute("CREATE SEQUENCE s")
        db.execute("INSERT INTO tagged (SELECT s.NEXTVAL AS id, a FROM nums)")
        assert db.query("SELECT id FROM tagged") == [(1,), (2,), (3,), (4,)]

    def test_select_into_binds_variable(self, db):
        db.execute("SELECT COUNT(*) INTO :n FROM nums")
        assert db.variables["n"] == 4
        assert db.query("SELECT a FROM nums WHERE a = :n") == [(4,)]

    def test_select_into_requires_single_row(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT a INTO :x FROM nums")

    def test_explicit_params_override_variables(self, db):
        db.variables["n"] = 1
        rows = db.query("SELECT a FROM nums WHERE a = :n", {"n": 2})
        assert rows == [(2,)]

    def test_unbound_variable_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT :nope")


class TestTypeErrors:
    def test_comparing_string_with_number_rejected(self, people):
        with pytest.raises(SqlTypeError):
            people.query("SELECT name FROM people WHERE name > 5")

    def test_arithmetic_on_strings_rejected(self, people):
        with pytest.raises(SqlTypeError):
            people.query("SELECT name - 1 FROM people")

    def test_division_by_zero(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT a / 0 FROM nums")

    def test_date_arithmetic(self, db):
        days = db.execute(
            "SELECT DATE '1995-12-19' - DATE '1995-12-17'"
        ).scalar()
        assert days == 2
