"""DDL and DML execution tests."""

import datetime

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError, ExecutionError, SqlTypeError
from repro.sqlengine.types import SqlType


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    return database


class TestCreateDrop:
    def test_create_table_records_schema(self, db):
        table = db.table("t")
        assert table.columns == ("a", "b")
        assert table.types == [SqlType.INTEGER, SqlType.VARCHAR]

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE t (x INTEGER)")

    def test_duplicate_column_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE u (x INTEGER, X VARCHAR)")

    def test_drop_table(self, db):
        db.execute("DROP TABLE t")
        assert not db.catalog.has_table("t")

    def test_drop_missing_table_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("DROP TABLE missing")

    def test_drop_if_exists_is_silent(self, db):
        db.execute("DROP TABLE IF EXISTS missing")

    def test_create_table_as_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("CREATE TABLE copy AS SELECT a, b FROM t")
        assert db.query("SELECT * FROM copy") == [(1, "x")]

    def test_view_name_cannot_clash_with_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW t AS SELECT 1")

    def test_or_replace_view(self, db):
        db.execute("CREATE VIEW v AS SELECT 1 AS x")
        db.execute("CREATE OR REPLACE VIEW v AS SELECT 2 AS x")
        assert db.execute("SELECT x FROM v").scalar() == 2

    def test_replace_requires_flag(self, db):
        db.execute("CREATE VIEW v AS SELECT 1 AS x")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW v AS SELECT 2 AS x")

    def test_case_insensitive_names(self, db):
        db.execute("INSERT INTO T VALUES (1, 'x')")
        assert db.query("SELECT A FROM t") == [(1,)]

    def test_drop_sequence(self, db):
        db.execute("CREATE SEQUENCE s")
        db.execute("DROP SEQUENCE s")
        with pytest.raises(CatalogError):
            db.execute("SELECT s.NEXTVAL")

    def test_create_index_validates_table(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX i ON missing (a)")
        db.execute("CREATE INDEX i ON t (a)")
        db.execute("DROP INDEX i")


class TestInsert:
    def test_insert_values(self, db):
        result = db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert result.rowcount == 2
        assert len(db.table("t")) == 2

    def test_insert_coerces_types(self, db):
        db.execute("INSERT INTO t VALUES (1.0, 'x')")
        assert db.query("SELECT a FROM t") == [(1,)]
        assert isinstance(db.query("SELECT a FROM t")[0][0], int)

    def test_insert_wrong_type_rejected(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("INSERT INTO t VALUES ('nope', 'x')")

    def test_insert_wrong_arity_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.execute("INSERT INTO t VALUES (1)")

    def test_insert_with_column_subset(self, db):
        db.execute("INSERT INTO t (b) VALUES ('only')")
        assert db.query("SELECT a, b FROM t") == [(None, "only")]

    def test_insert_with_reordered_columns(self, db):
        db.execute("INSERT INTO t (b, a) VALUES ('x', 7)")
        assert db.query("SELECT a, b FROM t") == [(7, "x")]

    def test_insert_select(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        db.execute("INSERT INTO t (SELECT a + 10, b FROM t)")
        assert len(db.table("t")) == 4

    def test_insert_select_autocreates_table(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        db.execute("INSERT INTO fresh (SELECT a AS id, b AS label FROM t)")
        table = db.table("fresh")
        assert table.columns == ("id", "label")

    def test_insert_date(self, db):
        db.execute("CREATE TABLE d (x DATE)")
        db.execute("INSERT INTO d VALUES (DATE '1995-12-17')")
        assert db.query("SELECT x FROM d") == [(datetime.date(1995, 12, 17),)]

    def test_insert_date_from_string_coerces(self, db):
        db.execute("CREATE TABLE d (x DATE)")
        db.execute("INSERT INTO d VALUES ('1995-12-17')")
        assert db.query("SELECT x FROM d")[0][0] == datetime.date(1995, 12, 17)


class TestDeleteUpdate:
    @pytest.fixture
    def filled(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        return db

    def test_delete_with_where(self, filled):
        result = filled.execute("DELETE FROM t WHERE a >= 2")
        assert result.rowcount == 2
        assert filled.query("SELECT a FROM t") == [(1,)]

    def test_delete_all(self, filled):
        assert filled.execute("DELETE FROM t").rowcount == 3
        assert len(filled.table("t")) == 0

    def test_update(self, filled):
        result = filled.execute("UPDATE t SET b = 'w' WHERE a = 2")
        assert result.rowcount == 1
        assert filled.query("SELECT b FROM t WHERE a = 2") == [("w",)]

    def test_update_expression_uses_old_values(self, filled):
        filled.execute("UPDATE t SET a = a * 10")
        assert filled.query("SELECT a FROM t ORDER BY a") == [
            (10,),
            (20,),
            (30,),
        ]

    def test_update_with_hostvar(self, filled):
        filled.execute("UPDATE t SET a = :v WHERE b = 'x'", {"v": 99})
        assert filled.query("SELECT a FROM t WHERE b = 'x'") == [(99,)]


class TestScriptsAndBulk:
    def test_execute_script(self, db):
        results = db.execute_script(
            "INSERT INTO t VALUES (1, 'a'); INSERT INTO t VALUES (2, 'b');"
            "SELECT COUNT(*) FROM t"
        )
        assert results[-1].scalar() == 2

    def test_create_table_from_rows(self, db):
        table = db.create_table_from_rows(
            "bulk", ["x", "y"], [(1, "a"), (2, "b")]
        )
        assert len(table) == 2
        assert db.query("SELECT x FROM bulk WHERE y = 'b'") == [(2,)]

    def test_create_table_from_rows_replace(self, db):
        db.create_table_from_rows("bulk", ["x"], [(1,)])
        db.create_table_from_rows("bulk", ["x"], [(2,)], replace=True)
        assert db.query("SELECT x FROM bulk") == [(2,)]

    def test_statement_counter(self, db):
        before = db.statements_executed
        db.execute("SELECT 1")
        db.execute("SELECT 2")
        assert db.statements_executed == before + 2


class TestResultApi:
    def test_scalar_requires_1x1(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        with pytest.raises(ExecutionError):
            db.execute("SELECT a FROM t").scalar()

    def test_first_and_bool(self, db):
        assert db.execute("SELECT a FROM t").first() is None
        assert not db.execute("SELECT a FROM t")
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.execute("SELECT a FROM t").first() == (1,)

    def test_column_accessor(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert db.execute("SELECT a, b FROM t").column("b") == ["x", "y"]

    def test_column_accessor_unknown(self, db):
        with pytest.raises(ExecutionError):
            db.execute("SELECT a FROM t").column("zz")

    def test_as_dicts(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        assert db.execute("SELECT a, b FROM t").as_dicts() == [
            {"a": 1, "b": "x"}
        ]

    def test_pretty_renders(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        text = db.execute("SELECT a, b FROM t").pretty()
        assert "| a" in text and "| 1" in text
