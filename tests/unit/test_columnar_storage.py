"""Unit tests for the columnar storage layer and the vectorized
executor's observable surface (PR 7).

Covered here: the adaptive :class:`ColumnVector` layouts and their
exact-promotion rules, the :class:`ColumnarTable` Table contract
(DML, indexes, out-of-band row mutation), storage selection
(``EngineOptions.storage``, per-table ``storage_hints``), the
spill-to-disk helpers, EXPLAIN ANALYZE's per-node batch/spill
counters, and the ``PACKED_MIN_SLOTS`` override hook.  The
end-to-end bit-identity net lives in
``tests/property/test_columnar_differential.py``.
"""

import datetime
from types import SimpleNamespace

import pytest

from repro.algorithms import bitset
from repro.sqlengine import (
    ColumnarTable,
    Database,
    EngineOptions,
    STORAGE_KINDS,
)
from repro.sqlengine.columnar import ColumnVector, make_table, validate_storage
from repro.sqlengine.spill import (
    estimate_bytes,
    external_sort,
    spill_aggregate,
    spill_join_pairs,
)
from repro.sqlengine.types import SqlType


class TestColumnVector:
    def test_int_layout_with_nulls(self):
        vector = ColumnVector()
        for value in (1, None, 3):
            vector.append(value)
        assert vector.kind == "int"
        assert vector.to_pylist() == [1, None, 3]
        assert vector.get(1) is None
        assert vector.has_nulls

    def test_string_dictionary_interns_repeats(self):
        vector = ColumnVector()
        for value in ("a", "b", "a", None, "a"):
            vector.append(value)
        assert vector.kind == "str"
        assert vector.values == ["a", "b"]  # two distinct codes only
        assert vector.to_pylist() == ["a", "b", "a", None, "a"]

    def test_leading_null_run_adopts_later_layout(self):
        vector = ColumnVector()
        for value in (None, None, "x"):
            vector.append(value)
        assert vector.kind == "str"
        assert vector.to_pylist() == [None, None, "x"]

    def test_promotion_keeps_values_exact(self):
        vector = ColumnVector()
        vector.append(7)
        vector.append(datetime.date(1995, 1, 1))  # int cannot hold it
        assert vector.kind == "obj"
        assert vector.to_pylist() == [7, datetime.date(1995, 1, 1)]

    def test_bool_and_overflow_go_to_obj(self):
        vector = ColumnVector()
        vector.append(True)
        assert vector.kind == "obj"
        big = ColumnVector()
        big.append(2**70)
        assert big.kind == "obj"
        assert big.to_pylist() == [2**70]


class TestColumnarTable:
    def _table(self):
        table = ColumnarTable(
            "T", ("a", "b"), [SqlType.INTEGER, SqlType.VARCHAR]
        )
        table.insert((1, "x"))
        table.insert((2, "y"))
        table.insert((None, "x"))
        return table

    def test_row_contract(self):
        table = self._table()
        assert table.storage == "columnar"
        assert len(table) == 3
        assert list(table) == [(1, "x"), (2, "y"), (None, "x")]
        assert table.get(table.rows[1], "b") == "y"

    def test_replace_and_truncate(self):
        table = self._table()
        table.replace_rows([(9, "z")])
        assert list(table) == [(9, "z")]
        table.truncate()
        assert len(table) == 0
        assert table.rows == []

    def test_secondary_index_maintained(self):
        table = self._table()
        index = table.create_index("ix_b", ("b",))
        assert list(index.lookup(("x",))) == [(1, "x"), (None, "x")]
        table.insert((4, "x"))
        assert len(index.lookup(("x",))) == 3

    def test_out_of_band_rows_append_is_absorbed(self):
        # dump restore and a few tests append to table.rows directly;
        # the columnar layout must notice and re-encode
        table = self._table()
        table.rows.append((5, "w"))
        assert len(table) == 4
        assert table.column_lists()[0] == [1, 2, None, 5]

    def test_insert_coerces_to_declared_types(self):
        table = ColumnarTable("T", ("a",), [SqlType.REAL])
        table.insert((1,))
        assert table.rows == [(1.0,)]

    def test_make_table_and_validate(self):
        assert isinstance(make_table("columnar", "t", ("a",)), ColumnarTable)
        assert make_table("row", "t", ("a",)).storage == "row"
        with pytest.raises(ValueError):
            validate_storage("parquet")
        assert STORAGE_KINDS == ("row", "columnar")


class TestStorageSelection:
    def test_engine_option_defaults_all_tables(self):
        database = Database(options=EngineOptions(storage="columnar"))
        database.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        assert database.catalog.storage_of("t") == "columnar"
        database.execute("INSERT INTO t VALUES (1, 'x')")
        database.execute("CREATE TABLE c AS SELECT a FROM t")
        assert database.catalog.storage_of("c") == "columnar"

    def test_storage_hints_override_per_table(self):
        database = Database()  # row default
        database.storage_hints["enc"] = "columnar"
        database.execute("CREATE TABLE enc (a INTEGER)")
        database.execute("CREATE TABLE plain (a INTEGER)")
        assert database.catalog.storage_of("enc") == "columnar"
        assert database.catalog.storage_of("plain") == "row"

    def test_row_and_columnar_query_identically(self):
        results = []
        for kind in STORAGE_KINDS:
            database = Database(options=EngineOptions(storage=kind))
            database.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
            for i in range(20):
                database.execute(
                    f"INSERT INTO t VALUES ({i}, '{'xy'[i % 2]}')"
                )
            results.append(
                database.query(
                    "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b ORDER BY b"
                )
            )
        assert results[0] == results[1]


class TestSpillHelpers:
    def test_estimate_scales_with_shape(self):
        assert estimate_bytes(2, 100) > estimate_bytes(1, 100)
        assert estimate_bytes(2, 200) > estimate_bytes(2, 100)

    def test_external_sort_matches_sorted(self):
        rows = [(i % 7, -i) for i in range(500)]
        keys = [(row[0],) for row in rows]
        order_by = [SimpleNamespace(ascending=True)]  # expr itself unused
        merged, spilled = external_sort(
            list(rows), keys, order_by, budget=512
        )
        assert spilled > 0
        assert merged == sorted(rows, key=lambda r: (r[0],))
        # stability: equal keys keep input order
        by_key = [r for r in merged if r[0] == 3]
        assert by_key == [r for r in rows if r[0] == 3]

    def test_spill_join_pairs_matches_nested_loop(self):
        left = [(i % 5,) for i in range(40)]
        right = [(i % 3,) for i in range(30)]
        expected = [
            (i, j)
            for i, lk in enumerate(left)
            for j, rk in enumerate(right)
            if lk == rk
        ]
        pairs, spilled = spill_join_pairs(left, right)
        assert pairs == expected
        assert spilled > 0

    def test_spill_join_skips_null_keys(self):
        pairs, _ = spill_join_pairs([(None,), (1,)], [(1,), (None,)])
        assert pairs == [(1, 0)]


class TestExplainAnalyzeCounters:
    def _database(self, memory_budget=None):
        database = Database(
            options=EngineOptions(
                storage="columnar", batch_size=16,
                memory_budget=memory_budget,
            )
        )
        database.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
        for i in range(200):
            database.execute(
                f"INSERT INTO t VALUES ({i}, 'v{i % 11}')"
            )
        return database

    def test_vectorized_nodes_report_batches(self):
        database = self._database()
        analysis = database.analyze(
            "SELECT b, COUNT(*) FROM t WHERE a > 10 GROUP BY b"
        )
        vectorized = [n for n in analysis.nodes if n.get("vectorized")]
        assert vectorized, analysis.text
        assert all(n["batches"] >= 1 for n in vectorized)
        assert "[vectorized batches=" in analysis.text

    def test_spill_bytes_surface_in_plan(self):
        database = self._database(memory_budget=1_000)
        analysis = database.analyze(
            "SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b"
        )
        assert any(
            n.get("spill_bytes", 0) > 0
            for n in analysis.nodes
            if n.get("vectorized")
        ), analysis.text

    def test_row_fallback_for_unsupported_plans(self):
        database = self._database()
        # correlated subquery: the vectorizer falls back, the row path
        # answers, and no vectorized annotation appears
        analysis = database.analyze(
            "SELECT a FROM t WHERE a = (SELECT MAX(a) FROM t)"
        )
        assert analysis.result.rows == [(199,)]
        assert "[vectorized" not in analysis.text


class TestSpillAggregateHelper:
    def test_group_counts_match(self):
        n = 50
        keys = [(i % 4,) for i in range(n)]
        child_cols = [[i % 4 for i in range(n)]]

        class Slot:
            name = "COUNT"
            star = True
            distinct = False

        repcols, slotcols, count, spilled = spill_aggregate(
            n, keys, child_cols, [None], [Slot()]
        )
        assert count == 4
        assert repcols[0] == [0, 1, 2, 3]
        assert slotcols[0] == [13, 13, 12, 12]
        assert spilled > 0


class TestPackedMinSlotsOverride:
    def test_setter_round_trips(self):
        before = bitset.PACKED_MIN_SLOTS
        try:
            previous = bitset.set_packed_min_slots(7)
            assert previous == before
            assert bitset.PACKED_MIN_SLOTS == 7
            with pytest.raises(ValueError):
                bitset.set_packed_min_slots(-1)
        finally:
            bitset.set_packed_min_slots(before)


class TestSpilledLeftOuterJoin:
    """Satellite fix: LEFT OUTER JOIN had no spill branch in the
    vectorized executor — above-budget builds now run partition-wise
    through ``spill_join_pairs`` with bit-identical emission (verified
    against both the in-memory path and sqlite3)."""

    QUERY = (
        "SELECT l.k, l.a, r.b FROM l LEFT OUTER JOIN r ON l.k = r.k"
    )
    QUERY_RESIDUAL = (
        "SELECT l.k, l.a, r.b FROM l "
        "LEFT OUTER JOIN r ON l.k = r.k AND r.b > 1"
    )

    def _load(self, memory_budget):
        database = Database(
            options=EngineOptions(
                storage="columnar", batch_size=16,
                memory_budget=memory_budget,
            )
        )
        database.execute("CREATE TABLE l (k INTEGER, a VARCHAR)")
        database.execute("CREATE TABLE r (k INTEGER, b INTEGER)")
        left, right = database.table("l"), database.table("r")
        for i in range(120):
            left.insert((i % 7 if i % 11 else None, f"a{i % 5}"))
        for i in range(90):
            right.insert((i % 9 if i % 13 else None, i % 4))
        return database

    def _sqlite(self):
        import sqlite3

        lite = sqlite3.connect(":memory:")
        lite.execute("CREATE TABLE l (k INTEGER, a TEXT)")
        lite.execute("CREATE TABLE r (k INTEGER, b INTEGER)")
        for i in range(120):
            lite.execute(
                "INSERT INTO l VALUES (?, ?)",
                (i % 7 if i % 11 else None, f"a{i % 5}"),
            )
        for i in range(90):
            lite.execute(
                "INSERT INTO r VALUES (?, ?)",
                (i % 9 if i % 13 else None, i % 4),
            )
        return lite

    @pytest.mark.parametrize("query", [QUERY, QUERY_RESIDUAL])
    def test_spilled_run_is_bit_identical(self, query):
        in_memory = list(self._load(None).query(query))
        spilled = list(self._load(500).query(query))
        assert spilled == in_memory  # same rows, same order

    @pytest.mark.parametrize("query", [QUERY, QUERY_RESIDUAL])
    def test_matches_sqlite(self, query):
        mine = sorted(self._load(500).query(query), key=repr)
        theirs = sorted(self._sqlite().execute(query).fetchall(), key=repr)
        assert mine == theirs

    def test_forced_spill_actually_spills(self):
        analysis = self._load(500).analyze(self.QUERY)
        assert any(
            node.get("spill_bytes", 0) > 0
            for node in analysis.nodes
            if node.get("vectorized")
        ), analysis.text
