"""Unit tests for the run-tracing layer added with the run history:

* trace context propagation (``repro.obs.context``), the child-process
  tracer and splicing its events under a parent span;
* per-span resource attribution (CPU, opt-in tracemalloc peaks);
* the persistent run-history journal (``repro.obs.runlog``): replay,
  corruption tolerance, duplicate ids, the capacity bound;
* the satellites: monotonic job durations, JobTable.restore, and
  trace-id correlation in the JSON log and the slow-query log.
"""

import io
import json
import threading

import pytest

from repro.jobs.model import DONE, QUEUED, RUNNING, Job
from repro.jobs.table import JobTable
from repro.obs import (
    ChildTracer,
    JsonLogger,
    RunLog,
    SlowQueryLog,
    TraceContext,
    Tracer,
    activated,
    current,
    ensure,
    new_trace_id,
    statement_fingerprint,
    trace_events,
)
from repro.obs import profile


class TestTraceContext:
    def test_no_ambient_context_by_default(self):
        assert current() is None

    def test_activated_installs_and_restores(self):
        context = TraceContext(trace_id="t1", job_id="job-9")
        with activated(context):
            assert current() is context
        assert current() is None

    def test_activated_stacks(self):
        outer = TraceContext(trace_id="outer")
        inner = TraceContext(trace_id="inner")
        with activated(outer):
            with activated(inner):
                assert current().trace_id == "inner"
            assert current().trace_id == "outer"

    def test_ensure_reuses_active_context(self):
        context = TraceContext(trace_id="t2")
        with activated(context):
            with ensure() as ctx:
                assert ctx is context

    def test_ensure_creates_fresh_context(self):
        with ensure() as ctx:
            assert ctx.trace_id
            assert current() is ctx
        assert current() is None

    def test_context_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = current()

        with activated(TraceContext(trace_id="main-only")):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_fields_skips_missing_ids(self):
        context = TraceContext(trace_id="t3", run_id=7)
        assert context.fields() == {"trace_id": "t3", "run_id": 7}

    def test_new_trace_ids_are_distinct(self):
        assert new_trace_id() != new_trace_id()


class TestChildTracerSplice:
    def test_child_events_nest_and_splice_under_parent(self):
        child = ChildTracer(trace_id="t-child")
        with child.span("core.shard.0.local", category="core.shard"):
            with child.span("sub", category="core.shard"):
                pass
        bundle = child.export()
        assert bundle["trace_id"] == "t-child"
        assert len(bundle["events"]) == 2

        tracer = Tracer()
        with tracer.span("core.shards.local") as parent:
            pass
        spliced = tracer.splice(bundle, parent=parent)
        assert len(spliced) == 2
        by_name = {s.name: s for s in spliced}
        outer = by_name["core.shard.0.local"]
        inner = by_name["sub"]
        # the child's root hangs under the parent span, the nested
        # child event under its own in-bundle parent
        assert outer.parent_id == parent.span_id
        assert inner.parent_id == outer.span_id
        assert outer.trace_id == "t-child"
        assert outer.pid == bundle["pid"]
        assert outer.cpu is not None

    def test_splice_none_bundle_is_noop(self):
        tracer = Tracer()
        assert tracer.splice(None) == []
        assert tracer.splice({"pid": 1, "wall_origin": 0.0, "events": []}) == []

    def test_child_tracer_empty_export_is_none(self):
        assert ChildTracer().export() is None

    def test_spliced_spans_keep_worker_pid_in_trace_export(self):
        child = ChildTracer(trace_id="t9")
        child.pid = 99999  # pretend another process
        with child.span("core.shard.1.recount", category="core.shard"):
            pass
        tracer = Tracer()
        with activated(TraceContext(trace_id="t9")):
            with tracer.span("core.shards.recount") as parent:
                pass
        tracer.splice(child.export(), parent=parent)
        events = trace_events(tracer, trace_id="t9")
        lanes = {e["pid"] for e in events if e.get("ph") == "X"}
        assert 99999 in lanes and tracer.pid in lanes
        metadata = [e for e in events if e.get("ph") == "M"]
        assert any(
            e["args"]["name"] == "repro shard worker 99999"
            for e in metadata
        )


class TestResourceAttribution:
    def test_spans_capture_cpu_seconds(self):
        tracer = Tracer()
        with tracer.span("busy"):
            sum(i * i for i in range(50_000))
        (span,) = tracer.spans
        assert span.cpu is not None and span.cpu >= 0.0

    def test_profile_mem_attributes_peak_bytes(self):
        was_tracing = profile.memory_tracking_active()
        tracer = Tracer(profile_mem=True)
        try:
            with tracer.span("alloc"):
                blob = bytearray(4 * 1024 * 1024)
                del blob
            (span,) = tracer.spans
            assert span.peak_bytes is not None
            assert span.peak_bytes >= 4 * 1024 * 1024
        finally:
            if not was_tracing:
                profile.stop_memory_tracking()

    def test_peak_bytes_none_without_profiling(self):
        tracer = Tracer()
        with tracer.span("quiet"):
            pass
        assert tracer.spans[0].peak_bytes is None


class TestRunLog:
    def test_record_and_get(self):
        log = RunLog()
        log.record(id="r1", kind="mine", status="ok", seconds=1.0)
        assert len(log) == 1
        assert log.get("r1")["status"] == "ok"
        assert log.get("missing") is None

    def test_list_filters_and_elides_trace(self):
        log = RunLog()
        log.record(id="a", kind="mine", status="ok", trace=[{"ph": "X"}])
        log.record(id="b", kind="sql", status="ok")
        assert [r["id"] for r in log.list()] == ["a", "b"]
        assert [r["id"] for r in log.list(kind="sql")] == ["b"]
        assert "trace" not in log.list()[0]
        assert log.trace("a") == [{"ph": "X"}]
        assert log.trace("b") is None

    def test_journal_survives_restart(self, tmp_path):
        path = str(tmp_path / "runs.ndjson")
        log = RunLog(path=path)
        log.record(id="r1", kind="mine", status="ok", trace=[{"ph": "X"}])
        log.record(id="r2", kind="refresh", status="error")

        reborn = RunLog(path=path)
        assert reborn.replayed == 2
        assert reborn.get("r1")["kind"] == "mine"
        assert reborn.trace("r1") == [{"ph": "X"}]

    def test_replay_skips_corrupt_lines(self, tmp_path):
        path = tmp_path / "runs.ndjson"
        path.write_text(
            json.dumps({"id": "good", "kind": "mine"})
            + "\nnot json at all\n"
            + json.dumps(["not", "a", "dict"])
            + "\n"
            + json.dumps({"kind": "no id"})
            + "\n",
            encoding="utf-8",
        )
        log = RunLog(path=str(path))
        assert log.replayed == 1
        assert log.corrupt_lines == 3
        assert log.get("good") is not None

    def test_duplicate_ids_get_suffixed(self):
        log = RunLog()
        first = log.record(id="dup", kind="mine")
        second = log.record(id="dup", kind="mine")
        assert first["id"] == "dup"
        assert second["id"] == "dup-2"
        assert len(log) == 2

    def test_capacity_bounds_index(self):
        log = RunLog(capacity=3)
        for n in range(5):
            log.record(id=f"r{n}", kind="sql")
        assert len(log) == 3
        assert log.get("r0") is None
        assert log.get("r4") is not None

    def test_statement_fingerprint_normalizes_whitespace_and_case(self):
        a = statement_fingerprint("MINE RULE  x AS\n SELECT 1")
        b = statement_fingerprint("mine rule x as select 1")
        c = statement_fingerprint("mine rule y as select 1")
        assert a == b != c


class TestJobSatellites:
    def test_runtime_uses_monotonic_clock(self, monkeypatch):
        import repro.jobs.model as model

        wall = iter([1000.0, 500.0])  # wall clock stepping backwards
        mono = iter([10.0, 12.5])
        monkeypatch.setattr(model.time, "time", lambda: next(wall))
        monkeypatch.setattr(model.time, "monotonic", lambda: next(mono))
        job = Job(id="job-1", statement="SELECT 1")
        job.transition(RUNNING)
        job.transition(DONE)
        # the wall-clock difference is -500s; the duration is not
        assert job.runtime() == pytest.approx(2.5)
        assert job.finished_at < job.started_at  # display keeps wall

    def test_runtime_falls_back_to_wall_clock_for_restored_jobs(self):
        job = Job(
            id="job-2",
            statement="SELECT 1",
            state=DONE,
            started_at=100.0,
            finished_at=103.0,
        )
        assert job.runtime() == pytest.approx(3.0)

    def test_to_dict_includes_trace_id(self):
        job = Job(id="job-3", statement="SELECT 1", trace_id="abc")
        assert job.to_dict()["trace_id"] == "abc"

    def test_table_restore_registers_terminal_job(self):
        table = JobTable()
        restored = Job(
            id="job-7", statement="SELECT 1", state=DONE, trace_id="t"
        )
        assert table.restore(restored) is True
        assert table.restore(restored) is False  # duplicate
        assert table.get("job-7").trace_id == "t"
        # new submissions never collide with restored history
        fresh = table.new_job("SELECT 2", "sql")
        assert fresh.id == "job-8"

    def test_table_restore_rejects_live_jobs(self):
        table = JobTable()
        with pytest.raises(ValueError):
            table.restore(Job(id="job-1", statement="x", state=QUEUED))


class TestLogCorrelation:
    def test_json_log_lines_carry_context_ids(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        with activated(TraceContext(trace_id="t1", job_id="job-4")):
            logger.log("statement", sql="SELECT 1")
        logger.log("statement", sql="SELECT 2")
        first, second = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert first["trace_id"] == "t1"
        assert first["job_id"] == "job-4"
        assert "trace_id" not in second

    def test_json_log_explicit_fields_win_over_ambient(self):
        stream = io.StringIO()
        logger = JsonLogger(stream=stream)
        with activated(TraceContext(trace_id="ambient")):
            logger.log("statement", trace_id="explicit")
        record = json.loads(stream.getvalue())
        assert record["trace_id"] == "explicit"

    def test_slowlog_entries_carry_context_ids(self):
        slowlog = SlowQueryLog(threshold=0.0)
        with activated(TraceContext(trace_id="t5", job_id="job-6", run_id=3)):
            slowlog.record("minerule.run", 0.2, detail="MINE RULE x")
        slowlog.record("sql.Select", 0.1)
        tagged, untagged = slowlog.as_dicts()
        assert tagged["trace_id"] == "t5"
        assert tagged["job_id"] == "job-6"
        assert tagged["run_id"] == 3
        assert "trace_id" not in untagged
