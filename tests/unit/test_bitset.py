"""Unit tests for the packed-bitset kernel, the eclat pool member and
the representation switch through the system facade (PR 2)."""

import pickle

import pytest

from repro.algorithms import get_algorithm
from repro.algorithms.apriori import Apriori
from repro.algorithms.bitset import (
    BitsetStats,
    GroupedUniverse,
    PackedBitset,
    SlotUniverse,
    item_bitmaps,
    iter_slots,
    packed_item_bitmaps,
    packed_kernels_enabled,
    validate_representation,
)
from repro.algorithms.eclat import Eclat
from repro.algorithms.selector import InputStatistics, select_algorithm
from repro.kernel.core.general import GeneralCoreOperator


def groups_of(*itemsets):
    return {gid: frozenset(items) for gid, items in enumerate(itemsets, 1)}


EXAMPLE = groups_of({1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3})


class TestSlotUniverse:
    def test_slots_assigned_in_first_appearance_order(self):
        universe = SlotUniverse(["c", "a", "b"])
        assert universe.slot("c") == 0
        assert universe.slot("a") == 1
        assert universe.slot("b") == 2
        assert universe.slot("c") == 0  # stable on re-intern
        assert len(universe) == 3

    def test_mask_and_members_roundtrip(self):
        universe = SlotUniverse()
        mask = universe.mask([10, 30, 20])
        assert mask == 0b111
        assert universe.members(mask) == [10, 30, 20]
        assert universe.members(universe.mask([20])) == [20]

    def test_contains(self):
        universe = SlotUniverse([1])
        assert 1 in universe
        assert 2 not in universe

    def test_iter_slots(self):
        assert list(iter_slots(0b101001)) == [0, 3, 5]
        assert list(iter_slots(0)) == []


class TestGroupedUniverse:
    def test_group_count_counts_distinct_keys(self):
        universe = GroupedUniverse()
        mask = universe.mask(
            [(1, "a"), (1, "b"), (2, "a"), (3, "x"), (3, "y")]
        )
        assert universe.group_count(mask) == 3
        # subset hitting two groups
        sub = (1 << universe.slot((1, "b"))) | (1 << universe.slot((3, "y")))
        assert universe.group_count(sub) == 2
        assert universe.group_count(0) == 0

    def test_non_contiguous_interning_rejected(self):
        universe = GroupedUniverse([(1, "a"), (2, "a")])
        with pytest.raises(ValueError, match="non-contiguously"):
            universe.slot((1, "b"))

    def test_group_count_calls_counter(self):
        universe = GroupedUniverse([(1, "a")])
        universe.group_count(1)
        universe.group_count(0)
        assert universe.group_count_calls == 2


class TestPackedBitset:
    def test_roundtrips_big_int_masks(self):
        for value in (0, 1, 0b1011, (1 << 63) | 1, (1 << 200) - 7):
            width = max(value.bit_length(), 1)
            packed = PackedBitset.from_int(value, width)
            assert packed.to_int() == value
            assert packed.bit_count() == value.bit_count()
            assert bool(packed) is bool(value)
            assert list(packed.iter_slots()) == list(iter_slots(value))

    def test_kernels_match_big_int_operators(self):
        a, b = 0b110101 | (1 << 150), 0b011100 | (1 << 150)
        pa = PackedBitset.from_int(a, 151)
        pb = PackedBitset.from_int(b, 151)
        assert (pa & pb).to_int() == a & b
        assert (pa | pb).to_int() == a | b
        assert pa.and_count(pb) == (a & b).bit_count()
        assert pa == PackedBitset.from_int(a, 151)
        assert pa != pb

    def test_set_slot_in_place(self):
        packed = PackedBitset.zeros(130)
        packed.set_slot(0)
        packed.set_slot(64)
        packed.set_slot(129)
        assert packed.to_int() == 1 | (1 << 64) | (1 << 129)

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="width mismatch"):
            PackedBitset.zeros(64) & PackedBitset.zeros(128)
        with pytest.raises(ValueError, match="exceeds"):
            PackedBitset.from_int(1 << 70, 64)
        with pytest.raises(ValueError, match="unsigned"):
            PackedBitset.from_int(-1, 8)

    def test_pickle_roundtrip(self):
        packed = PackedBitset.from_slots([0, 63, 64, 200], 256)
        clone = pickle.loads(pickle.dumps(packed))
        assert clone == packed
        assert clone.to_int() == packed.to_int()

    def test_pure_python_fallback_identical(self, monkeypatch):
        """Without numpy the per-word loop must yield the same bits."""
        from repro.algorithms import bitset as module

        a = PackedBitset.from_int(0b1101 | (1 << 100), 128)
        b = PackedBitset.from_int(0b0111 | (1 << 100), 128)
        with_numpy = ((a & b).to_int(), a.bit_count(), a.and_count(b))
        monkeypatch.setattr(module, "_np", None)
        monkeypatch.setattr(module, "_BITWISE_COUNT", None)
        without = ((a & b).to_int(), a.bit_count(), a.and_count(b))
        assert without == with_numpy
        assert not packed_kernels_enabled(1 << 20)

    def test_packed_item_bitmaps_match_big_int_inversion(self):
        groups = list(EXAMPLE.items())
        universe = SlotUniverse(gid for gid, _ in groups)
        big = item_bitmaps(groups, universe)
        packed = packed_item_bitmaps(groups, SlotUniverse(EXAMPLE))
        assert set(big) == set(packed)
        for item, mask in big.items():
            assert packed[item].to_int() == mask

    def test_adaptive_cutover_thresholds(self, monkeypatch):
        from repro.algorithms import bitset as module

        assert not packed_kernels_enabled(module.PACKED_MIN_SLOTS - 1)
        monkeypatch.setattr(module, "PACKED_MIN_SLOTS", 4)
        if module._BITWISE_COUNT is not None:
            assert module.packed_kernels_enabled(4)


class TestRepresentationValidation:
    def test_unknown_representation_rejected_everywhere(self):
        with pytest.raises(ValueError, match="representation"):
            validate_representation("roaring")
        with pytest.raises(ValueError):
            Apriori(representation="roaring")
        with pytest.raises(ValueError):
            GeneralCoreOperator(representation="roaring")
        from repro import MiningSystem

        with pytest.raises(ValueError):
            MiningSystem(representation="roaring")

    def test_stats_merge_and_clear(self):
        a = BitsetStats(universe_sizes={"gid": 5}, popcount_calls=2)
        b = BitsetStats(universe_sizes={"gid": 9}, intersections=3)
        a.merge(b)
        assert a.universe_sizes == {"gid": 9}
        assert a.popcount_calls == 2 and a.intersections == 3
        a.clear()
        assert a.universe_sizes == {} and a.popcount_calls == 0


class TestEclat:
    def test_matches_apriori(self):
        expected = Apriori().mine(EXAMPLE, 2)
        assert Eclat().mine(EXAMPLE, 2) == expected

    def test_tidset_mode_matches_diffset_mode(self):
        assert Eclat(diffsets=False).mine(EXAMPLE, 2) == Eclat(
            diffsets=True
        ).mine(EXAMPLE, 2)

    def test_registered_in_pool(self):
        assert isinstance(get_algorithm("eclat"), Eclat)

    def test_min_count_validated(self):
        with pytest.raises(ValueError):
            Eclat().mine(EXAMPLE, 0)

    def test_records_bitmap_stats(self):
        miner = Eclat()
        miner.mine(EXAMPLE, 2)
        assert miner.stats.universe_sizes["gid"] == len(EXAMPLE)
        assert miner.stats.popcount_calls > 0

    def test_deep_itemsets(self):
        # every group shares the same 5 items -> full power set frequent
        groups = {gid: frozenset(range(5)) for gid in range(1, 4)}
        counts = Eclat().mine(groups, 3)
        assert len(counts) == 2**5 - 1
        assert all(count == 3 for count in counts.values())

    def test_selector_routes_moderately_dense_inputs_to_eclat(self):
        stats = InputStatistics(
            groups=500, distinct_items=100, total_entries=4_000
        )  # average 8 items/group
        assert isinstance(select_algorithm(stats, min_count=5), Eclat)


class TestSystemRepresentationSwitch:
    STATEMENT = (
        "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
        "GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
    )
    CLUSTERED = (
        "MINE RULE C AS SELECT DISTINCT 1..n item AS BODY, "
        "1..n item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
        "GROUP BY customer CLUSTER BY date "
        "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.2"
    )

    def _run(self, statement, **kwargs):
        from repro import MiningSystem
        from repro.datagen import load_purchase_figure1

        system = MiningSystem(**kwargs)
        load_purchase_figure1(system.db)
        return system.execute(statement)

    def test_simple_core_identical_across_representations(self):
        bitset = self._run(self.STATEMENT)
        sets = self._run(self.STATEMENT, representation="set")
        assert bitset.rule_set() == sets.rule_set()
        assert bitset.core_stats.representation == "bitset"
        assert sets.core_stats.representation == "set"

    def test_general_core_identical_across_representations(self):
        bitset = self._run(self.CLUSTERED)
        sets = self._run(self.CLUSTERED, representation="set")
        assert bitset.encoded_rules == sets.encoded_rules
        assert bitset.core_stats.variant == "general"
        assert bitset.core_stats.lattice_sizes
        assert (
            bitset.core_stats.lattice_sizes
            == sets.core_stats.lattice_sizes
        )

    def test_core_stats_surfaced_in_trace_and_report(self):
        from repro.report import render_report
        from repro import MiningSystem
        from repro.datagen import load_purchase_figure1

        system = MiningSystem()
        load_purchase_figure1(system.db)
        result = system.execute(self.CLUSTERED)
        rendered = result.flow.render()
        assert "observability" in rendered
        assert "general core" in rendered
        report_text = render_report(system, result)
        assert "lattice sets:" in report_text
        assert "bitmaps:" in report_text

    def test_general_bitmap_stats_populated(self):
        result = self._run(self.CLUSTERED)
        stats = result.core_stats
        assert stats.universe_sizes.get("triple", 0) > 0
        assert stats.popcount_calls > 0
