"""Workload generator tests."""

import datetime

import pytest

from repro.datagen import (
    QuestParameters,
    figure1_rows,
    generate_quest,
    load_clickstream,
    load_purchase_figure1,
    load_purchase_synthetic,
    load_quest,
)
from repro.sqlengine import Database


class TestFigure1Generator:
    def test_eight_rows(self):
        assert len(figure1_rows()) == 8

    def test_values_match_paper(self):
        rows = figure1_rows()
        assert rows[0] == (
            1, "cust1", "ski_pants", datetime.date(1995, 12, 17), 140.0, 1,
        )
        assert rows[-1] == (
            4, "cust2", "jackets", datetime.date(1995, 12, 19), 300.0, 2,
        )

    def test_load_replaces_existing(self, db):
        load_purchase_figure1(db)
        load_purchase_figure1(db)
        assert len(db.table("Purchase")) == 8


class TestSyntheticPurchase:
    def test_row_shape(self, db):
        table = load_purchase_synthetic(db, customers=10, seed=1)
        assert table.columns == (
            "tr", "customer", "item", "date", "price", "qty",
        )
        assert len(table) > 10

    def test_deterministic_per_seed(self, db):
        a = load_purchase_synthetic(db, customers=5, seed=2,
                                    table_name="A").rows
        b = load_purchase_synthetic(db, customers=5, seed=2,
                                    table_name="B").rows
        assert a == b

    def test_different_seeds_differ(self, db):
        a = load_purchase_synthetic(db, customers=5, seed=2,
                                    table_name="A").rows
        b = load_purchase_synthetic(db, customers=5, seed=3,
                                    table_name="B").rows
        assert a != b

    def test_prices_are_stable_per_item(self, db):
        load_purchase_synthetic(db, customers=20, seed=4)
        rows = db.query("SELECT item, COUNT(DISTINCT price) FROM Purchase "
                        "GROUP BY item")
        assert all(count == 1 for _, count in rows)

    def test_customer_count_respected(self, db):
        load_purchase_synthetic(db, customers=7, seed=5)
        count = db.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT customer FROM Purchase)"
        ).scalar()
        assert count == 7

    def test_dates_within_range(self, db):
        start = datetime.date(1995, 6, 1)
        load_purchase_synthetic(db, customers=5, days=3, seed=6,
                                start_date=start)
        dates = {d for (d,) in db.query("SELECT DISTINCT date FROM Purchase")}
        assert all(start <= d < start + datetime.timedelta(days=3)
                   for d in dates)


class TestQuestGenerator:
    def test_transaction_count(self):
        baskets = generate_quest(QuestParameters(transactions=50, seed=1))
        assert len(baskets) == 50

    def test_deterministic(self):
        params = QuestParameters(transactions=30, seed=9)
        assert generate_quest(params) == generate_quest(params)

    def test_item_ids_within_range(self):
        params = QuestParameters(transactions=40, items=25, seed=2)
        baskets = generate_quest(params)
        assert all(
            0 <= item < 25 for basket in baskets.values() for item in basket
        )

    def test_no_empty_baskets(self):
        baskets = generate_quest(QuestParameters(transactions=60, seed=3))
        assert all(basket for basket in baskets.values())

    def test_average_size_tracks_parameter(self):
        params = QuestParameters(
            transactions=400, avg_transaction_size=8.0, seed=4
        )
        baskets = generate_quest(params)
        average = sum(len(b) for b in baskets.values()) / len(baskets)
        assert 4.0 < average < 14.0

    def test_name_label(self):
        assert (
            QuestParameters(
                transactions=1000, avg_transaction_size=10,
                avg_pattern_size=4,
            ).name()
            == "T10.I4.D1000"
        )

    def test_load_quest_table(self, db):
        load_quest(db, QuestParameters(transactions=20, seed=5))
        assert db.table("Baskets").columns == ("tid", "item")
        tids = db.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT tid FROM Baskets)"
        ).scalar()
        assert tids == 20


class TestClickstream:
    def test_schema(self, db):
        table = load_clickstream(db, users=5, seed=1)
        assert table.columns == (
            "session", "usr", "page", "section", "minute", "dwell",
        )

    def test_user_count(self, db):
        load_clickstream(db, users=6, seed=2)
        users = db.execute(
            "SELECT COUNT(*) FROM (SELECT DISTINCT usr FROM Clicks)"
        ).scalar()
        assert users == 6

    def test_sessions_start_at_home(self, db):
        load_clickstream(db, users=4, seed=3)
        firsts = db.query(
            "SELECT section FROM Clicks WHERE minute = 0"
        )
        assert all(section == "home" for (section,) in firsts)

    def test_minutes_increase_within_session(self, db):
        load_clickstream(db, users=3, seed=4)
        rows = db.query("SELECT session, minute FROM Clicks")
        by_session = {}
        for session, minute in rows:
            by_session.setdefault(session, []).append(minute)
        for minutes in by_session.values():
            assert minutes == sorted(minutes)

    def test_page_names_match_sections(self, db):
        load_clickstream(db, users=3, seed=5)
        for page, section in db.query(
            "SELECT DISTINCT page, section FROM Clicks"
        ):
            assert page.startswith(section + "_")


class TestTelecom:
    def test_schema(self, db):
        from repro.datagen import load_telecom

        table = load_telecom(db, subscribers=10, days=2, seed=1)
        assert table.columns == (
            "caller", "callee", "cdate", "hour", "duration", "cost",
            "calltype",
        )

    def test_deterministic(self, db):
        from repro.datagen import load_telecom

        a = load_telecom(db, subscribers=8, seed=2, table_name="A").rows
        b = load_telecom(db, subscribers=8, seed=2, table_name="B").rows
        assert a == b

    def test_premium_calls_target_services(self, db):
        from repro.datagen import load_telecom

        load_telecom(db, subscribers=20, days=5, seed=3,
                     premium_fraction=0.3)
        rows = db.query(
            "SELECT DISTINCT callee FROM Calls WHERE calltype = 'premium'"
        )
        assert rows
        assert all(callee.startswith("svc") for (callee,) in rows)

    def test_cost_consistent_with_duration_and_type(self, db):
        from repro.datagen import load_telecom
        from repro.datagen.telecom import _RATES

        load_telecom(db, subscribers=10, days=3, seed=4)
        for duration, cost, calltype in db.query(
            "SELECT duration, cost, calltype FROM Calls"
        ):
            assert cost == round(duration * _RATES[calltype], 2)

    def test_social_circles_overlap(self, db):
        from repro.datagen import load_telecom

        load_telecom(db, subscribers=30, days=7, seed=5)
        # some callee must be shared by several callers (the overlap
        # that makes circle rules minable)
        rows = db.query(
            "SELECT callee, COUNT(DISTINCT caller) AS n FROM Calls "
            "WHERE calltype <> 'premium' GROUP BY callee "
            "HAVING COUNT(DISTINCT caller) >= 3"
        )
        assert rows


class TestDriftAppends:
    def test_batches_and_schema(self):
        from repro.datagen import iter_drift_appends

        batches = list(iter_drift_appends(batches=3, seed=9))
        assert len(batches) == 3
        for batch in batches:
            for row in batch:
                assert len(row) == 6  # Purchase schema width
                tr, customer, item, date, price, qty = row
                assert isinstance(tr, int)
                assert isinstance(date, datetime.date)

    def test_transaction_ids_continue_from_start_tr(self):
        from repro.datagen import iter_drift_appends

        batches = list(
            iter_drift_appends(batches=2, start_tr=100, seed=9)
        )
        trs = [row[0] for batch in batches for row in batch]
        assert min(trs) == 101
        assert trs == sorted(trs)

    def test_deterministic(self):
        from repro.datagen import iter_drift_appends

        a = list(iter_drift_appends(batches=2, seed=11))
        b = list(iter_drift_appends(batches=2, seed=11))
        assert a == b

    def test_popularity_drifts_between_batches(self):
        from collections import Counter

        from repro.datagen import iter_drift_appends

        def top5(rows):
            counts = Counter(row[2] for row in rows)
            return {item for item, _ in counts.most_common(5)}

        first, last = list(
            iter_drift_appends(
                batches=4, transactions_per_batch=80, drift=0.25,
                seed=13,
            )
        )[:: 3]
        # the popular head moves: early and late batches disagree
        assert top5(first) != top5(last)

    def test_invalid_batches_rejected(self):
        from repro.datagen import iter_drift_appends

        with pytest.raises(ValueError):
            list(iter_drift_appends(batches=0))


class TestBurstAppends:
    def test_batches_and_schema(self):
        from repro.datagen import iter_burst_appends

        bursts = list(iter_burst_appends(bursts=3, seed=9))
        assert len(bursts) == 3
        for rows in bursts:
            for row in rows:
                assert len(row) == 7  # Calls schema width
                caller, callee, cdate, hour, duration, cost, ct = row
                assert caller.startswith("sub")
                assert isinstance(cdate, datetime.date)
                assert 0 <= hour <= 23

    def test_premium_heavy_traffic(self):
        from repro.datagen import iter_burst_appends

        rows = [
            row
            for rows in iter_burst_appends(
                bursts=3, premium_fraction=0.6, seed=5
            )
            for row in rows
        ]
        premium = [r for r in rows if r[6] == "premium"]
        assert len(premium) > len(rows) // 4
        assert all(r[1].startswith("svc") for r in premium)

    def test_one_day_per_burst(self):
        from repro.datagen import iter_burst_appends

        bursts = list(iter_burst_appends(bursts=3, seed=7))
        days = [
            {row[2] for row in rows} for rows in bursts
        ]
        assert all(len(d) == 1 for d in days)
        assert len(set().union(*days)) == 3

    def test_deterministic(self):
        from repro.datagen import iter_burst_appends

        a = list(iter_burst_appends(bursts=2, seed=3))
        b = list(iter_burst_appends(bursts=2, seed=3))
        assert a == b

    def test_invalid_bursts_rejected(self):
        from repro.datagen import iter_burst_appends

        with pytest.raises(ValueError):
            list(iter_burst_appends(bursts=0))
