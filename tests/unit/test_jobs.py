"""Unit tests for the jobs subsystem: state machine, table, pool,
service, and the transport-agnostic REST router."""

import json
import queue
import threading
import time

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL,
    TRANSITIONS,
    InvalidTransition,
    Job,
    JobQueueFull,
    JobService,
    JobTable,
    WorkerPool,
)
from repro.jobs.api import JobsApi
from repro.obs.metrics import MetricsRegistry

MINE = (
    "MINE RULE JobRules AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY customer "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
)


def make_service(**kwargs) -> JobService:
    database = Database()
    load_purchase_figure1(database)
    system = MiningSystem(database=database)
    return JobService(system, **kwargs)


# ---------------------------------------------------------------------------
# state machine
# ---------------------------------------------------------------------------


class TestStateMachine:
    def test_state_universe(self):
        assert STATES == {QUEUED, RUNNING, DONE, FAILED, CANCELLED}
        assert set(TRANSITIONS) == STATES

    def test_terminal_states_have_no_exits(self):
        assert TERMINAL == {DONE, FAILED, CANCELLED}
        for state in TERMINAL:
            assert not TRANSITIONS[state]

    def test_happy_path(self):
        job = Job(id="j", statement="SELECT 1")
        assert job.state == QUEUED
        job.transition(RUNNING)
        assert job.attempts == 1
        assert job.started_at is not None
        job.transition(DONE)
        assert job.terminal
        assert job.finished_at is not None
        assert job.runtime() is not None

    def test_requeue_resets_timestamps_and_counts_attempts(self):
        job = Job(id="j", statement="SELECT 1")
        job.transition(RUNNING)
        job.transition(QUEUED)
        assert job.started_at is None and job.finished_at is None
        job.transition(RUNNING)
        assert job.attempts == 2

    @pytest.mark.parametrize("terminal", sorted(TERMINAL))
    @pytest.mark.parametrize("target", sorted(STATES))
    def test_terminal_states_are_sticky(self, terminal, target):
        job = Job(id="j", statement="SELECT 1", state=terminal)
        with pytest.raises(InvalidTransition):
            job.transition(target)
        assert job.state == terminal

    def test_queued_cannot_jump_to_done(self):
        job = Job(id="j", statement="SELECT 1")
        with pytest.raises(InvalidTransition):
            job.transition(DONE)

    def test_unknown_state_rejected(self):
        job = Job(id="j", statement="SELECT 1")
        with pytest.raises(InvalidTransition):
            job.transition("exploded")

    def test_to_dict_hides_result_by_default(self):
        job = Job(id="j", statement="SELECT 1")
        job.result = {"rows": [[1]]}
        assert "result" not in job.to_dict()
        assert job.to_dict(with_result=True)["result"] == {"rows": [[1]]}


# ---------------------------------------------------------------------------
# job table
# ---------------------------------------------------------------------------


class TestJobTable:
    def test_ids_are_unique_and_ordered(self):
        table = JobTable()
        ids = [table.new_job("SELECT 1", "sql").id for _ in range(5)]
        assert len(set(ids)) == 5
        assert [j.id for j in table.list()] == ids

    def test_transition_records_error_and_result(self):
        table = JobTable()
        job = table.new_job("SELECT 1", "sql")
        table.transition(job.id, RUNNING)
        table.transition(job.id, DONE, result={"ok": True})
        assert table.get(job.id).result == {"ok": True}

    def test_try_start_skips_cancelled(self):
        table = JobTable()
        job = table.new_job("SELECT 1", "sql")
        table.request_cancel(job.id)
        assert table.get(job.id).state == CANCELLED
        assert table.try_start(job.id) is None

    def test_cancel_running_sets_flag_only(self):
        table = JobTable()
        job = table.new_job("SELECT 1", "sql")
        assert table.try_start(job.id) is not None
        table.request_cancel(job.id)
        record = table.get(job.id)
        assert record.state == RUNNING
        assert record.cancel_requested
        assert table.cancel_hook(job.id)()

    def test_cancel_terminal_is_noop(self):
        table = JobTable()
        job = table.new_job("SELECT 1", "sql")
        table.try_start(job.id)
        table.transition(job.id, DONE)
        assert table.request_cancel(job.id).state == DONE

    def test_capacity_evicts_only_terminal(self):
        table = JobTable(capacity=2)
        done = table.new_job("SELECT 1", "sql")
        table.try_start(done.id)
        table.transition(done.id, DONE)
        live = [table.new_job("SELECT 1", "sql") for _ in range(3)]
        assert table.get(done.id) is None  # evicted
        assert table.evicted == 1
        assert all(table.get(j.id) is not None for j in live)

    def test_counts(self):
        table = JobTable()
        a = table.new_job("SELECT 1", "sql")
        table.new_job("SELECT 2", "sql")
        table.try_start(a.id)
        assert table.counts() == {QUEUED: 1, RUNNING: 1}

    def test_unknown_job_raises(self):
        table = JobTable()
        with pytest.raises(KeyError):
            table.transition("job-404", RUNNING)


# ---------------------------------------------------------------------------
# worker pool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_executes_all_items(self):
        seen = []
        lock = threading.Lock()

        def handler(item):
            with lock:
                seen.append(item)

        pool = WorkerPool(handler, workers=4, queue_size=32).start()
        for i in range(20):
            pool.submit(i)
        pool.queue.join()
        pool.stop()
        assert sorted(seen) == list(range(20))

    def test_bounded_queue_rejects(self):
        pool = WorkerPool(lambda item: None, workers=1, queue_size=2)
        # not started: nothing drains the queue
        pool.submit(1)
        pool.submit(2)
        with pytest.raises(queue.Full):
            pool.submit(3)

    def test_handler_exception_does_not_kill_worker(self):
        results = []

        def handler(item):
            if item == "boom":
                raise RuntimeError("boom")
            results.append(item)

        pool = WorkerPool(handler, workers=1).start()
        pool.submit("boom")
        pool.submit("ok")
        pool.queue.join()
        pool.stop()
        assert results == ["ok"]

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(lambda item: None, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(lambda item: None, queue_size=0)


# ---------------------------------------------------------------------------
# job service
# ---------------------------------------------------------------------------


class TestJobService:
    def test_sql_job_end_to_end(self):
        service = make_service(workers=2)
        with service:
            job = service.submit("SELECT COUNT(*) AS n FROM Purchase")
            assert job.kind == "sql"
            done = service.wait(job.id)
        assert done.state == DONE
        assert done.result["rows"] == [[8]]
        assert done.result["columns"] == ["n"]

    def test_mine_job_end_to_end(self):
        service = make_service(workers=2)
        with service:
            job = service.submit(MINE)
            assert job.kind == "mine"
            done = service.wait(job.id, timeout=60)
        assert done.state == DONE
        assert done.result["rule_count"] > 0
        assert done.result["output_table"] == "JobRules"
        assert done.result["display"].startswith("BODY\tHEAD")

    def test_failed_sql_job_records_error(self):
        service = make_service(workers=1)
        with service:
            job = service.submit("SELECT * FROM NoSuchTable")
            done = service.wait(job.id)
        assert done.state == FAILED
        assert "NoSuchTable" in done.error

    def test_queue_full_raises_and_marks_failed(self):
        service = make_service(workers=1, queue_size=1)
        # pool deliberately not started: submissions pile up
        first = service.submit("SELECT 1")
        with pytest.raises(JobQueueFull) as excinfo:
            service.submit("SELECT 2")
        rejected = excinfo.value.job
        assert rejected.state == FAILED
        assert rejected.error == "job queue full"
        assert service.get(first.id).state == QUEUED

    def test_cancel_queued_job(self):
        service = make_service(workers=1, queue_size=8)
        # not started: the job can never begin
        job = service.submit("SELECT 1")
        cancelled = service.cancel(job.id)
        assert cancelled.state == CANCELLED
        # starting later must skip it
        with service:
            service.pool.queue.join()
        assert service.get(job.id).state == CANCELLED

    def test_empty_statement_rejected(self):
        service = make_service()
        with pytest.raises(ValueError):
            service.submit("   ;  ")

    def test_metrics_series_populated(self):
        registry = MetricsRegistry()
        service = make_service(workers=2, metrics=registry)
        with service:
            job = service.submit("SELECT COUNT(*) AS n FROM Purchase")
            service.wait(job.id)
        snapshot = registry.snapshot()
        assert "repro_jobs_queue_depth" in snapshot
        assert "repro_job_seconds" in snapshot
        assert "repro_jobs_total" in snapshot
        assert "repro_jobs_workers_busy" in snapshot
        totals = snapshot["repro_jobs_total"]["samples"]
        assert any(
            s["labels"] == {"status": DONE} and s["value"] == 1
            for s in totals
        )

    def test_stats_snapshot(self):
        service = make_service(workers=3)
        with service:
            job = service.submit("SELECT 1")
            service.wait(job.id)
            stats = service.stats()
        assert stats["workers"] == 3
        assert stats["counts"][DONE] == 1

    def test_refresh_job_end_to_end(self):
        service = make_service(workers=2)
        with service:
            mined = service.wait(service.submit(MINE).id, timeout=60)
            assert mined.state == DONE
            job = service.submit("REFRESH RULES JobRules")
            assert job.kind == "refresh"
            done = service.wait(job.id, timeout=60)
        assert done.state == DONE
        assert done.result["kind"] == "refresh"
        assert done.result["mode"] == "incremental"
        assert done.result["rules"] == mined.result["rules"]
        assert done.result["display"] == mined.result["display"]

    def test_refresh_job_without_prior_run_fails(self):
        service = make_service(workers=1)
        with service:
            done = service.wait(service.submit("REFRESH RULES Ghost").id)
        assert done.state == FAILED
        assert "Ghost" in done.error

    def test_gauges_settle_to_zero_under_hammer(self):
        """Regression for the gauge race: depth/busy were read from the
        pool *after* submit / inside workers, so concurrent publishes
        overwrote fresh values with stale ones and the gauges could end
        non-zero.  The pool's transition observer is now the only
        writer; after any amount of concurrent traffic both gauges must
        read exactly 0."""
        registry = MetricsRegistry()
        service = make_service(
            workers=4, queue_size=512, metrics=registry
        )
        errors = []

        def hammer(thread_index):
            try:
                for i in range(25):
                    job = service.submit(
                        f"SELECT {thread_index} + {i}"
                    )
                    if i % 5 == 0:
                        service.wait(job.id, timeout=30)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with service:
            threads = [
                threading.Thread(target=hammer, args=(t,))
                for t in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            service.pool.queue.join()
            assert not errors
            depth = registry.gauge("repro_jobs_queue_depth", "").value()
            busy = registry.gauge("repro_jobs_workers_busy", "").value()
        assert depth == 0
        assert busy == 0
        assert service.pool.depth == 0
        assert service.pool.busy == 0


# ---------------------------------------------------------------------------
# REST router
# ---------------------------------------------------------------------------


class TestJobsApi:
    def setup_method(self):
        self.service = make_service(workers=2)
        self.service.start()
        self.api = JobsApi(self.service)

    def teardown_method(self):
        self.service.stop()

    def post(self, body):
        if isinstance(body, dict):
            body = json.dumps(body).encode()
        elif isinstance(body, str):
            body = body.encode()
        return self.api.handle("POST", "/jobs", body)

    def test_not_our_path(self):
        assert self.api.handle("GET", "/metrics") is None
        assert self.api.handle("GET", "/healthz") is None

    def test_submit_json_and_poll(self):
        code, payload = self.post(
            {"statement": "SELECT COUNT(*) AS n FROM Purchase"}
        )
        assert code == 201
        job_id = payload["job"]["id"]
        self.service.wait(job_id)
        code, payload = self.api.handle("GET", f"/jobs/{job_id}")
        assert code == 200
        assert payload["job"]["state"] == DONE
        code, payload = self.api.handle("GET", f"/jobs/{job_id}/result")
        assert code == 200
        assert payload["job"]["result"]["rows"] == [[8]]

    def test_submit_raw_statement_body(self):
        code, payload = self.post("SELECT 1")
        assert code == 201
        assert payload["job"]["kind"] == "sql"

    def test_submit_validation(self):
        assert self.post(b"")[0] == 400
        assert self.post({"nope": 1})[0] == 400
        assert self.post({"statement": "SELECT 1", "retries": 0})[0] == 400
        assert self.api.handle("POST", "/jobs", b"{broken")[0] == 400

    def test_result_before_done_is_409(self):
        table_job = self.service.table.new_job("SELECT 1", "sql")
        code, payload = self.api.handle(
            "GET", f"/jobs/{table_job.id}/result"
        )
        assert code == 409
        assert payload["job"]["state"] == QUEUED

    def test_unknown_job_404(self):
        assert self.api.handle("GET", "/jobs/job-404")[0] == 404
        assert self.api.handle("GET", "/jobs/job-404/result")[0] == 404
        assert self.api.handle("DELETE", "/jobs/job-404")[0] == 404

    def test_list_and_filter(self):
        code, payload = self.post("SELECT 1")
        self.service.wait(payload["job"]["id"])
        code, payload = self.api.handle("GET", "/jobs")
        assert code == 200
        assert payload["jobs"]
        assert "queue_depth" in payload["stats"]
        code, payload = self.api.handle(
            "GET", "/jobs", None, {"state": DONE}
        )
        assert all(j["state"] == DONE for j in payload["jobs"])
        assert self.api.handle(
            "GET", "/jobs", None, {"state": "nope"}
        )[0] == 400

    def test_cancel_route(self):
        job = self.service.table.new_job("SELECT 1", "sql")
        code, payload = self.api.handle("DELETE", f"/jobs/{job.id}")
        assert code == 200
        assert payload["job"]["state"] == CANCELLED

    def test_method_not_allowed(self):
        assert self.api.handle("PUT", "/jobs")[0] == 405
        assert self.api.handle("POST", "/jobs/job-1")[0] == 405
        assert self.api.handle("DELETE", "/jobs/job-1/result")[0] == 405

    def test_queue_full_maps_to_503(self):
        service = make_service(workers=1, queue_size=1)
        api = JobsApi(service)  # pool not started: queue fills
        assert api.handle("POST", "/jobs", b"SELECT 1")[0] == 201
        code, payload = api.handle("POST", "/jobs", b"SELECT 2")
        assert code == 503
        assert payload["job"]["state"] == FAILED
