"""Unit tests for FUP-style incremental maintenance
(:mod:`repro.incremental`) and the REFRESH RULES verb."""

import datetime

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.incremental import (
    FINGERPRINT_SAMPLES,
    MiningState,
    RefreshComputation,
    RefreshError,
    SourceMutated,
    _apriori_candidates,
    encode_for_emission,
    fingerprint_stride,
    pairs_query,
    refresh_eligibility,
)
from repro.minerule import parse_mine_rule, parse_refresh
from repro.minerule.errors import MineRuleParseError

SIMPLE = (
    "MINE RULE SimpleAssociations AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY tr "
    "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
)

GENERAL = (
    "MINE RULE RichAssoc AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "WHERE BODY.price > 50 "
    "FROM Purchase GROUP BY tr "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.4"
)


@pytest.fixture
def system():
    database = Database()
    load_purchase_figure1(database)
    return MiningSystem(database=database)


def append_purchase(db, rows):
    table = db.catalog.get_table("Purchase")
    for row in rows:
        table.insert(list(row))


EXTRA = [
    (30, "c9", "ski_pants", datetime.date(1998, 1, 2), 120.0, 1),
    (30, "c9", "hiking_boots", datetime.date(1998, 1, 2), 180.0, 1),
    (31, "c10", "ski_pants", datetime.date(1998, 1, 3), 120.0, 1),
]


class TestParseRefresh:
    def test_basic(self):
        statement = parse_refresh("REFRESH RULES SimpleAssociations")
        assert statement.output_table == "SimpleAssociations"

    def test_semicolon_and_case(self):
        statement = parse_refresh("refresh rules MyRules ;")
        assert statement.output_table == "MyRules"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(MineRuleParseError):
            parse_refresh("REFRESH RULES A B")

    def test_missing_table_rejected(self):
        with pytest.raises(MineRuleParseError):
            parse_refresh("REFRESH RULES")


class TestEligibility:
    def _program(self, system, text):
        from repro.kernel.names import Workspace

        return system._translator.translate(text, Workspace("T1"))

    def test_simple_statement_is_eligible(self, system):
        assert refresh_eligibility(self._program(system, SIMPLE)) is None

    def test_general_core_is_not(self, system):
        reason = refresh_eligibility(self._program(system, GENERAL))
        assert "general core" in reason

    def test_group_having_is_not(self, system):
        text = SIMPLE.replace(
            "GROUP BY tr ", "GROUP BY tr HAVING COUNT(*) > 1 "
        )
        reason = refresh_eligibility(self._program(system, text))
        assert "HAVING" in reason


class TestPairsQuery:
    def test_shape(self):
        statement = parse_mine_rule(SIMPLE)
        assert pairs_query(statement) == (
            "SELECT DISTINCT item, tr FROM Purchase"
        )

    def test_source_condition_rendered(self):
        statement = parse_mine_rule(
            SIMPLE.replace(
                "FROM Purchase GROUP BY",
                "FROM Purchase WHERE qty > 1 GROUP BY",
            )
        )
        sql = pairs_query(statement)
        assert sql.startswith("SELECT DISTINCT item, tr FROM Purchase")
        assert "WHERE" in sql and "qty" in sql


class TestFingerprint:
    def test_stride_small_tables_hash_every_row(self):
        assert fingerprint_stride(10) == 1
        assert fingerprint_stride(FINGERPRINT_SAMPLES) == 1

    def test_stride_bounds_samples(self):
        n = 1_000_000
        stride = fingerprint_stride(n)
        assert n // stride <= FINGERPRINT_SAMPLES + 1


class TestAprioriCandidates:
    def test_prefix_join(self):
        level = [(1,), (2,), (5,)]
        survivors = {frozenset(t) for t in level}
        assert _apriori_candidates(level, survivors) == [
            (1, 2), (1, 5), (2, 5),
        ]

    def test_subset_prune(self):
        level = [(1, 2), (1, 3)]
        survivors = {frozenset(t) for t in level}
        # (1,2,3) needs {2,3} frequent — it is not, so no candidates
        assert _apriori_candidates(level, survivors) == []
        survivors.add(frozenset((2, 3)))
        assert _apriori_candidates(level, survivors) == [(1, 2, 3)]


class TestRefreshComputation:
    def _capture(self, system):
        statement = parse_mine_rule(SIMPLE)
        computation = RefreshComputation(system.db, statement, None)
        computation.delta()
        return statement, computation.recount()

    def test_capture_counts_match_bitmaps(self, system):
        _, state = self._capture(system)
        assert state.totg == 4  # four transactions in Figure 1
        for itemset, count in state.counts.items():
            bits = -1
            for index in itemset:
                bits &= state.masks[index]
            mask = (1 << state.totg) - 1
            assert (bits & mask).bit_count() == count

    def test_state_is_frequent_union_border(self, system):
        _, state = self._capture(system)
        frequent = state.frequent()
        assert frequent
        border = set(state.counts) - set(frequent)
        # every border itemset has all proper subsets frequent
        for itemset in border:
            for member in itemset:
                subset = itemset - {member}
                if subset:
                    assert subset in frequent

    def test_delta_update_matches_recapture(self, system):
        statement, state = self._capture(system)
        append_purchase(system.db, EXTRA)
        computation = RefreshComputation(system.db, statement, state)
        computation.delta()
        refreshed = computation.recount()
        scratch = RefreshComputation(system.db, statement, None)
        scratch.delta()
        recaptured = scratch.recount()
        assert refreshed.counts == recaptured.counts
        assert refreshed.item_order == recaptured.item_order
        assert refreshed.masks == recaptured.masks
        assert computation.stats.delta_rows == len(EXTRA)
        assert computation.stats.new_groups == 2

    def test_shrunk_source_raises(self, system):
        statement, state = self._capture(system)
        system.db.catalog.get_table("Purchase").rows.pop()
        computation = RefreshComputation(system.db, statement, state)
        with pytest.raises(SourceMutated):
            computation.delta()

    def test_in_place_update_raises(self, system):
        statement, state = self._capture(system)
        rows = system.db.catalog.get_table("Purchase").rows
        rows[0] = tuple(
            ["mink_coat" if v == "ski_pants" else v for v in rows[0]]
        )
        computation = RefreshComputation(system.db, statement, state)
        with pytest.raises(SourceMutated):
            computation.delta()

    def test_dropped_source_raises(self, system):
        statement, state = self._capture(system)
        system.db.catalog.drop_table("Purchase")
        computation = RefreshComputation(system.db, statement, state)
        with pytest.raises(SourceMutated):
            computation.delta()

    def test_encode_for_emission_bids_are_dense(self, system):
        _, state = self._capture(system)
        bset_rows, counts_by_bid = encode_for_emission(state)
        bids = [row[0] for row in bset_rows]
        assert bids == list(range(1, len(bids) + 1))
        frequent_singletons = {
            frozenset((row[0],)) for row in bset_rows
        }
        for itemset, count in counts_by_bid.items():
            assert count >= state.min_count
            for bid in itemset:
                assert frozenset((bid,)) in frequent_singletons


class TestSystemRefresh:
    def test_refresh_without_run_raises(self, system):
        with pytest.raises(RefreshError):
            system.refresh("SimpleAssociations")

    def test_refresh_is_bit_identical_to_scratch(self, system):
        system.run(SIMPLE)
        system.refresh("SimpleAssociations")  # captures state
        append_purchase(system.db, EXTRA)
        result = system.refresh("REFRESH RULES SimpleAssociations;")
        assert result.stats.mode == "incremental"
        assert result.stats.delta_rows == len(EXTRA)

        scratch = MiningSystem()
        load_purchase_figure1(scratch.db)
        append_purchase(scratch.db, EXTRA)
        scratch.run(SIMPLE)
        out = "SimpleAssociations"
        for suffix in ("", "_Bodies", "_Heads", "_Display"):
            mine = system.db.catalog.get_table(out + suffix)
            theirs = scratch.db.catalog.get_table(out + suffix)
            assert tuple(mine.columns) == tuple(theirs.columns)
            assert [tuple(r) for r in mine.rows] == [
                tuple(r) for r in theirs.rows
            ]

    def test_empty_delta_refresh_is_stable(self, system):
        system.run(SIMPLE)
        first = system.refresh("SimpleAssociations")
        assert first.stats.mode == "incremental"
        again = system.refresh("SimpleAssociations")
        assert again.stats.delta_rows == 0
        assert again.stats.delta_pairs == 0
        assert sorted(r.key() for r in first.encoded_rules) == sorted(
            r.key() for r in again.encoded_rules
        )

    def test_general_statement_forces_full(self, system):
        system.run(GENERAL)
        result = system.refresh("RichAssoc")
        assert result.stats.mode == "full"
        assert "general core" in result.stats.reason

    def test_mutated_source_forces_full(self, system):
        system.run(SIMPLE)
        system.refresh("SimpleAssociations")  # capture state
        table = system.db.catalog.get_table("Purchase")
        table.rows.pop()  # delete in place: not append-only
        result = system.refresh("SimpleAssociations")
        assert result.stats.mode == "full"
        assert "shrank" in result.stats.reason
        assert result.rules

    def test_refresh_stats_surface_in_tracer(self):
        from repro.obs.spans import Tracer

        database = Database()
        load_purchase_figure1(database)
        tracer = Tracer(enabled=True)
        system = MiningSystem(database=database, tracer=tracer)
        system.run(SIMPLE)
        append_purchase(system.db, EXTRA)
        system.refresh("SimpleAssociations")
        span_names = [s.name for s in tracer.spans]
        assert "minerule.refresh" in span_names
        assert "refresh.delta" in span_names
        assert "refresh.recount" in span_names
        assert "refresh.stats" in [i.name for i in tracer.instants]
