"""Unit tests for the deterministic fault-injection subsystem."""

import pytest

from repro import faults
from repro.faults import (
    DEFAULT_SITES,
    FaultError,
    FaultSchedule,
    FaultSpec,
    RetryPolicy,
)


class TestFaultSpec:
    def test_call_window(self):
        spec = FaultSpec("core.load", call=2, times=3)
        assert not spec.matches("core.load", 1)
        assert spec.matches("core.load", 2)
        assert spec.matches("core.load", 4)
        assert not spec.matches("core.load", 5)

    def test_glob_site(self):
        spec = FaultSpec("preprocessor.Q*")
        assert spec.matches("preprocessor.Q4", 1)
        assert spec.matches("preprocessor.Q2b", 1)
        assert not spec.matches("postprocessor.store", 1)

    def test_exact_site_does_not_prefix_match(self):
        spec = FaultSpec("preprocessor.Q3")
        assert not spec.matches("preprocessor.Q3a", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("x", kind="explosion")
        with pytest.raises(ValueError):
            FaultSpec("x", call=0)
        with pytest.raises(ValueError):
            FaultSpec("x", times=0)


class TestFaultSchedule:
    def test_error_fires_inside_window_only(self):
        schedule = FaultSchedule().arm("engine.execute", call=2)
        schedule.check("engine.execute")  # call 1: armed at 2
        with pytest.raises(FaultError) as excinfo:
            schedule.check("engine.execute")
        assert excinfo.value.site == "engine.execute"
        assert excinfo.value.call == 2
        schedule.check("engine.execute")  # call 3: window passed
        assert schedule.errors_injected == 1
        assert schedule.fired == [("engine.execute", 2, "error")]

    def test_counters_are_per_site(self):
        schedule = FaultSchedule().arm("b.site", call=1)
        schedule.check("a.site")
        with pytest.raises(FaultError):
            schedule.check("b.site")
        assert schedule.counts == {"a.site": 1, "b.site": 1}

    def test_latency_fault_sleeps_instead_of_raising(self):
        sleeps = []
        schedule = FaultSchedule(sleep=sleeps.append).arm(
            "core.load", kind="latency", latency=0.5
        )
        schedule.check("core.load")
        assert sleeps == [0.5]
        assert schedule.latencies_injected == 1
        assert schedule.errors_injected == 0

    def test_reset_clears_counters_not_specs(self):
        schedule = FaultSchedule().arm("x", call=1)
        with pytest.raises(FaultError):
            schedule.check("x")
        schedule.reset()
        assert schedule.counts == {}
        with pytest.raises(FaultError):
            schedule.check("x")

    def test_random_is_deterministic(self):
        a = FaultSchedule.random(42)
        b = FaultSchedule.random(42)
        c = FaultSchedule.random(43)
        assert [s.describe() for s in a.specs] == [
            s.describe() for s in b.specs
        ]
        assert a.describe() != c.describe() or a.specs != c.specs
        for spec in a.specs:
            assert spec.site in DEFAULT_SITES

    def test_parse_round_trip(self):
        text = "preprocessor.Q4:1,engine.execute:3*2,core.load:1@0.05"
        schedule = FaultSchedule.parse(text)
        assert [s.describe() for s in schedule.specs] == [
            "preprocessor.Q4:1",
            "engine.execute:3*2",
            "core.load:1@0.05",
        ]
        assert schedule.specs[2].kind == "latency"

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultSchedule.parse("justasite")


class TestModuleHooks:
    def test_check_is_noop_without_schedule(self):
        faults.uninstall()
        faults.check("engine.execute")  # no schedule: must not raise
        assert faults.active() is None

    def test_injected_context_installs_and_uninstalls(self):
        schedule = FaultSchedule().arm("x.y", call=1)
        with faults.injected(schedule):
            assert faults.active() is schedule
            with pytest.raises(FaultError):
                faults.check("x.y")
        assert faults.active() is None

    def test_injected_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.injected(FaultSchedule()):
                raise RuntimeError("boom")
        assert faults.active() is None

    def test_degrade_records_on_active_schedule(self):
        schedule = FaultSchedule()
        with faults.injected(schedule):
            faults.degrade("engine.compile: interpreter fallback")
        assert schedule.degradations == [
            "engine.compile: interpreter fallback"
        ]

    def test_dbapi_cursor_checks_its_site(self):
        from repro.sqlengine.dbapi import connect

        connection = connect()
        cursor = connection.cursor()
        with faults.injected(FaultSchedule().arm("dbapi.execute", call=2)):
            cursor.execute("CREATE TABLE T (a INTEGER)")
            with pytest.raises(FaultError):
                cursor.execute("INSERT INTO T VALUES (1)")
            # the fault fired before the engine ran anything
            cursor.execute("INSERT INTO T VALUES (1)")
            cursor.execute("SELECT COUNT(*) FROM T")
            assert cursor.fetchone()[0] == 1


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, backoff=2.0, max_delay=0.35)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)  # capped
        assert policy.delay(9) == pytest.approx(0.35)

    def test_single_never_retries(self):
        calls = []

        def fn():
            calls.append(1)
            raise FaultError("s", 1)

        with pytest.raises(FaultError):
            RetryPolicy.single().execute(fn)
        assert len(calls) == 1

    def test_retries_until_success(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultError("s", len(attempts))
            return "done"

        seen = []
        policy = RetryPolicy(max_attempts=5, base_delay=0.0)
        result = policy.execute(
            flaky,
            stage="core",
            on_retry=lambda stage, n, exc, d: seen.append((stage, n)),
        )
        assert result == "done"
        assert len(attempts) == 3
        assert seen == [("core", 1), ("core", 2)]

    def test_exhausted_attempts_propagate(self):
        def fn():
            raise FaultError("s", 1)

        with pytest.raises(FaultError):
            RetryPolicy(max_attempts=2, base_delay=0.0).execute(fn)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = []

        def fn():
            calls.append(1)
            raise ValueError("genuine bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5, base_delay=0.0).execute(fn)
        assert len(calls) == 1

    def test_timeout_budget_stops_retrying(self):
        clock = iter([0.0, 10.0]).__next__  # started, then way past

        def fn():
            raise FaultError("s", 1)

        policy = RetryPolicy(max_attempts=50, base_delay=0.01, timeout=1.0)
        with pytest.raises(FaultError):
            policy.execute(fn, clock=clock, sleep=lambda s: None)

    def test_backoff_sleeps_between_attempts(self):
        sleeps = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise FaultError("s", len(attempts))
            return True

        policy = RetryPolicy(max_attempts=4, base_delay=0.01, backoff=2.0,
                             max_delay=1.0)
        assert policy.execute(flaky, sleep=sleeps.append)
        assert sleeps == [pytest.approx(0.01), pytest.approx(0.02)]
