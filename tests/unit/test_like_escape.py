"""LIKE ... ESCAPE: SQL escape-clause semantics end to end."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import ExecutionError


@pytest.fixture
def db():
    return Database()


def like(db, value, pattern, escape=None, **params):
    value_sql = value if value.startswith(":") else f"'{value}'"
    sql = f"SELECT {value_sql} LIKE '{pattern}'"
    if escape is not None:
        sql += f" ESCAPE '{escape}'"
    return db.execute(sql, params or None).scalar()


class TestEscapeSemantics:
    def test_escaped_percent_is_literal(self, db):
        assert like(db, "a%b", r"a\%b", "\\") is True
        assert like(db, "axb", r"a\%b", "\\") is False
        # without the escape, % is still a wildcard
        assert like(db, "axb", "a%b") is True

    def test_escaped_underscore_is_literal(self, db):
        assert like(db, "a_b", r"a\_b", "\\") is True
        assert like(db, "axb", r"a\_b", "\\") is False

    def test_escaped_escape_char_is_literal(self, db):
        assert like(db, "a\\b", r"a\\b", "\\") is True
        assert like(db, "ab", r"a\\b", "\\") is False

    def test_unescaped_wildcards_still_work(self, db):
        assert like(db, "a%cde", r"a\%%", "\\") is True
        assert like(db, "b%cde", r"a\%%", "\\") is False

    def test_any_single_char_escape_allowed(self, db):
        assert like(db, "10% off", "10!% off", "!") is True
        assert like(db, "100 off", "10!% off", "!") is False

    def test_not_like_with_escape(self, db):
        result = db.execute(
            r"SELECT 'a%b' NOT LIKE 'a\%b' ESCAPE '\'"
        ).scalar()
        assert result is False

    def test_acceptance_example(self, db):
        # the ISSUE's acceptance criterion, verbatim
        result = db.execute(
            "SELECT CASE WHEN 'a%b' LIKE 'a\\%b' ESCAPE '\\' "
            "THEN 1 ELSE 0 END"
        ).scalar()
        assert result == 1


class TestEscapeErrors:
    def test_escape_must_be_single_char(self, db):
        with pytest.raises(ExecutionError):
            like(db, "ab", "ab", "!!")
        with pytest.raises(ExecutionError):
            like(db, "ab", "ab", "")

    def test_trailing_escape_rejected(self, db):
        with pytest.raises(ExecutionError):
            like(db, "ab", "ab!", "!")

    def test_escape_before_ordinary_char_rejected(self, db):
        # the escape must precede %, _ or itself
        with pytest.raises(ExecutionError):
            like(db, "ab", "!ab", "!")

    def test_null_escape_yields_null(self, db):
        result = db.execute(
            "SELECT 'ab' LIKE 'ab' ESCAPE NULL"
        ).scalar()
        assert result is None


class TestEscapeThroughTheStack:
    def test_dynamic_pattern_and_escape(self, db):
        db.execute("CREATE TABLE t (s VARCHAR, p VARCHAR, e VARCHAR)")
        db.execute("INSERT INTO t VALUES ('5% down', '5!% down', '!')")
        db.execute("INSERT INTO t VALUES ('55 down', '5!% down', '!')")
        rows = db.query("SELECT s FROM t WHERE s LIKE p ESCAPE e")
        assert rows == [("5% down",)]

    def test_regex_metachars_in_pattern_are_literal(self, db):
        assert like(db, "a.b", "a.b") is True
        assert like(db, "axb", "a.b") is False  # . is not a wildcard
        assert like(db, "a(b)*c", "a(b)*c") is True

    def test_render_round_trip(self, db):
        from repro.sqlengine.parser import parse_sql
        from repro.sqlengine.render import render_expr

        select = parse_sql("SELECT 'x' LIKE 'y' ESCAPE '!'")
        rendered = render_expr(select.items[0].expr)
        assert "ESCAPE" in rendered
        # the rendered text parses back to the same semantics
        assert db.execute(f"SELECT {rendered}").scalar() is False

    def test_like_in_where_with_escape_compiled_path(self, db):
        db.execute("CREATE TABLE files (name VARCHAR)")
        for name in ("a_1", "ab1", "a_2"):
            db.execute("INSERT INTO files VALUES (:n)", {"n": name})
        rows = db.query(
            r"SELECT name FROM files WHERE name LIKE 'a\__' ESCAPE '\' "
            "ORDER BY name"
        )
        assert rows == [("a_1",), ("a_2",)]
