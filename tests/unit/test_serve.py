"""Units for serving mode: service wiring, line protocol, CLI args."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.serve import MineRuleService


def test_service_wires_one_observability_bundle():
    service = MineRuleService(scenario="purchase")
    assert service.tracer.enabled
    assert service.tracer.metrics is service.metrics
    assert service.shell.system.metrics is service.metrics
    assert service.shell.db.metrics is service.metrics
    assert service.shell.system.slowlog is service.slowlog
    assert service.shell.system.health is service.health
    assert service.json_log is None  # default: no JSON logging


def test_line_protocol_accumulates_until_semicolon():
    service = MineRuleService(scenario="purchase")
    assert service.feed("SELECT item\n") is None
    assert service.shell.pending
    output = service.feed("FROM Purchase WHERE item = 'ski_pants';\n")
    assert output is not None and "ski_pants" in output


def test_meta_commands_work_in_serving_mode():
    service = MineRuleService(scenario="purchase")
    service.feed("SELECT 1;\n")
    metrics_text = service.feed(".metrics\n")
    assert "repro_sql_statement_seconds" in metrics_text
    slowlog_text = service.feed(".slowlog\n")
    assert "slow-query log" in slowlog_text


def test_stats_payload_is_json_ready():
    service = MineRuleService(scenario="purchase", slow_threshold=0.0)
    service.feed("SELECT COUNT(*) FROM Purchase;\n")
    stats = service.stats()
    json.dumps(stats)
    assert stats["health"]["status"] == "ok"
    assert stats["statements_executed"] == 1
    assert stats["slow_threshold_ms"] == 0.0
    assert stats["slow_queries_total"] >= 1


def test_errors_mark_health_without_killing_the_loop():
    service = MineRuleService(scenario="purchase")
    output = service.feed("SELECT nope FROM Missing;\n")
    assert "error" in output
    # plain SQL errors are shell-level, not run failures
    assert service.health.ok
    output = service.feed("SELECT item FROM Purchase WHERE item = 'col_shirts';\n")
    assert "col_shirts" in output


def test_external_registry_can_be_injected():
    registry = MetricsRegistry()
    service = MineRuleService(scenario="purchase", metrics=registry)
    service.feed("SELECT 1;\n")
    assert registry.get("repro_sql_statements_total") is not None


def test_monitor_binds_ephemeral_port():
    service = MineRuleService(port=0)
    with service:
        assert service.monitor.port > 0
        assert str(service.monitor.port) in service.monitor.url


def test_stdin_iterator_reads_fd_without_stream_lock(monkeypatch):
    """The serving loop must read stdin via the raw fd: a shard-pool
    fork taken by a job thread while this loop held the stream's
    buffer lock would deadlock the child closing its inherited stdin."""
    import io
    import os
    import sys

    from repro.serve import _iter_stdin_lines

    read_fd, write_fd = os.pipe()
    os.write(write_fd, "SELECT 1;\nSELECT 2;\nno newline".encode())
    os.close(write_fd)
    stream = io.TextIOWrapper(open(read_fd, "rb", closefd=True))
    monkeypatch.setattr(sys, "stdin", stream)
    try:
        lines = list(_iter_stdin_lines())
    finally:
        stream.close()
    assert lines == ["SELECT 1;\n", "SELECT 2;\n", "no newline"]


def test_stdin_iterator_falls_back_without_a_real_fd(monkeypatch):
    import io
    import sys

    from repro.serve import _iter_stdin_lines

    monkeypatch.setattr(sys, "stdin", io.StringIO("a;\nb;\n"))
    assert list(_iter_stdin_lines()) == ["a;\n", "b;\n"]
