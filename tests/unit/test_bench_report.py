"""The bench-report artifact writer must survive bad prior files."""

import importlib.util
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _bench_conftest():
    """Import benchmarks/conftest.py as a plain module (the benchmarks
    directory is not a package)."""
    spec = importlib.util.spec_from_file_location(
        "bench_conftest", REPO_ROOT / "benchmarks" / "conftest.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("bench_conftest", module)
    spec.loader.exec_module(module)
    return module


BENCH = _bench_conftest()


class TestLoadReport:
    def test_missing_file_is_empty(self, tmp_path):
        assert BENCH.load_report(tmp_path / "nope.json") == {}

    def test_corrupt_json_is_empty(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text("{ this is not json", encoding="utf-8")
        assert BENCH.load_report(path) == {}

    def test_truncated_json_is_empty(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text('{"fig1": {"speedup":', encoding="utf-8")
        assert BENCH.load_report(path) == {}

    def test_non_object_document_is_empty(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text('["a", "list"]', encoding="utf-8")
        assert BENCH.load_report(path) == {}

    def test_valid_document_round_trips(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text('{"fig1": {"speedup": 2.5}}', encoding="utf-8")
        assert BENCH.load_report(path) == {"fig1": {"speedup": 2.5}}

    def test_directory_path_is_empty(self, tmp_path):
        assert BENCH.load_report(tmp_path) == {}


class TestMergeReport:
    def test_merge_keeps_prior_entries(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text('{"old": 1, "both": 1}', encoding="utf-8")
        merged = BENCH.merge_report(path, {"both": 2, "new": 3})
        assert merged == {"old": 1, "both": 2, "new": 3}
        assert json.loads(path.read_text(encoding="utf-8")) == merged

    def test_merge_over_corrupt_prior_writes_fresh(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        path.write_text("not json at all", encoding="utf-8")
        merged = BENCH.merge_report(path, {"fig1": {"ms": 12}})
        assert merged == {"fig1": {"ms": 12}}
        assert json.loads(path.read_text(encoding="utf-8")) == merged

    def test_merge_creates_missing_file(self, tmp_path):
        path = tmp_path / "BENCH_X.json"
        BENCH.merge_report(path, {"a": 1})
        assert json.loads(path.read_text(encoding="utf-8")) == {"a": 1}
