"""Automatic algorithm selection tests."""

import pytest

from repro.algorithms import (
    AutoSelect,
    InputStatistics,
    get_algorithm,
    select_algorithm,
)
from repro.algorithms.apriori import Apriori
from repro.algorithms.dhp import DirectHashingPruning
from repro.algorithms.partition import Partition


def stats(groups, items, entries):
    return InputStatistics(
        groups=groups, distinct_items=items, total_entries=entries
    )


class TestStatistics:
    def test_of_group_map(self):
        s = InputStatistics.of({1: frozenset({1, 2}), 2: frozenset({2})})
        assert s.groups == 2
        assert s.distinct_items == 2
        assert s.total_entries == 3
        assert s.average_group_size == 1.5

    def test_empty(self):
        s = InputStatistics.of({})
        assert s.average_group_size == 0.0


class TestHeuristic:
    def test_tiny_input_uses_apriori(self):
        chosen = select_algorithm(stats(10, 100, 200), min_count=2)
        assert isinstance(chosen, Apriori)

    def test_dense_groups_use_dhp(self):
        chosen = select_algorithm(stats(1_000, 200, 20_000), min_count=10)
        assert isinstance(chosen, DirectHashingPruning)

    def test_many_sparse_groups_use_partition(self):
        chosen = select_algorithm(stats(10_000, 500, 30_000), min_count=50)
        assert isinstance(chosen, Partition)

    def test_default_is_apriori(self):
        chosen = select_algorithm(stats(500, 100, 2_000), min_count=5)
        assert isinstance(chosen, Apriori)


class TestAutoSelect:
    EXAMPLE = {
        gid: frozenset(items)
        for gid, items in enumerate(
            [{1, 2, 5}, {2, 4}, {2, 3}, {1, 2, 4}, {1, 3}], 1
        )
    }

    def test_registered_in_pool(self):
        miner = get_algorithm("auto")
        assert isinstance(miner, AutoSelect)

    def test_result_matches_apriori(self):
        auto = AutoSelect()
        assert auto.mine(self.EXAMPLE, 2) == Apriori().mine(self.EXAMPLE, 2)

    def test_records_choice(self):
        auto = AutoSelect()
        auto.mine(self.EXAMPLE, 2)
        assert auto.last_choice == "apriori"  # tiny input

    def test_dense_choice_recorded(self):
        dense = {
            gid: frozenset(range(20)) for gid in range(100)
        }
        auto = AutoSelect()
        auto.mine(dense, 100)
        assert auto.last_choice == "dhp"

    def test_usable_in_mining_system(self):
        from repro import MiningSystem
        from repro.datagen import load_purchase_figure1

        system = MiningSystem(algorithm="auto")
        load_purchase_figure1(system.db)
        result = system.execute(
            "MINE RULE A AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5"
        )
        assert result.rules
        assert system.algorithm.last_choice == "apriori"
