"""Mining-algorithm pool tests.

Every algorithm must return the exact set of frequent itemsets with
exact group counts; the pool is exercised on hand-checked inputs and on
the pairwise-equivalence contract.
"""

import itertools

import pytest

from repro.algorithms import (
    ALGORITHMS,
    Apriori,
    AprioriTid,
    DirectHashingPruning,
    Partition,
    ToivonenSampling,
    get_algorithm,
)
from repro.algorithms.base import FrequentItemsetMiner


def groups_of(*itemsets):
    return {gid: frozenset(items) for gid, items in enumerate(itemsets, 1)}


#: the classic 4-transaction example
EXAMPLE = groups_of(
    {1, 2, 5},
    {2, 4},
    {2, 3},
    {1, 2, 4},
    {1, 3},
    {2, 3},
    {1, 3},
    {1, 2, 3, 5},
    {1, 2, 3},
)


def brute_force(groups, min_count):
    """Reference implementation: enumerate all subsets."""
    items = sorted({i for s in groups.values() for i in s})
    counts = {}
    for size in range(1, len(items) + 1):
        found_any = False
        for combo in itertools.combinations(items, size):
            count = sum(
                1 for s in groups.values() if frozenset(combo) <= s
            )
            if count >= min_count:
                counts[frozenset(combo)] = count
                found_any = True
        if not found_any:
            break
    return counts


ALL_NAMES = sorted(ALGORITHMS)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestPoolContract:
    def test_matches_brute_force_on_example(self, name):
        miner = get_algorithm(name)
        assert miner.mine(EXAMPLE, 2) == brute_force(EXAMPLE, 2)

    def test_high_threshold(self, name):
        miner = get_algorithm(name)
        assert miner.mine(EXAMPLE, 7) == brute_force(EXAMPLE, 7)

    def test_threshold_one_returns_everything(self, name):
        groups = groups_of({1, 2}, {3})
        expected = brute_force(groups, 1)
        assert get_algorithm(name).mine(groups, 1) == expected

    def test_empty_input(self, name):
        assert get_algorithm(name).mine({}, 1) == {}

    def test_no_frequent_items(self, name):
        groups = groups_of({1}, {2}, {3})
        assert get_algorithm(name).mine(groups, 2) == {}

    def test_invalid_threshold_rejected(self, name):
        with pytest.raises(ValueError):
            get_algorithm(name).mine(EXAMPLE, 0)

    def test_counts_are_group_counts_not_occurrences(self, name):
        # the same item never counts twice within one group
        groups = groups_of({1, 2}, {1, 2}, {2})
        counts = get_algorithm(name).mine(groups, 1)
        assert counts[frozenset({1})] == 2
        assert counts[frozenset({2})] == 3
        assert counts[frozenset({1, 2})] == 2

    def test_deterministic(self, name):
        miner1, miner2 = get_algorithm(name), get_algorithm(name)
        assert miner1.mine(EXAMPLE, 2) == miner2.mine(EXAMPLE, 2)


class TestCandidateGeneration:
    def test_join_candidates_pairs(self):
        frequent = [(1,), (2,), (3,)]
        candidates = FrequentItemsetMiner.join_candidates(frequent)
        assert sorted(candidates) == [(1, 2), (1, 3), (2, 3)]

    def test_join_prunes_infrequent_subsets(self):
        # (1,2) missing, so (1,2,3) must not be generated
        frequent = [(1, 3), (2, 3)]
        assert FrequentItemsetMiner.join_candidates(frequent) == []

    def test_join_requires_shared_prefix(self):
        frequent = [(1, 2), (1, 3), (2, 3)]
        assert FrequentItemsetMiner.join_candidates(frequent) == [(1, 2, 3)]

    def test_item_gid_lists(self):
        lists = FrequentItemsetMiner.item_gid_lists(groups_of({1, 2}, {2}))
        assert lists == {1: {1}, 2: {1, 2}}


class TestRegistry:
    def test_all_expected_algorithms_registered(self):
        assert set(ALL_NAMES) == {
            "apriori",
            "aprioritid",
            "auto",
            "dhp",
            "eclat",
            "exhaustive",
            "partition",
            "sampling",
        }

    def test_get_unknown_raises_with_listing(self):
        with pytest.raises(KeyError) as excinfo:
            get_algorithm("fpgrowth")
        assert "apriori" in str(excinfo.value)

    def test_constructor_kwargs(self):
        assert get_algorithm("partition", partitions=2).partitions == 2
        assert get_algorithm("dhp", buckets=64).buckets == 64


class TestAlgorithmSpecifics:
    def test_dhp_tiny_bucket_table_still_exact(self):
        # with 2 buckets nearly everything collides: the filter passes
        # most candidates, but the result must stay exact.
        miner = DirectHashingPruning(buckets=2)
        assert miner.mine(EXAMPLE, 2) == brute_force(EXAMPLE, 2)

    def test_partition_single_partition_degenerates_to_apriori(self):
        miner = Partition(partitions=1)
        assert miner.mine(EXAMPLE, 2) == Apriori().mine(EXAMPLE, 2)

    def test_partition_more_partitions_than_groups(self):
        miner = Partition(partitions=100)
        assert miner.mine(EXAMPLE, 2) == brute_force(EXAMPLE, 2)

    def test_sampling_exact_across_seeds(self):
        expected = brute_force(EXAMPLE, 2)
        for seed in range(5):
            miner = ToivonenSampling(sample_fraction=0.4, seed=seed)
            assert miner.mine(EXAMPLE, 2) == expected

    def test_sampling_full_sample_never_fails(self):
        miner = ToivonenSampling(sample_fraction=1.0, lowering=1.0)
        assert miner.mine(EXAMPLE, 2) == brute_force(EXAMPLE, 2)
        assert not miner.last_run_failed

    def test_sampling_invalid_parameters(self):
        with pytest.raises(ValueError):
            ToivonenSampling(sample_fraction=0.0)
        with pytest.raises(ValueError):
            ToivonenSampling(lowering=1.5)

    def test_negative_border_contains_minimal_infrequent(self):
        frequent = {frozenset({1}), frozenset({2}), frozenset({3})}
        groups = groups_of({1, 2, 3})
        border = ToivonenSampling.negative_border(frequent, groups)
        assert frozenset({1, 2}) in border
        assert frozenset({1, 2, 3}) not in border  # not minimal

    def test_aprioritid_drops_empty_groups_gracefully(self):
        groups = {1: frozenset({1, 2}), 2: frozenset(), 3: frozenset({1})}
        counts = AprioriTid().mine(groups, 1)
        assert counts[frozenset({1})] == 2
