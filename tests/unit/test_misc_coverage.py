"""Coverage of smaller API corners: bag-semantics set operations,
pretty-printing, catalog services, sequence reset."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE l (x INTEGER)")
    database.execute("CREATE TABLE r (x INTEGER)")
    for v in (1, 1, 2, 3):
        database.execute(f"INSERT INTO l VALUES ({v})")
    for v in (1, 2, 2):
        database.execute(f"INSERT INTO r VALUES ({v})")
    return database


class TestBagSetOperations:
    def test_intersect_all_takes_min_multiplicity(self, db):
        rows = sorted(db.query(
            "SELECT x FROM l INTERSECT ALL SELECT x FROM r"
        ))
        assert rows == [(1,), (2,)]

    def test_except_all_subtracts_multiplicity(self, db):
        rows = sorted(db.query(
            "SELECT x FROM l EXCEPT ALL SELECT x FROM r"
        ))
        assert rows == [(1,), (3,)]

    def test_union_all_concatenates(self, db):
        rows = db.query("SELECT x FROM l UNION ALL SELECT x FROM r")
        assert len(rows) == 7

    def test_chained_set_ops(self, db):
        rows = db.query(
            "SELECT x FROM l UNION SELECT x FROM r "
            "EXCEPT SELECT x FROM r WHERE x = 2"
        )
        assert sorted(rows) == [(1,), (3,)]


class TestPrettyPrinting:
    def test_table_pretty_limit_shows_remainder(self, db):
        text = db.table("l").pretty(limit=2)
        assert "more rows" in text

    def test_table_pretty_nulls(self, db):
        db.execute("INSERT INTO l VALUES (NULL)")
        assert "NULL" in db.table("l").pretty()

    def test_result_pretty_empty(self, db):
        text = db.execute("SELECT x FROM l WHERE x > 99").pretty()
        assert "| x" in text

    def test_float_formatting(self, db):
        db.execute("CREATE TABLE f (v REAL)")
        db.execute("INSERT INTO f VALUES (0.5)")
        assert "| 0.5" in db.table("f").pretty()


class TestCatalogServices:
    def test_describe_returns_types(self, db):
        described = db.catalog.describe("l")
        assert described[0][0] == "x"

    def test_describe_missing_table(self, db):
        with pytest.raises(CatalogError):
            db.catalog.describe("missing")

    def test_tables_and_views_listing(self, db):
        db.execute("CREATE VIEW v AS SELECT x FROM l")
        assert {t.name for t in db.catalog.tables()} == {"l", "r"}
        assert [v.name for v in db.catalog.views()] == ["v"]

    def test_exists_covers_tables_and_views(self, db):
        db.execute("CREATE VIEW v AS SELECT x FROM l")
        assert db.catalog.exists("l")
        assert db.catalog.exists("V")
        assert not db.catalog.exists("w")

    def test_drop_view_if_exists(self, db):
        assert db.catalog.drop_view("nope", if_exists=True) is False
        with pytest.raises(CatalogError):
            db.catalog.drop_view("nope")


class TestSequenceApi:
    def test_reset(self, db):
        db.execute("CREATE SEQUENCE s")
        sequence = db.catalog.get_sequence("s")
        sequence.nextval()
        sequence.nextval()
        sequence.reset()
        assert sequence.nextval() == 1

    def test_duplicate_sequence_rejected(self, db):
        db.execute("CREATE SEQUENCE s")
        with pytest.raises(CatalogError):
            db.execute("CREATE SEQUENCE s")


class TestStatementDescribe:
    def test_describe_mentions_all_clauses(self):
        from repro.minerule import parse_mine_rule

        statement = parse_mine_rule(
            "MINE RULE Out AS SELECT DISTINCT 2..3 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT FROM t GROUP BY g, h "
            "CLUSTER BY c EXTRACTING RULES WITH SUPPORT: 0.25, "
            "CONFIDENCE: 0.75"
        )
        text = statement.describe()
        assert "body item [2..3]" in text
        assert "group by g,h" in text
        assert "cluster by c" in text
        assert "support>=0.25" in text
