"""SQL engine edge cases and failure-mode documentation tests."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import (
    CatalogError,
    ExecutionError,
    SqlParseError,
    SqlTypeError,
)


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    database.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')")
    return database


class TestNestedStructures:
    def test_view_on_view(self, db):
        db.execute("CREATE VIEW v1 AS (SELECT a FROM t WHERE a > 1)")
        db.execute("CREATE VIEW v2 AS (SELECT a FROM v1 WHERE a > 2)")
        assert db.query("SELECT a FROM v2") == [(3,)]

    def test_derived_table_of_derived_table(self, db):
        rows = db.query(
            "SELECT x FROM (SELECT y AS x FROM "
            "(SELECT a AS y FROM t) inner1) outer1 ORDER BY x"
        )
        assert rows == [(1,), (2,), (3,)]

    def test_subquery_three_levels_deep(self, db):
        value = db.execute(
            "SELECT (SELECT MAX(a) FROM t WHERE a < "
            "(SELECT MAX(a) FROM t WHERE a < (SELECT MAX(a) FROM t)))"
        ).scalar()
        assert value == 1

    def test_union_inside_derived_table(self, db):
        rows = db.query(
            "SELECT x FROM (SELECT a AS x FROM t UNION "
            "SELECT a + 10 AS x FROM t) u ORDER BY x"
        )
        assert len(rows) == 6

    def test_long_conjunction_chain(self, db):
        condition = " AND ".join(f"a <> {n}" for n in range(100, 160))
        assert len(db.query(f"SELECT a FROM t WHERE {condition}")) == 3

    def test_deeply_parenthesised_expression(self, db):
        expr = "(" * 40 + "a" + ")" * 40
        assert db.query(f"SELECT {expr} FROM t WHERE a = 1") == [(1,)]


class TestGroupingEdges:
    def test_group_by_on_empty_table(self, db):
        db.execute("DELETE FROM t")
        assert db.query("SELECT b, COUNT(*) FROM t GROUP BY b") == []

    def test_scalar_aggregate_on_empty_table(self, db):
        db.execute("DELETE FROM t")
        assert db.query("SELECT COUNT(*), MAX(a) FROM t") == [(0, None)]

    def test_having_without_group_by(self, db):
        assert db.query("SELECT COUNT(*) FROM t HAVING COUNT(*) > 5") == []
        assert db.query("SELECT COUNT(*) FROM t HAVING COUNT(*) > 2") == [
            (3,)
        ]

    def test_group_by_null_keys_form_one_group(self, db):
        db.execute("INSERT INTO t VALUES (NULL, 'n1'), (NULL, 'n2')")
        rows = db.query("SELECT a, COUNT(*) FROM t GROUP BY a")
        null_groups = [r for r in rows if r[0] is None]
        assert null_groups == [(None, 2)]

    def test_aggregate_of_aggregate_rejected(self, db):
        with pytest.raises(ExecutionError):
            db.query("SELECT MAX(COUNT(*)) FROM t GROUP BY b")


class TestNonAtomicityDocumented:
    """The engine is non-transactional; partial effects of failed
    statements are visible.  These tests pin that documented behaviour
    so a future change to it is deliberate."""

    def test_failed_insert_select_keeps_prior_rows(self, db):
        db.execute("CREATE TABLE target (n INTEGER)")
        db.execute("INSERT INTO target VALUES (0)")
        with pytest.raises(SqlTypeError):
            # the SELECT evaluates 'x'/'y'/'z' - 1 and fails on row 1;
            # nothing was inserted, previous content remains
            db.execute("INSERT INTO target (SELECT b - 1 FROM t)")
        assert db.query("SELECT n FROM target") == [(0,)]

    def test_failed_update_is_all_or_nothing_per_row_scan(self, db):
        with pytest.raises(SqlTypeError):
            db.execute("UPDATE t SET a = b")  # VARCHAR into INTEGER
        # no partial update visible: the scan failed on the first row
        assert db.query("SELECT a FROM t ORDER BY a") == [(1,), (2,), (3,)]


class TestIdentifierEdges:
    def test_keyword_like_column_names(self, db):
        db.execute('CREATE TABLE k ("date" DATE, "all" INTEGER)')
        db.execute("INSERT INTO k VALUES (DATE '2000-01-01', 1)")
        # reserved words need delimited identifiers ("date" is special-
        # cased because the paper's Purchase table uses it)
        assert db.query('SELECT "all" FROM k') == [(1,)]
        assert db.query("SELECT date FROM k WHERE date = DATE '2000-01-01'")

    def test_case_insensitive_aliases(self, db):
        rows = db.query("SELECT T1.a FROM t t1 WHERE t1.A = 1")
        assert rows == [(1,)]

    def test_reserved_word_as_table_rejected_cleanly(self, db):
        with pytest.raises(SqlParseError):
            db.execute("CREATE TABLE select (a INTEGER)")


class TestSequencesEdges:
    def test_nextval_in_where_is_allowed_but_consumes(self, db):
        db.execute("CREATE SEQUENCE s")
        db.query("SELECT a FROM t WHERE a = s.NEXTVAL")
        # one call per row scanned
        assert db.catalog.get_sequence("s").next_value == 4

    def test_sequence_reset(self, db):
        db.execute("CREATE SEQUENCE s START WITH 5")
        assert db.execute("SELECT s.NEXTVAL").scalar() == 5

    def test_two_sequences_independent(self, db):
        db.execute("CREATE SEQUENCE s1")
        db.execute("CREATE SEQUENCE s2")
        db.execute("SELECT s1.NEXTVAL")
        assert db.execute("SELECT s2.NEXTVAL").scalar() == 1


class TestLimitsAndOrdering:
    def test_limit_zero(self, db):
        assert db.query("SELECT a FROM t LIMIT 0") == []

    def test_offset_beyond_end(self, db):
        assert db.query("SELECT a FROM t ORDER BY a LIMIT 5 OFFSET 10") == []

    def test_order_by_is_stable(self, db):
        db.execute("DELETE FROM t")
        for i, b in enumerate(["p", "q", "r", "s"]):
            db.execute(f"INSERT INTO t VALUES (1, '{b}')")
        rows = db.query("SELECT b FROM t ORDER BY a")
        assert [b for (b,) in rows] == ["p", "q", "r", "s"]

    def test_distinct_preserves_first_occurrence_order(self, db):
        db.execute("INSERT INTO t VALUES (1, 'x')")
        rows = db.query("SELECT DISTINCT a FROM t")
        assert rows == [(1,), (2,), (3,)]
