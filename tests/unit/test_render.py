"""SQL rendering tests (translator support)."""

import datetime

import pytest

from repro.sqlengine import Database
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.render import render_expr, render_literal, render_select


def expr_of(text):
    return parse_sql(f"SELECT {text}").items[0].expr


def roundtrip(text):
    """Render then re-parse; must yield an equivalent expression."""
    original = expr_of(text)
    rendered = render_expr(original)
    return expr_of(rendered), original, rendered


class TestLiterals:
    def test_null(self):
        assert render_literal(None) == "NULL"

    def test_numbers(self):
        assert render_literal(5) == "5"
        assert render_literal(0.25) == "0.25"

    def test_string_escapes_quotes(self):
        assert render_literal("it's") == "'it''s'"

    def test_date(self):
        assert (
            render_literal(datetime.date(1995, 12, 17)) == "DATE '1995-12-17'"
        )

    def test_booleans(self):
        assert render_literal(True) == "TRUE"
        assert render_literal(False) == "FALSE"


class TestRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            "a + b * c",
            "(a + b) * c",
            "price >= 100 AND qty < 3",
            "a BETWEEN 1 AND 10",
            "a NOT BETWEEN 1 AND 10",
            "x IN (1, 2, 3)",
            "x NOT IN ('a', 'b')",
            "name LIKE 'c%'",
            "name IS NOT NULL",
            "NOT (a = 1 OR b = 2)",
            "CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END",
            "CAST(a AS INTEGER)",
            "COUNT(*)",
            "COUNT(DISTINCT item)",
            "SUM(price * qty)",
            ":minsup * :totg",
            "BODY.price >= 100 AND HEAD.price < 100",
            "s.NEXTVAL",
            "a || b",
            "-x + 3",
        ],
    )
    def test_roundtrip_structure(self, text):
        reparsed, original, rendered = roundtrip(text)
        # Second render must be a fixpoint: proves structural identity.
        assert render_expr(reparsed) == rendered

    def test_roundtrip_preserves_semantics(self):
        db = Database()
        db.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)")
        condition = "a + 1 = 3 OR b BETWEEN 25 AND 35"
        rendered = render_expr(expr_of(condition))
        assert db.query(f"SELECT a FROM t WHERE {condition}") == db.query(
            f"SELECT a FROM t WHERE {rendered}"
        )


class TestQualifierMapping:
    def test_remaps_qualifiers(self):
        expr = expr_of("BODY.price >= 100 AND HEAD.price < 100")
        rendered = render_expr(expr, {"BODY": "B", "HEAD": "H"})
        assert "B.price" in rendered
        assert "H.price" in rendered
        assert "BODY" not in rendered

    def test_mapping_is_case_insensitive(self):
        expr = expr_of("body.x = 1")
        assert "B.x" in render_expr(expr, {"BODY": "B"})

    def test_unqualified_gets_default(self):
        expr = expr_of("price > 5")
        assert "S.price" in render_expr(expr, {"": "S"})

    def test_unmapped_qualifier_kept(self):
        expr = expr_of("other.x = 1")
        assert "other.x" in render_expr(expr, {"BODY": "B"})


class TestSelectRendering:
    def test_renders_full_select(self):
        stmt = parse_sql(
            "SELECT DISTINCT a, COUNT(*) AS n FROM t, u WHERE t.x = u.x "
            "GROUP BY a HAVING COUNT(*) > 1 ORDER BY n DESC"
        )
        text = render_select(stmt)
        for fragment in (
            "SELECT DISTINCT",
            "COUNT(*) AS n",
            "FROM t, u",
            "GROUP BY a",
            "HAVING",
            "ORDER BY",
            "DESC",
        ):
            assert fragment in text
        # must re-parse
        parse_sql(text)

    def test_renders_subquery_source(self):
        stmt = parse_sql("SELECT x FROM (SELECT a AS x FROM t) s")
        text = render_select(stmt)
        assert "(SELECT a AS x FROM t) s" in text
        parse_sql(text)

    def test_renders_joins(self):
        stmt = parse_sql(
            "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y"
        )
        text = render_select(stmt)
        assert "JOIN" in text and "LEFT JOIN" in text
        parse_sql(text)
