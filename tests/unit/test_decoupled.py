"""Decoupled-architecture baseline tests."""

from pathlib import Path

import pytest

from repro.decoupled import (
    DecoupledWorkflow,
    FlatFileEncoder,
    FlatFileExtractor,
    StandaloneMiner,
)
from repro.decoupled.extractor import parse_flat_file
from repro.datagen import load_purchase_figure1


@pytest.fixture
def flat_file(purchase_db, tmp_path):
    path = tmp_path / "purchase.tsv"
    FlatFileExtractor(purchase_db).extract(
        "SELECT customer, item FROM Purchase", path
    )
    return path


class TestExtractor:
    def test_extract_writes_header_and_rows(self, flat_file):
        header, rows = parse_flat_file(flat_file)
        assert header == ["customer", "item"]
        assert len(rows) == 8

    def test_null_serialization(self, purchase_db, tmp_path):
        purchase_db.execute("CREATE TABLE n (a INTEGER, b VARCHAR)")
        purchase_db.execute("INSERT INTO n VALUES (NULL, 'x')")
        path = tmp_path / "n.tsv"
        FlatFileExtractor(purchase_db).extract("SELECT a, b FROM n", path)
        _, rows = parse_flat_file(path)
        assert rows == [["\\N", "x"]]

    def test_dates_serialized_iso(self, purchase_db, tmp_path):
        path = tmp_path / "d.tsv"
        FlatFileExtractor(purchase_db).extract(
            "SELECT date FROM Purchase WHERE tr = 1", path
        )
        _, rows = parse_flat_file(path)
        assert rows[0] == ["1995-12-17"]


class TestEncoder:
    def test_encode_builds_dictionaries(self, flat_file):
        dataset = FlatFileEncoder().encode(flat_file, "customer", "item")
        assert dataset.group_count == 2
        assert len(dataset.item_labels) == 5
        labels = set(dataset.item_labels.values())
        assert "jackets" in labels

    def test_groups_hold_item_ids(self, flat_file):
        dataset = FlatFileEncoder().encode(flat_file, "customer", "item")
        for items in dataset.groups.values():
            assert all(isinstance(i, int) for i in items)

    def test_missing_column_rejected(self, flat_file):
        with pytest.raises(ValueError):
            FlatFileEncoder().encode(flat_file, "customer", "sku")


class TestStandaloneMiner:
    def test_mines_rules(self, flat_file):
        dataset = FlatFileEncoder().encode(flat_file, "customer", "item")
        miner = StandaloneMiner()
        rules = miner.mine(dataset, min_support=0.5, min_confidence=0.5)
        keys = {(frozenset(r.body), frozenset(r.head)) for r in rules}
        assert (frozenset({"brown_boots"}), frozenset({"jackets"})) in keys

    def test_rules_live_in_the_tool(self, flat_file, purchase_db):
        dataset = FlatFileEncoder().encode(flat_file, "customer", "item")
        miner = StandaloneMiner()
        miner.mine(dataset, 0.5, 0.5)
        assert miner.rules  # in tool memory...
        assert not purchase_db.catalog.has_table("rules")  # ...not in the DB

    def test_export(self, flat_file, tmp_path):
        dataset = FlatFileEncoder().encode(flat_file, "customer", "item")
        miner = StandaloneMiner()
        miner.mine(dataset, 0.5, 0.5)
        out = tmp_path / "rules.tsv"
        count = miner.export(out)
        lines = out.read_text().strip().splitlines()
        assert len(lines) == count + 1  # header

    def test_empty_dataset(self):
        from repro.decoupled.encoder import EncodedDataset

        miner = StandaloneMiner()
        empty = EncodedDataset(groups={}, group_labels={}, item_labels={})
        assert miner.mine(empty, 0.5, 0.5) == []


class TestWorkflow:
    def test_end_to_end(self, purchase_db, tmp_path):
        workflow = DecoupledWorkflow(purchase_db)
        report = workflow.run(
            "SELECT customer, item FROM Purchase",
            "customer",
            "item",
            0.5,
            0.5,
            workdir=tmp_path,
        )
        assert report.extracted_rows == 8
        assert report.rules
        assert set(report.timings) == {"extract", "prepare", "mine", "export"}
        assert report.flat_file.exists()
        assert report.export_file.exists()
        assert report.total_seconds > 0

    def test_matches_tight_architecture(self, purchase_db, tmp_path):
        from repro import MiningSystem

        tight = MiningSystem(database=purchase_db).execute(
            "MINE RULE T AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5"
        )
        report = DecoupledWorkflow(purchase_db).run(
            "SELECT customer, item FROM Purchase",
            "customer",
            "item",
            0.5,
            0.5,
            workdir=tmp_path,
        )
        tight_set = {
            (r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in tight.rules
        }
        loose_set = {
            (r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in report.rules
        }
        assert tight_set == loose_set
