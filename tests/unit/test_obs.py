"""Unit tests for the observability layer (repro.obs)."""

import json

import pytest

from repro.obs import (
    NULL_SPAN,
    NULL_TRACER,
    Tracer,
    render_chrome_trace,
    render_obs_report,
    trace_events,
    write_chrome_trace,
)


class TestTracerSpans:
    def test_span_records_duration_and_order(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer", category="a"):
            clock.advance(1.0)
            with tracer.span("inner", category="b"):
                clock.advance(0.5)
        # spans complete in end order: inner first
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.seconds == pytest.approx(0.5)
        assert outer.seconds == pytest.approx(1.5)

    def test_nesting_depth(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
        depths = {s.name: s.depth for s in tracer.spans}
        assert depths == {"a": 0, "b": 1, "c": 2}

    def test_begin_end_without_context_manager(self):
        tracer = Tracer()
        span = tracer.begin("work", category="x", detail="d")
        assert tracer.end(span) >= 0.0
        assert tracer.spans[0].args == {"detail": "d"}
        # ending twice is harmless
        tracer.end(span)
        assert len(tracer.spans) == 1

    def test_annotate_merges_args(self):
        tracer = Tracer()
        with tracer.span("q", rows=1) as span:
            span.annotate(plan="Scan t")
        assert tracer.spans[0].args == {"rows": 1, "plan": "Scan t"}

    def test_span_closed_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError("boom")
        assert len(tracer.spans) == 1
        assert tracer.spans[0].end is not None

    def test_instants_counters_gauges(self):
        tracer = Tracer()
        tracer.instant("marker", category="flow")
        tracer.bump("retries")
        tracer.bump("retries", 2)
        tracer.bump("noop", 0)  # zero increments are dropped
        tracer.gauge("totg", 4)
        tracer.gauge("totg", 5)  # last value wins
        assert [i.name for i in tracer.instants] == ["marker"]
        assert tracer.counters == {"retries": 3}
        assert tracer.gauges == {"totg": 5}

    def test_category_seconds_and_slowest(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("q1", category="sql"):
            clock.advance(2.0)
        with tracer.span("q2", category="sql"):
            clock.advance(1.0)
        assert tracer.category_seconds()["sql"] == pytest.approx(3.0)
        assert tracer.slowest(1)[0].name == "q1"


class TestDisabledTracer:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ignored") as span:
            span.annotate(x=1)
        tracer.instant("ignored")
        tracer.bump("c")
        tracer.gauge("g", 1)
        assert tracer.spans == []
        assert tracer.instants == []
        assert tracer.counters == {}
        assert tracer.gauges == {}

    def test_disabled_hands_out_shared_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("a") is NULL_SPAN
        assert tracer.begin("b") is NULL_SPAN
        assert tracer.end(NULL_SPAN) == 0.0

    def test_analyze_requires_enabled(self):
        assert Tracer(enabled=False, analyze=True).analyze is False
        assert Tracer(enabled=True, analyze=True).analyze is True

    def test_null_tracer_is_disabled(self):
        assert NULL_TRACER.enabled is False


class TestChromeTraceExport:
    def test_events_are_valid_trace_format(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("phase", category="component"):
            clock.advance(0.010)
        tracer.instant("marker", category="flow")
        tracer.bump("retries", 2)
        events = trace_events(tracer)
        phases = {e["ph"] for e in events}
        assert {"M", "X", "i", "C"} <= phases
        complete = next(e for e in events if e["ph"] == "X")
        assert complete["name"] == "phase"
        assert complete["cat"] == "component"
        assert complete["dur"] == pytest.approx(10_000)  # microseconds
        for event in events:
            assert "pid" in event
            if event["ph"] in ("X", "i"):
                assert "tid" in event and "ts" in event

    def test_render_is_json_with_trace_events_key(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        data = json.loads(render_chrome_trace(tracer))
        assert isinstance(data["traceEvents"], list)
        assert data["displayTimeUnit"] == "ms"

    def test_write_chrome_trace_round_trips(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", category="c"):
            pass
        path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        names = [e["name"] for e in data["traceEvents"] if e["ph"] == "X"]
        assert names == ["s"]

    def test_unserializable_args_fall_back_to_repr(self):
        tracer = Tracer()
        with tracer.span("s", obj=object()):
            pass
        json.loads(render_chrome_trace(tracer))  # must not raise


class TestObsReport:
    def test_report_lists_categories_and_registry(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("q", category="sql"):
            clock.advance(0.5)
        tracer.bump("retries", 1)
        tracer.gauge("totg", 4)
        text = render_obs_report(tracer)
        assert "sql" in text
        assert "retries" in text
        assert "totg" in text

    def test_disabled_tracer_reports_so(self):
        assert "disabled" in render_obs_report(Tracer(enabled=False))


class FakeClock:
    """Deterministic perf-counter stand-in."""

    def __init__(self) -> None:
        self.now = 100.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now
