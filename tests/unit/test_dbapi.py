"""DB-API 2.0 adapter tests."""

import pytest

from repro.sqlengine import Database, dbapi


@pytest.fixture
def conn():
    connection = dbapi.connect()
    cur = connection.cursor()
    cur.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    cur.executemany(
        "INSERT INTO t VALUES (:a, :b)",
        [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}, {"a": 3, "b": "z"}],
    )
    return connection


class TestModuleGlobals:
    def test_required_globals(self):
        assert dbapi.apilevel == "2.0"
        assert dbapi.paramstyle == "named"
        assert dbapi.threadsafety in (0, 1, 2, 3)

    def test_exception_hierarchy(self):
        assert issubclass(dbapi.DatabaseError, dbapi.Error)
        assert issubclass(dbapi.NotSupportedError, dbapi.DatabaseError)
        assert issubclass(dbapi.InterfaceError, dbapi.Error)


class TestCursor:
    def test_fetchone(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert cur.fetchone() == (1,)
        assert cur.fetchone() == (2,)

    def test_fetchone_exhausted_returns_none(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t WHERE a = 1")
        cur.fetchone()
        assert cur.fetchone() is None

    def test_fetchall(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert cur.fetchall() == [(1,), (2,), (3,)]
        assert cur.fetchall() == []  # consumed

    def test_fetchmany(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert cur.fetchmany(2) == [(1,), (2,)]
        assert cur.fetchmany(2) == [(3,)]

    def test_fetchmany_default_arraysize(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t")
        assert len(cur.fetchmany()) == 1

    def test_iteration(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a FROM t ORDER BY a")
        assert [row for row in cur] == [(1,), (2,), (3,)]

    def test_description(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT a AS alpha, b FROM t")
        names = [entry[0] for entry in cur.description]
        assert names == ["alpha", "b"]

    def test_description_none_for_ddl(self, conn):
        cur = conn.cursor()
        cur.execute("CREATE TABLE u (x INTEGER)")
        assert cur.description is None

    def test_rowcount_for_dml(self, conn):
        cur = conn.cursor()
        cur.execute("UPDATE t SET b = 'w' WHERE a >= 2")
        assert cur.rowcount == 2

    def test_rowcount_before_execute(self, conn):
        assert conn.cursor().rowcount == -1

    def test_parameters(self, conn):
        cur = conn.cursor()
        cur.execute("SELECT b FROM t WHERE a = :k", {"k": 2})
        assert cur.fetchall() == [("y",)]

    def test_execute_returns_cursor_for_chaining(self, conn):
        rows = conn.cursor().execute("SELECT a FROM t").fetchall()
        assert len(rows) == 3

    def test_engine_errors_wrapped(self, conn):
        cur = conn.cursor()
        with pytest.raises(dbapi.DatabaseError):
            cur.execute("SELECT nope FROM t")

    def test_fetch_without_execute_rejected(self, conn):
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor().fetchall()

    def test_closed_cursor_rejected(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(dbapi.InterfaceError):
            cur.execute("SELECT 1")

    def test_cursor_context_manager(self, conn):
        with conn.cursor() as cur:
            cur.execute("SELECT 1")
        with pytest.raises(dbapi.InterfaceError):
            cur.fetchall()

    def test_setinputsizes_noop(self, conn):
        conn.cursor().setinputsizes([1, 2])


class TestConnection:
    def test_commit_noop(self, conn):
        conn.commit()

    def test_rollback_not_supported(self, conn):
        with pytest.raises(dbapi.NotSupportedError):
            conn.rollback()

    def test_close_prevents_use(self, conn):
        conn.close()
        with pytest.raises(dbapi.InterfaceError):
            conn.cursor()

    def test_context_manager_closes(self):
        with dbapi.connect() as connection:
            connection.cursor().execute("SELECT 1")
        with pytest.raises(dbapi.InterfaceError):
            connection.cursor()

    def test_shares_database_with_mining_system(self):
        from repro import MiningSystem
        from repro.datagen import load_purchase_figure1

        db = Database()
        load_purchase_figure1(db)
        system = MiningSystem(database=db)
        system.execute(
            "MINE RULE Shared AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Purchase "
            "GROUP BY customer "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.9"
        )
        conn = dbapi.connect(db)
        count = (
            conn.cursor()
            .execute("SELECT COUNT(*) FROM Shared")
            .fetchone()[0]
        )
        assert count > 0
