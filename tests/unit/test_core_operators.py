"""Core operator tests: the simple and general variants (Section 4.3)."""

import pytest

from repro.algorithms import Apriori
from repro.kernel.core import (
    EncodedRule,
    GeneralCoreOperator,
    GeneralInput,
    SimpleCoreOperator,
    SimpleInput,
)
from repro.kernel.core.inputs import WHOLE_GROUP_CLUSTER, min_group_count
from repro.kernel.program import CoreDirectives


def directives(
    simple=True,
    same_schema=True,
    clustered=False,
    cluster_condition=False,
    mining_condition=False,
    min_support=0.0,
    min_confidence=0.0,
    body_card=(1, None),
    head_card=(1, 1),
):
    return CoreDirectives(
        simple=simple,
        same_schema=same_schema,
        clustered=clustered,
        cluster_condition=cluster_condition,
        mining_condition=mining_condition,
        coded_source="cs",
        cluster_couples="cc" if cluster_condition else None,
        input_rules="ir" if mining_condition else None,
        min_support=min_support,
        min_confidence=min_confidence,
        body_card=body_card,
        head_card=head_card,
    )


def simple_input(groups, min_count=1):
    return SimpleInput(
        totg=len(groups),
        min_count=min_count,
        groups={g: frozenset(s) for g, s in groups.items()},
    )


def rule_map(rules):
    return {
        (tuple(sorted(r.body)), tuple(sorted(r.head))): r for r in rules
    }


class TestMinGroupCount:
    def test_exact_fraction(self):
        assert min_group_count(0.5, 4) == 2

    def test_rounds_up(self):
        assert min_group_count(0.5, 5) == 3

    def test_never_below_one(self):
        assert min_group_count(0.0, 100) == 1

    def test_float_fuzz(self):
        # 0.3 * 10 = 2.9999999... must still be 3, not 4
        assert min_group_count(0.3, 10) == 3


class TestSimpleCore:
    def test_two_group_example(self):
        groups = {1: {10, 20}, 2: {10, 20, 30}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives()
        )
        by_key = rule_map(rules)
        rule = by_key[((10,), (20,))]
        assert rule.support == 1.0 and rule.confidence == 1.0
        # 30 is not frequent at min_count=2
        assert not any(30 in r.body or 30 in r.head for r in rules)

    def test_confidence_computed_from_body_count(self):
        groups = {1: {1, 2}, 2: {1}, 3: {1, 2}, 4: {3}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives()
        )
        rule = rule_map(rules)[((1,), (2,))]
        assert rule.support_count == 2
        assert rule.body_count == 3
        assert rule.confidence == pytest.approx(2 / 3)
        assert rule.support == pytest.approx(0.5)

    def test_min_confidence_filters(self):
        groups = {1: {1, 2}, 2: {1}, 3: {1, 2}, 4: {3}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives(min_confidence=0.9)
        )
        assert ((1,), (2,)) not in rule_map(rules)
        assert ((2,), (1,)) in rule_map(rules)  # confidence 1.0

    def test_head_cardinality_default_one(self):
        groups = {1: {1, 2, 3}, 2: {1, 2, 3}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives()
        )
        assert all(len(r.head) == 1 for r in rules)

    def test_head_cardinality_range(self):
        groups = {1: {1, 2, 3}, 2: {1, 2, 3}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives(head_card=(2, 2))
        )
        assert rules and all(len(r.head) == 2 for r in rules)
        assert all(len(r.body) == 1 for r in rules)

    def test_body_cardinality_bounds(self):
        groups = {1: {1, 2, 3, 4}, 2: {1, 2, 3, 4}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives(body_card=(2, 2))
        )
        assert rules and all(len(r.body) == 2 for r in rules)

    def test_body_and_head_are_disjoint(self):
        groups = {1: {1, 2, 3}, 2: {1, 2, 3}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives(head_card=(1, None))
        )
        assert rules
        assert all(not (r.body & r.head) for r in rules)

    def test_rules_sorted_deterministically(self):
        groups = {1: {3, 1, 2}, 2: {2, 1, 3}}
        rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives()
        )
        assert rules == sorted(rules, key=EncodedRule.key)

    def test_empty_groups_yield_no_rules(self):
        rules = SimpleCoreOperator(Apriori()).run(
            SimpleInput(totg=0, min_count=1, groups={}), directives()
        )
        assert rules == []


def general_input(
    body_items,
    head_items=None,
    cluster_pairs=None,
    elementary=None,
    totg=None,
    min_count=1,
    same_schema=True,
    clustered=False,
):
    if head_items is None:
        head_items = body_items
    return GeneralInput(
        totg=totg if totg is not None else len(body_items),
        min_count=min_count,
        same_schema=same_schema,
        clustered=clustered,
        body_items={
            g: {c: set(s) for c, s in clusters.items()}
            for g, clusters in body_items.items()
        },
        head_items={
            g: {c: set(s) for c, s in clusters.items()}
            for g, clusters in head_items.items()
        },
        cluster_pairs=cluster_pairs,
        elementary=elementary,
    )


W = WHOLE_GROUP_CLUSTER


class TestGeneralCoreUnclustered:
    def test_matches_simple_semantics(self):
        groups = {1: {1, 2}, 2: {1}, 3: {1, 2}, 4: {3}}
        simple_rules = SimpleCoreOperator(Apriori()).run(
            simple_input(groups, 2), directives()
        )
        data = general_input(
            {g: {W: s} for g, s in groups.items()}, min_count=2
        )
        general_rules = GeneralCoreOperator().run(
            data, directives(simple=False)
        )
        assert rule_map(simple_rules).keys() == rule_map(general_rules).keys()
        for key, rule in rule_map(simple_rules).items():
            other = rule_map(general_rules)[key]
            assert rule.support == pytest.approx(other.support)
            assert rule.confidence == pytest.approx(other.confidence)

    def test_self_rule_excluded_same_schema(self):
        data = general_input({1: {W: {1}}, 2: {W: {1}}}, min_count=1)
        rules = GeneralCoreOperator().run(data, directives(simple=False))
        assert rules == []

    def test_lattice_grows_heads(self):
        data = general_input(
            {1: {W: {1, 2, 3}}, 2: {W: {1, 2, 3}}}, min_count=2
        )
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, head_card=(1, None))
        )
        assert ((1,), (2, 3)) in rule_map(rules)

    def test_lattice_sizes_recorded(self):
        data = general_input(
            {1: {W: {1, 2, 3}}, 2: {W: {1, 2, 3}}}, min_count=2
        )
        operator = GeneralCoreOperator()
        operator.run(data, directives(simple=False, head_card=(1, None)))
        assert operator.lattice_sizes[(1, 1)] == 6
        assert (2, 1) in operator.lattice_sizes


class TestGeneralCoreClustered:
    def test_cluster_pairs_restrict_rules(self):
        # group 1: cluster 1 = {1}, cluster 2 = {2}
        body = {1: {1: {1}, 2: {2}}, 2: {1: {1}, 2: {2}}}
        ordered_pairs = {1: {(1, 2)}, 2: {(1, 2)}}
        data = general_input(
            body, cluster_pairs=ordered_pairs, min_count=2, clustered=True
        )
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, clustered=True)
        )
        keys = rule_map(rules).keys()
        assert ((1,), (2,)) in keys
        assert ((2,), (1,)) not in keys  # reversed pair not allowed

    def test_all_pairs_when_no_condition(self):
        body = {1: {1: {1}, 2: {2}}, 2: {1: {1}, 2: {2}}}
        data = general_input(body, min_count=2, clustered=True)
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, clustered=True)
        )
        keys = rule_map(rules).keys()
        assert ((1,), (2,)) in keys and ((2,), (1,)) in keys

    def test_same_item_across_clusters_allowed(self):
        # the same item in two different clusters may form a rule
        body = {1: {1: {9}, 2: {9}}, 2: {1: {9}, 2: {9}}}
        pairs = {1: {(1, 2)}, 2: {(1, 2)}}
        data = general_input(
            body, cluster_pairs=pairs, min_count=2, clustered=True
        )
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, clustered=True)
        )
        assert ((9,), (9,)) in rule_map(rules)

    def test_body_needs_single_cluster_cooccurrence(self):
        # items 1,2 in *different* clusters: {1,2} is not a valid body
        body = {
            1: {1: {1}, 2: {2}, 3: {7}},
            2: {1: {1, 2}, 3: {7}},
        }
        data = general_input(body, min_count=1, clustered=True)
        rules = GeneralCoreOperator().run(
            data,
            directives(simple=False, clustered=True, body_card=(2, 2)),
        )
        two_body = [r for r in rules if r.body == frozenset({1, 2})]
        # supported only via group 2's cluster 1
        assert all(r.body_count == 1 for r in two_body)

    def test_confidence_counts_unpaired_body_clusters(self):
        # Figure 2b scenario in miniature: body occurs in a group with
        # no valid cluster pair -> counts for confidence only.
        body = {
            1: {1: {5}},  # no pair in group 1
            2: {1: {5}, 2: {6}},
        }
        head = body
        pairs = {2: {(1, 2)}}
        data = general_input(
            body, head, cluster_pairs=pairs, min_count=1, clustered=True
        )
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, clustered=True)
        )
        rule = rule_map(rules)[((5,), (6,))]
        assert rule.support_count == 1
        assert rule.body_count == 2
        assert rule.confidence == pytest.approx(0.5)


class TestGeneralCoreElementary:
    def test_elementary_rules_from_input_rules(self):
        # SQL preprocessed: only (1 => 2) survives the mining condition
        elementary = [(1, W, W, 1, 2), (2, W, W, 1, 2)]
        data = general_input(
            {1: {W: {1, 2}}, 2: {W: {1, 2}}},
            elementary=elementary,
            min_count=2,
        )
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, mining_condition=True)
        )
        keys = rule_map(rules).keys()
        assert keys == {((1,), (2,))}

    def test_min_count_prunes_elementary(self):
        elementary = [(1, W, W, 1, 2)]
        data = general_input(
            {1: {W: {1, 2}}, 2: {W: {3}}}, elementary=elementary, min_count=2
        )
        rules = GeneralCoreOperator().run(
            data, directives(simple=False, mining_condition=True)
        )
        assert rules == []

    def test_composite_rule_requires_all_pairs(self):
        # body {1,2} => head {3} needs both 1=>3 and 2=>3 in the
        # same (group, cluster pair)
        elementary = [
            (1, W, W, 1, 3),
            (1, W, W, 2, 3),
            (2, W, W, 1, 3),  # group 2 lacks 2=>3
        ]
        data = general_input(
            {1: {W: {1, 2, 3}}, 2: {W: {1, 2, 3}}},
            elementary=elementary,
            min_count=1,
        )
        rules = GeneralCoreOperator().run(
            data,
            directives(
                simple=False, mining_condition=True, body_card=(2, 2)
            ),
        )
        rule = rule_map(rules)[((1, 2), (3,))]
        assert rule.support_count == 1
