"""Secondary index tests: maintenance, planner use, correctness."""

import pytest

from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (id INTEGER, grp INTEGER, v VARCHAR)")
    for i in range(100):
        database.table("t").insert((i, i % 10, f"v{i}"))
    database.execute("CREATE INDEX t_id ON t (id)")
    return database


class TestPlannerUse:
    def test_point_query_uses_index(self, db):
        plan = db.explain("SELECT v FROM t WHERE id = 5")
        assert "IndexLookup t.t_id" in plan
        assert "Scan" not in plan

    def test_point_query_result_correct(self, db):
        assert db.query("SELECT v FROM t WHERE id = 5") == [("v5",)]

    def test_reversed_equality_orientation(self, db):
        plan = db.explain("SELECT v FROM t WHERE 5 = id")
        assert "IndexLookup" in plan
        assert db.query("SELECT v FROM t WHERE 5 = id") == [("v5",)]

    def test_hostvar_key(self, db):
        assert db.query("SELECT v FROM t WHERE id = :k", {"k": 7}) == [
            ("v7",)
        ]

    def test_extra_conjunct_becomes_filter(self, db):
        plan = db.explain("SELECT v FROM t WHERE id = 5 AND grp > 100")
        assert "IndexLookup" in plan and "Filter" in plan
        assert db.query("SELECT v FROM t WHERE id = 5 AND grp > 100") == []

    def test_non_equality_does_not_use_index(self, db):
        plan = db.explain("SELECT v FROM t WHERE id > 5")
        assert "IndexLookup" not in plan

    def test_unindexed_column_scans(self, db):
        plan = db.explain("SELECT v FROM t WHERE grp = 3")
        assert "IndexLookup" not in plan
        assert len(db.query("SELECT v FROM t WHERE grp = 3")) == 10

    def test_composite_index(self, db):
        db.execute("CREATE INDEX t_both ON t (grp, id)")
        plan = db.explain("SELECT v FROM t WHERE id = 12 AND grp = 2")
        assert "IndexLookup t.t_both" in plan
        assert db.query("SELECT v FROM t WHERE id = 12 AND grp = 2") == [
            ("v12",)
        ]

    def test_index_in_join_side(self, db):
        db.execute("CREATE TABLE probe (id INTEGER)")
        db.execute("INSERT INTO probe VALUES (3), (4)")
        rows = db.query(
            "SELECT t.v FROM probe, t WHERE t.id = probe.id AND t.id = 3"
        )
        assert rows == [("v3",)]

    def test_correlated_subquery_uses_index(self, db):
        # correctness of the outer-reference lookup path
        count = db.execute(
            "SELECT COUNT(*) FROM t a WHERE EXISTS "
            "(SELECT 1 FROM t b WHERE b.id = a.id + 1)"
        ).scalar()
        assert count == 99

    def test_null_key_matches_nothing(self, db):
        db.table("t").insert((None, 1, "null-id"))
        assert db.query("SELECT v FROM t WHERE id = :k", {"k": None}) == []


class TestMaintenance:
    def test_insert_maintains_index(self, db):
        db.execute("INSERT INTO t VALUES (999, 9, 'fresh')")
        assert db.query("SELECT v FROM t WHERE id = 999") == [("fresh",)]

    def test_delete_maintains_index(self, db):
        db.execute("DELETE FROM t WHERE id = 5")
        assert db.query("SELECT v FROM t WHERE id = 5") == []

    def test_update_maintains_index(self, db):
        db.execute("UPDATE t SET id = 1000 WHERE id = 6")
        assert db.query("SELECT v FROM t WHERE id = 6") == []
        assert db.query("SELECT v FROM t WHERE id = 1000") == [("v6",)]

    def test_truncate_clears_index(self, db):
        db.execute("DELETE FROM t")
        assert db.query("SELECT v FROM t WHERE id = 5") == []
        db.execute("INSERT INTO t VALUES (5, 0, 'again')")
        assert db.query("SELECT v FROM t WHERE id = 5") == [("again",)]

    def test_index_created_on_populated_table(self, db):
        db.execute("CREATE INDEX t_v ON t (v)")
        assert db.query("SELECT id FROM t WHERE v = 'v42'") == [(42,)]

    def test_duplicate_keys_all_returned(self, db):
        db.execute("CREATE INDEX t_grp ON t (grp)")
        rows = db.query("SELECT id FROM t WHERE grp = 4")
        assert len(rows) == 10

    def test_drop_index_falls_back_to_scan(self, db):
        db.execute("DROP INDEX t_id")
        plan = db.explain("SELECT v FROM t WHERE id = 5")
        assert "IndexLookup" not in plan
        assert db.query("SELECT v FROM t WHERE id = 5") == [("v5",)]

    def test_duplicate_index_name_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE INDEX t_id ON t (grp)")

    def test_drop_table_drops_its_indexes(self, db):
        db.execute("DROP TABLE t")
        db.execute("CREATE TABLE t (id INTEGER)")
        db.execute("CREATE INDEX t_id ON t (id)")  # name free again


class TestEquivalenceWithScan:
    def test_indexed_and_scan_agree(self, db):
        for key in (0, 13, 42, 99, 100, -1):
            indexed = db.query("SELECT v FROM t WHERE id = :k", {"k": key})
            scanned = [
                (v,)
                for i, g, v in db.table("t").rows
                if i == key
            ]
            assert indexed == scanned

    def test_disabled_pushdown_ignores_index(self):
        from repro.sqlengine import EngineOptions

        database = Database(EngineOptions(filter_pushdown=False))
        database.execute("CREATE TABLE t (id INTEGER)")
        database.execute("INSERT INTO t VALUES (1), (2)")
        database.execute("CREATE INDEX i ON t (id)")
        plan = database.explain("SELECT id FROM t WHERE id = 1")
        assert "IndexLookup" not in plan
        assert database.query("SELECT id FROM t WHERE id = 1") == [(1,)]
