"""Translator tests: which queries each statement class activates
(Figure 4) and the directives handed to the core operator."""

import pytest

from repro.kernel import Translator, Workspace
from repro.minerule import MineRuleValidationError
from repro.sqlengine import Database
from repro.sqlengine.errors import CatalogError
from repro.datagen import load_purchase_figure1


@pytest.fixture
def translator(purchase_db):
    return Translator(purchase_db)


def build(translator, text):
    return translator.translate(text, Workspace("T"))


SIMPLE = """
MINE RULE Out AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""


def base_labels(program):
    """Query labels ignoring the a/b suffixes."""
    return {label.rstrip("ab") for label in program.labels()}


class TestSimpleProgram:
    def test_q0_skipped_without_source_condition(self, translator):
        program = build(translator, SIMPLE)
        assert "Q0v" in program.labels()
        assert "Q0" not in program.labels()

    def test_q0_present_with_source_condition(self, translator):
        program = build(
            translator,
            SIMPLE.replace("FROM Purchase", "FROM Purchase WHERE price > 10"),
        )
        assert "Q0" in program.labels()

    def test_simple_query_set(self, translator):
        program = build(translator, SIMPLE)
        assert base_labels(program) == {"Q0v", "Q1", "Q2", "Q3", "Q4"}

    def test_core_directives_simple(self, translator):
        core = build(translator, SIMPLE).core
        assert core.simple
        assert core.input_rules is None
        assert core.cluster_couples is None
        assert core.min_support == 0.2
        assert core.body_card == (1, None)
        assert core.head_card == (1, 1)

    def test_group_having_lands_in_q2(self, translator):
        program = build(
            translator,
            SIMPLE.replace(
                "GROUP BY customer",
                "GROUP BY customer HAVING COUNT(*) >= 2",
            ),
        )
        assert "HAVING" in program.query("Q2a").sql

    def test_no_group_having_no_q2_having(self, translator):
        program = build(translator, SIMPLE)
        assert "HAVING" not in program.query("Q2a").sql

    def test_q3_counts_within_valid_groups_when_g(self, translator):
        program = build(
            translator,
            SIMPLE.replace(
                "GROUP BY customer",
                "GROUP BY customer HAVING COUNT(*) >= 2",
            ),
        )
        assert "ValidGroups" in program.query("Q3a").sql


class TestGeneralProgram:
    def test_paper_statement_queries(self, translator, paper_statement):
        program = build(translator, paper_statement)
        labels = base_labels(program)
        assert labels == {"Q0", "Q1", "Q2", "Q3", "Q6", "Q7", "Q4", "Q11",
                          "Q8", "Q9", "Q10"}

    def test_h_adds_q5(self, translator):
        program = build(
            translator,
            SIMPLE.replace("1..1 item AS HEAD", "1..1 price AS HEAD"),
        )
        assert "Q5a" in program.labels() and "Q5b" in program.labels()

    def test_mining_condition_adds_q8_q9_q10(self, translator):
        program = build(
            translator,
            SIMPLE.replace(
                "SUPPORT, CONFIDENCE",
                "SUPPORT, CONFIDENCE WHERE BODY.price > HEAD.price",
            ),
        )
        for label in ("Q8", "Q9", "Q10"):
            assert label in program.labels()

    def test_cluster_without_condition_skips_q7(self, translator):
        text = SIMPLE.replace(
            "GROUP BY customer", "GROUP BY customer CLUSTER BY date"
        )
        program = build(translator, text)
        assert "Q6" in program.labels()
        assert "Q7" not in program.labels()
        assert program.core.cluster_couples is None

    def test_cluster_condition_rewritten_for_q7(
        self, translator, paper_statement
    ):
        program = build(translator, paper_statement)
        sql = program.query("Q7").sql
        assert "BC.date" in sql and "HC.date" in sql
        assert "BODY" not in sql

    def test_cluster_aggregates_precomputed_in_q6(self, translator):
        text = SIMPLE.replace(
            "GROUP BY customer",
            "GROUP BY customer CLUSTER BY date "
            "HAVING SUM(BODY.price) < SUM(HEAD.price)",
        )
        program = build(translator, text)
        q6 = program.query("Q6").sql
        assert "SUM(S.price) AS MRAGG1" in q6
        q7 = program.query("Q7").sql
        assert "BC.MRAGG1" in q7 and "HC.MRAGG1" in q7

    def test_mining_condition_rewritten_for_q8(
        self, translator, paper_statement
    ):
        sql = build(translator, paper_statement).query("Q8").sql
        assert "B.price" in sql and "H.price" in sql
        assert "BODY" not in sql

    def test_q8_excludes_self_pairs_same_schema(self, translator):
        program = build(
            translator,
            SIMPLE.replace(
                "SUPPORT, CONFIDENCE",
                "SUPPORT, CONFIDENCE WHERE BODY.price > HEAD.price",
            ),
        )
        assert "B.Bid <> H.Bid" in program.query("Q8").sql

    def test_q4b_left_joins_when_h(self, translator):
        program = build(
            translator,
            SIMPLE.replace("1..1 item AS HEAD", "1..1 price AS HEAD"),
        )
        sql = program.query("Q4b").sql
        assert "LEFT JOIN" in sql
        assert "IS NOT NULL" in sql

    def test_q4b_inner_join_when_same_schema(self, translator):
        text = SIMPLE.replace(
            "GROUP BY customer", "GROUP BY customer CLUSTER BY date"
        )
        sql = build(translator, text).query("Q4b").sql
        assert "LEFT JOIN" not in sql

    def test_coded_source_is_view_q11(self, translator, paper_statement):
        program = build(translator, paper_statement)
        assert program.query("Q11").sql.startswith("CREATE VIEW")

    def test_schemas_follow_directives(self, translator, paper_statement):
        program = build(translator, paper_statement)
        names = program.workspace
        assert program.schemas[names.coded_source] == ["Gid", "Cid", "Bid"]
        assert program.schemas[names.input_rules] == [
            "Gid",
            "BCid",
            "HCid",
            "Bid",
            "Hid",
        ]


class TestValidationAtTranslation:
    def test_unknown_table_rejected(self, translator):
        with pytest.raises(CatalogError):
            build(translator, SIMPLE.replace("FROM Purchase", "FROM Nope"))

    def test_semantic_check_applied(self, translator):
        with pytest.raises(MineRuleValidationError):
            build(
                translator,
                SIMPLE.replace("n item AS BODY", "n missing AS BODY"),
            )


class TestProgramListing:
    def test_listing_contains_sections(self, translator, paper_statement):
        listing = build(translator, paper_statement).listing()
        assert "===== setup =====" in listing
        assert "===== preprocessing =====" in listing
        assert "-- Q8:" in listing

    def test_query_lookup_by_label(self, translator):
        program = build(translator, SIMPLE)
        assert program.query("Q1").sql.startswith("SELECT COUNT(*)")
        with pytest.raises(KeyError):
            program.query("Q99")


class TestAppendixAQueries:
    """Structural conformance with Appendix A (simple rules)."""

    def test_q1_counts_distinct_groups(self, translator):
        sql = build(translator, SIMPLE).query("Q1").sql
        assert "COUNT(*)" in sql
        assert "INTO :totg" in sql
        assert "SELECT DISTINCT customer" in sql

    def test_q2_creates_view_then_encodes_with_sequence(self, translator):
        program = build(translator, SIMPLE)
        assert program.query("Q2a").sql.startswith("CREATE VIEW")
        q2b = program.query("Q2b").sql
        assert ".NEXTVAL AS Gid" in q2b
        assert "V.*" in q2b

    def test_q3_stages_then_filters_by_mingroups(self, translator):
        program = build(translator, SIMPLE)
        assert "SELECT DISTINCT item, customer" in program.query("Q3a").sql
        q3b = program.query("Q3b").sql
        assert "GROUP BY item" in q3b
        assert "COUNT(*) >= :mingroups" in q3b
        assert ".NEXTVAL AS Bid" in q3b

    def test_q4_joins_source_validgroups_bset(self, translator):
        sql = build(translator, SIMPLE).query("Q4").sql
        assert "SELECT DISTINCT V.Gid, B.Bid" in sql
        assert "S.customer = V.customer" in sql
        assert "S.item = B.item" in sql

    def test_postprocessing_decodes_bodies(self, translator):
        program = build(translator, SIMPLE)
        p1 = program.query("P1").sql
        assert "Out_Bodies" in p1
        assert "OutputBodies.Bid = Bset.Bid" in p1

    def test_all_generated_sql_parses(self, translator, paper_statement):
        from repro.sqlengine.parser import parse_sql

        for statement_text in (SIMPLE, paper_statement):
            program = build(translator, statement_text)
            for query in (
                program.setup + program.preprocessing + program.postprocessing
            ):
                parse_sql(query.sql)
