"""Shell / CLI tests (the user-support entry point)."""

import pytest

from repro.cli import SCENARIOS, Shell, main

MINE = (
    "MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE FROM Purchase GROUP BY customer "
    "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.9"
)


@pytest.fixture
def shell():
    sh = Shell()
    sh.execute(".load purchase")
    return sh


class TestMetaCommands:
    def test_load_reports_rows(self):
        sh = Shell()
        assert "8 rows" in sh.execute(".load purchase")

    def test_load_unknown_scenario(self):
        sh = Shell()
        out = sh.execute(".load nothere")
        assert "unknown scenario" in out
        assert "purchase" in out

    def test_all_scenarios_load(self):
        for name in SCENARIOS:
            sh = Shell()
            assert "loaded" in sh.execute(f".load {name}")

    def test_tables(self, shell):
        assert "Purchase" in shell.execute(".tables")

    def test_tables_empty(self):
        assert "(no tables)" in Shell().execute(".tables")

    def test_schema(self, shell):
        out = shell.execute(".schema Purchase")
        assert "item" in out and "price" in out

    def test_schema_missing_argument(self, shell):
        assert "usage" in shell.execute(".schema")

    def test_algorithm_switch(self, shell):
        assert "dhp" in shell.execute(".algorithm dhp")
        assert shell.system.algorithm.name == "dhp"

    def test_algorithm_unknown(self, shell):
        assert "unknown algorithm" in shell.execute(".algorithm xx")

    def test_explain(self, shell):
        out = shell.execute(".explain SELECT item FROM Purchase "
                            "WHERE price > 100")
        assert "Scan Purchase" in out

    def test_timing_toggle(self, shell):
        assert "timing on" in shell.execute(".timing on")
        out = shell.execute("SELECT COUNT(*) FROM Purchase")
        assert "ms)" in out
        shell.execute(".timing off")

    def test_help(self, shell):
        assert ".load" in shell.execute(".help")

    def test_unknown_command(self, shell):
        assert "unknown command" in shell.execute(".bogus")

    def test_quit_raises_eof(self, shell):
        with pytest.raises(EOFError):
            shell.execute(".quit")


class TestStatements:
    def test_sql_select(self, shell):
        out = shell.execute("SELECT COUNT(*) FROM Purchase")
        assert "8" in out and "(1 rows)" in out

    def test_sql_ddl(self, shell):
        out = shell.execute("CREATE TABLE t (a INTEGER)")
        assert out.startswith("ok")

    def test_sql_error_is_reported_not_raised(self, shell):
        out = shell.execute("SELECT nothing FROM nowhere")
        assert out.startswith("error:")

    def test_mine_rule_statement(self, shell):
        out = shell.execute(MINE)
        assert "directives" in out
        assert "R_Display" in out
        assert "{" in out  # rendered rules

    def test_mine_rule_error_reported(self, shell):
        out = shell.execute("MINE RULE broken AS SELECT nothing")
        assert out.startswith("error:")

    def test_load_invalidates_preprocessing_cache(self, shell):
        shell.execute(MINE)
        shell.execute(".load purchase")
        result = shell.system.execute(MINE)
        assert not result.preprocessing_reused


class TestLineFeeding:
    def test_multiline_statement_buffers(self, shell):
        assert shell.feed("SELECT COUNT(*)") is None
        assert shell.pending
        out = shell.feed("FROM Purchase;")
        assert out is not None and "8" in out
        assert not shell.pending

    def test_meta_commands_bypass_buffer(self, shell):
        out = shell.feed(".tables")
        assert out is not None


class TestBatchMain:
    def test_commands_run_in_order(self, capsys):
        code = main([
            "-c", ".load purchase",
            "-c", "SELECT COUNT(*) FROM Purchase",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "loaded Purchase" in captured
        assert "8" in captured

    def test_script_file(self, tmp_path, capsys):
        script = tmp_path / "session.sql"
        script.write_text(
            ".load purchase;\nSELECT COUNT(*) FROM Purchase;\n"
        )
        # meta commands in files are split on ';' like statements
        code = main(["-f", str(script)])
        assert code == 0
        assert "8" in capsys.readouterr().out

    def test_algorithm_flag(self, capsys):
        code = main(["--algorithm", "dhp", "-c", ".load purchase",
                     "-c", MINE])
        assert code == 0
        assert "directives" in capsys.readouterr().out


class TestObservabilityCommands:
    def traced_shell(self):
        from repro.obs import Tracer

        sh = Shell(tracer=Tracer(enabled=True, analyze=True))
        sh.execute(".load purchase")
        return sh

    def test_analyze_meta_shows_actuals(self, shell):
        out = shell.execute(".analyze SELECT item FROM Purchase "
                            "WHERE price > 100")
        assert "actual rows=" in out
        assert "Execution:" in out

    def test_analyze_requires_argument(self, shell):
        assert "usage" in shell.execute(".analyze")

    def test_explain_analyze_sql_prefix(self, shell):
        out = shell.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM Purchase"
        )
        assert "actual rows=" in out

    def test_explain_sql_prefix(self, shell):
        out = shell.execute("EXPLAIN SELECT item FROM Purchase")
        assert "Scan Purchase" in out
        assert "actual rows=" not in out

    def test_trace_off_by_default(self, shell):
        assert "tracing is off" in shell.execute(".trace")

    def test_trace_reports_spans(self):
        sh = self.traced_shell()
        sh.execute(MINE)
        out = sh.execute(".trace")
        assert "spans" in out

    def test_trace_writes_chrome_json(self, tmp_path):
        import json

        sh = self.traced_shell()
        sh.execute(MINE)
        target = tmp_path / "trace.json"
        out = sh.execute(f".trace {target}")
        assert "wrote" in out
        data = json.loads(target.read_text(encoding="utf-8"))
        names = {e["name"] for e in data["traceEvents"]}
        assert "preprocessor" in names

    def test_trace_out_flag_writes_on_exit(self, tmp_path, capsys):
        import json

        target = tmp_path / "run.json"
        code = main([
            "--trace-out", str(target),
            "-c", ".load purchase",
            "-c", MINE,
        ])
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        data = json.loads(target.read_text(encoding="utf-8"))
        names = {e["name"] for e in data["traceEvents"]}
        for component in ("translator", "preprocessor", "core",
                          "postprocessor"):
            assert component in names


class TestDumpRestore:
    def test_dump_and_restore_roundtrip(self, shell, tmp_path):
        target = tmp_path / "session"
        out = shell.execute(f".dump {target}")
        assert "dumped" in out
        fresh = Shell()
        assert "restored" in fresh.execute(f".restore {target}")
        assert "8" in fresh.execute("SELECT COUNT(*) FROM Purchase")

    def test_dump_requires_argument(self, shell):
        assert "usage" in shell.execute(".dump")

    def test_restore_requires_argument(self, shell):
        assert "usage" in shell.execute(".restore")


class TestExperimentsCommand:
    def test_experiments_runs_suite(self):
        shell = Shell()
        out = shell.execute(".experiments")
        assert "Reproduction report" in out
        assert "FIG2" in out and "exact match" in out
