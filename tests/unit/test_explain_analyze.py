"""EXPLAIN ANALYZE: per-node actual rows/loops/time instrumentation."""

import re

import pytest

from repro.sqlengine import Database


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (grp VARCHAR, x INTEGER)")
    for grp, x in [("a", 1), ("a", 2), ("b", 3), ("b", 4), ("c", 5)]:
        database.execute(
            "INSERT INTO t VALUES (:g, :x)", {"g": grp, "x": x}
        )
    return database


ANNOTATION = re.compile(
    r"\(actual rows=(\d+) loops=(\d+) time=\d+\.\d+ ms\)"
)


def annotations(text):
    return [
        (int(rows), int(loops))
        for rows, loops in ANNOTATION.findall(text)
    ]


class TestAnalyzeSelect:
    def test_scan_reports_actual_rows(self, db):
        text = db.explain_analyze("SELECT * FROM t")
        assert "Scan t" in text
        assert (5, 1) in annotations(text)
        assert "Execution: 5 rows" in text

    def test_filter_shows_row_reduction(self, db):
        result = db.analyze("SELECT * FROM t WHERE x > 3")
        assert result.rowcount == 2
        operators = {n["operator"]: n for n in result.nodes}
        assert operators["TableScan"]["rows"] == 5
        assert operators["Filter"]["rows"] == 2

    def test_aggregate_nodes_counted(self, db):
        result = db.analyze(
            "SELECT grp, COUNT(*) FROM t GROUP BY grp"
        )
        operators = {n["operator"]: n for n in result.nodes}
        assert operators["GroupAggregate"]["rows"] == 3
        assert operators["TableScan"]["rows"] == 5

    def test_join_nodes_counted(self, db):
        db.execute("CREATE TABLE u (grp VARCHAR)")
        db.execute("INSERT INTO u VALUES ('a'), ('b')")
        result = db.analyze(
            "SELECT t.x FROM t, u WHERE t.grp = u.grp"
        )
        assert result.rowcount == 4
        operators = {n["operator"]: n for n in result.nodes}
        assert operators["HashJoin"]["rows"] == 4

    def test_subquery_plan_rendered_separately(self, db):
        text = db.explain_analyze(
            "SELECT grp, (SELECT MAX(x) FROM t) FROM t"
        )
        assert "-- subplan --" in text

    def test_correlated_subquery_accumulates_loops(self, db):
        result = db.analyze(
            "SELECT grp FROM t a "
            "WHERE x = (SELECT MAX(x) FROM t b WHERE b.grp = a.grp)"
        )
        assert result.rowcount == 3
        # the subplan's scan ran once per outer row
        scans = [
            n for n in result.nodes
            if n["operator"] == "TableScan" and n["plan"] > 0
        ]
        assert scans and scans[0]["loops"] == 5


class TestAnalyzeSideEffects:
    def test_ctas_executes_exactly_once(self, db):
        result = db.analyze("CREATE TABLE t2 AS SELECT * FROM t")
        assert "CreateTableAsSelect" in result.text
        assert len(db.table("t2")) == 5  # not doubled

    def test_insert_select_executes_exactly_once(self, db):
        db.execute("CREATE TABLE sink (grp VARCHAR, x INTEGER)")
        db.analyze("INSERT INTO sink SELECT * FROM t")
        assert len(db.table("sink")) == 5

    def test_statement_without_plan_reports_so(self, db):
        result = db.analyze("CREATE TABLE empty_one (a INTEGER)")
        assert "(no plan: executed directly)" in result.text


class TestInstrumentationHygiene:
    def test_no_residue_on_cached_plan(self, db):
        sql = "SELECT grp, COUNT(*) FROM t GROUP BY grp"
        db.analyze(sql)
        # the cached plan must run un-instrumented afterwards
        plan = db._select_plan(db._parse_statement(sql))
        from repro.sqlengine.planner import plan_operators

        for op in plan_operators(plan.source):
            assert "envs" not in op.__dict__
        assert len(db.query(sql)) == 3

    def test_analyze_results_match_plain_execution(self, db):
        sql = "SELECT grp, SUM(x) FROM t GROUP BY grp ORDER BY grp"
        assert db.analyze(sql).result.rows == db.query(sql)

    def test_collector_cleared_after_error(self, db):
        from repro.sqlengine.errors import SqlError

        with pytest.raises(SqlError):
            db.analyze("SELECT * FROM missing_table")
        assert db._analyze is None
