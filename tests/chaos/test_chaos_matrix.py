"""The chaos matrix: seeded fault schedules against the MINE RULE
pipeline.

Two invariants, checked over every (statement, seed) combination:

* **fail-closed** — without retries, an injected error either surfaces
  as a typed :class:`FaultError` or (if the fault never fired / only
  added latency / was absorbed by a graceful degradation) the output is
  bit-identical to the fault-free baseline.  Never a wrong answer,
  never a half-written output relation accepted as success.
* **fail-forward** — with a generous retry policy, every schedule the
  matrix generates is survivable, and the mined output is bit-identical
  to the baseline.
"""

import pytest

from repro import FaultError, FaultSchedule, RetryPolicy, faults

from .conftest import (
    CHAOS_MATRIX,
    CHAOS_SITES,
    NO_SLEEP,
    STATEMENTS,
    fresh_system,
    output_fingerprint,
)

#: random schedules arm at most 3 specs x 2 repeats; one stage can
#: therefore absorb at most 6 consecutive errors, so 8 attempts always
#: clear it.  Zero delays: the suite tests ordering, not waiting.
GENEROUS = RetryPolicy(max_attempts=8, base_delay=0.0, max_delay=0.0)


def schedule_for(seed: int) -> FaultSchedule:
    return FaultSchedule.random(seed, sites=CHAOS_SITES, sleep=NO_SLEEP)


@pytest.mark.parametrize("name,seed", CHAOS_MATRIX)
def test_fails_cleanly_or_is_identical(name, seed, baselines):
    """No retries: a typed failure or a bit-identical success."""
    base_rules, base_text = baselines[name]
    system = fresh_system()
    schedule = schedule_for(seed)
    try:
        with faults.injected(schedule):
            result = system.run(STATEMENTS[name])
    except FaultError as exc:
        # fail-closed: the error names the injection site and call
        assert exc.site
        assert exc.call >= 1
        assert (exc.site, exc.call, "error") in [
            (site, call, kind) for site, call, kind in schedule.fired
        ]
        return
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text


@pytest.mark.parametrize("name,seed", CHAOS_MATRIX)
def test_retries_produce_bit_identical_output(name, seed, baselines):
    """With retries every matrix schedule is survivable, and the output
    matches the fault-free baseline bit for bit."""
    base_rules, base_text = baselines[name]
    system = fresh_system()
    schedule = schedule_for(seed)
    with faults.injected(schedule):
        result = system.run(STATEMENTS[name], retry=GENEROUS)

    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    # the counters account for everything the schedule injected
    resilience = result.resilience
    assert resilience.faults_injected == schedule.errors_injected
    assert resilience.latencies_injected == schedule.latencies_injected
    if schedule.errors_injected:
        assert resilience.retries or resilience.degradations


@pytest.mark.parametrize("name,seed", CHAOS_MATRIX)
def test_crash_then_resume_is_identical(name, seed, baselines):
    """No retries, then resume: whatever stage the schedule kills, a
    ``run(resume=True)`` finishes the statement with baseline output."""
    base_rules, base_text = baselines[name]
    system = fresh_system()
    schedule = schedule_for(seed)
    crashes = 0
    # re-running under the *same* armed schedule: per-site counters
    # keep counting across runs, so each error window eventually passes
    with faults.injected(schedule):
        for _ in range(16):
            try:
                result = system.run(STATEMENTS[name], resume=True)
                break
            except FaultError:
                crashes += 1
        else:
            pytest.fail("schedule never drained")

    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    if crashes:
        assert system.checkpoint_for(STATEMENTS[name]) is None
