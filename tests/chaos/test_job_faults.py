"""Chaos at the job layer: faults at submit and run sites.

The job service compiles two injection sites of its own on top of the
pipeline's — ``jobs.submit`` (between recording the job and enqueueing
it) and ``jobs.run.<id>`` (at every execution attempt of job ``<id>``,
so a ``jobs.run.*`` glob kills or delays whole attempts).  The
invariants mirrored from the pipeline chaos suite:

* a killed submission lands in ``failed`` with the fault recorded as
  the job error, and leaves the engine clean for the next job;
* a killed attempt under a retry policy re-runs and the final output
  is **bit-identical** to the fault-free baseline;
* exhausted retries surface the fault in ``job.error``; the database
  stays consistent and a clean rerun reproduces the baseline;
* cancelling a mid-run job (window widened with a latency fault)
  lands in ``cancelled`` without corrupting the source or output
  relations.
"""

import time

import pytest

from repro import faults
from repro.faults import FaultSchedule, RetryPolicy
from repro.jobs import CANCELLED, DONE, FAILED, QUEUED, JobService
from tests.chaos.conftest import (
    NO_SLEEP,
    STATEMENTS,
    fresh_system,
    output_fingerprint,
)

#: fast retries: no backoff sleeps in the chaos loop
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0)


def make_service(**kwargs):
    system = fresh_system()
    kwargs.setdefault("retry_policy", FAST_RETRY)
    return system, JobService(system, workers=2, queue_size=32, **kwargs)


def job_rule_set(job):
    """Job result rules in the baseline ``rule_set()`` shape."""
    return {
        (frozenset(body), frozenset(head), support, confidence)
        for body, head, support, confidence in job.result["rules"]
    }


def assert_matches_baseline(system, job, baseline):
    expected_rules, expected_fingerprint = baseline
    assert job_rule_set(job) == expected_rules
    assert (
        output_fingerprint(system, job.result["output_table"])
        == expected_fingerprint
    )


def test_submit_fault_lands_the_job_in_failed(baselines):
    system, service = make_service()
    with service:
        with faults.injected(FaultSchedule().arm("jobs.submit", call=1)):
            job = service.submit(STATEMENTS["simple"])
            assert job.state == FAILED
            assert "jobs.submit" in job.error
            assert service.get(job.id).state == FAILED

        # the fault fired before the engine saw the statement: the next
        # submission runs clean and reproduces the baseline
        done = service.wait(service.submit(STATEMENTS["simple"]).id,
                            timeout=120)
        assert done.state == DONE
        assert_matches_baseline(system, done, baselines["simple"])


@pytest.mark.parametrize("name", ["simple", "paper"])
def test_killed_attempt_is_retried_bit_identical(baselines, name):
    """One ``jobs.run.<id>`` fault kills the first attempt; the retry
    policy re-runs it and the output must match the fault-free
    baseline byte for byte."""
    system, service = make_service()
    with service:
        schedule = FaultSchedule(sleep=NO_SLEEP).arm("jobs.run.*", call=1)
        with faults.injected(schedule):
            job = service.submit(STATEMENTS[name], retries=3)
            done = service.wait(job.id, timeout=120)
        assert done.state == DONE, done.error
        assert len(schedule.fired) == 1
        assert_matches_baseline(system, done, baselines[name])


def test_exhausted_retries_record_the_fault(baselines):
    system, service = make_service()
    with service:
        schedule = FaultSchedule(sleep=NO_SLEEP).arm(
            "jobs.run.*", call=1, times=5
        )
        with faults.injected(schedule):
            job = service.submit(STATEMENTS["simple"], retries=2)
            failed = service.wait(job.id, timeout=120)
        assert failed.state == FAILED
        assert "FaultError" in failed.error
        assert "jobs.run" in failed.error

        # every attempt died at stage entry, so the database is clean:
        # a fault-free rerun reproduces the baseline
        done = service.wait(service.submit(STATEMENTS["simple"]).id,
                            timeout=120)
        assert done.state == DONE
        assert_matches_baseline(system, done, baselines["simple"])


def test_cancel_mid_run_leaves_the_database_consistent(baselines):
    """A latency fault parks the run inside preprocessing; the cancel
    arrives mid-run, the job lands in ``cancelled``, and the source +
    output relations stay consistent for a clean rerun."""
    system, service = make_service()
    with service:
        with faults.injected(
            FaultSchedule.parse("preprocessor.Q*:1@0.8")
        ):
            job = service.submit(STATEMENTS["paper"])
            deadline = time.monotonic() + 30
            while (
                service.get(job.id).state == QUEUED
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
            service.cancel(job.id)
            finished = service.wait(job.id, timeout=120)
        assert finished.state == CANCELLED
        assert finished.result is None

        # source relation untouched by the aborted run
        assert system.db.query("SELECT COUNT(*) FROM Purchase") == [(8,)]

        # a clean rerun of the same statement reproduces the baseline
        done = service.wait(service.submit(STATEMENTS["paper"]).id,
                            timeout=120)
        assert done.state == DONE
        assert_matches_baseline(system, done, baselines["paper"])
