"""Chaos coverage of the REFRESH pipeline (PR 9).

The two refresh fault sites (``refresh.delta``, ``refresh.recount``)
are deliberately outside :data:`repro.faults.DEFAULT_SITES` — random
schedules arm only sites every typical statement visits — so this
suite installs *explicit* schedules.  The contract under fire is
clean-failure-or-bit-identical: a killed refresh either surfaces the
:class:`FaultError` leaving the recorded state untouched, or (with a
retry policy) completes with output tables byte-equal to an unfaulted
refresh; a re-refresh after a clean failure also converges to the
same bytes.
"""

import datetime

import pytest

from repro import FaultError, FaultSchedule, RetryPolicy, faults

from .conftest import NO_SLEEP, fresh_system, output_fingerprint

STATEMENT = (
    "MINE RULE ChaosRefresh AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY tr "
    "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
)

EXTRA = [
    (30, "c9", "ski_pants", datetime.date(1998, 1, 2), 120.0, 1),
    (30, "c9", "hiking_boots", datetime.date(1998, 1, 2), 180.0, 1),
    (31, "c10", "ski_pants", datetime.date(1998, 1, 3), 120.0, 1),
]

RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)

REFRESH_SITES = ("refresh.delta", "refresh.recount")


def _primed_system():
    """A system with mined output, captured state and appended rows —
    ready for a delta refresh."""
    system = fresh_system()
    system.run(STATEMENT)
    system.refresh("ChaosRefresh")  # capture state
    table = system.db.catalog.get_table("Purchase")
    for row in EXTRA:
        table.insert(list(row))
    return system


@pytest.fixture(scope="module")
def refreshed_baseline():
    """Output fingerprint of an unfaulted refresh on the primed data."""
    system = _primed_system()
    result = system.refresh("ChaosRefresh")
    assert result.stats.mode == "incremental"
    return output_fingerprint(system, "ChaosRefresh")


@pytest.mark.parametrize("site", REFRESH_SITES)
def test_killed_refresh_fails_clean_then_rerefresh_converges(
    site, refreshed_baseline
):
    system = _primed_system()
    with faults.injected(FaultSchedule(sleep=NO_SLEEP).arm(site, call=1)):
        with pytest.raises(FaultError) as excinfo:
            system.refresh("ChaosRefresh")
    assert excinfo.value.site == site
    # the failed refresh must not have committed partial state: a
    # plain re-refresh sees the same delta and lands on the baseline
    result = system.refresh("ChaosRefresh")
    assert result.stats.mode == "incremental"
    assert result.stats.delta_rows == len(EXTRA)
    assert output_fingerprint(system, "ChaosRefresh") == refreshed_baseline


@pytest.mark.parametrize("site", REFRESH_SITES)
def test_retried_refresh_is_bit_identical(site, refreshed_baseline):
    system = _primed_system()
    with faults.injected(FaultSchedule(sleep=NO_SLEEP).arm(site, call=1)):
        result = system.refresh("ChaosRefresh", retry=RETRY)
    assert result.stats.mode == "incremental"
    assert result.resilience.retries >= 1
    assert output_fingerprint(system, "ChaosRefresh") == refreshed_baseline


def test_both_sites_killed_in_one_refresh_with_retries(refreshed_baseline):
    system = _primed_system()
    schedule = FaultSchedule(sleep=NO_SLEEP)
    for site in REFRESH_SITES:
        schedule.arm(site, call=1)
    with faults.injected(schedule):
        result = system.refresh("ChaosRefresh", retry=RETRY)
    assert result.resilience.retries >= 2
    assert output_fingerprint(system, "ChaosRefresh") == refreshed_baseline


def test_emission_crash_then_rerefresh_converges(refreshed_baseline):
    """A crash *after* state commit (during postprocessor emission)
    leaves an empty delta behind; the re-refresh must still emit the
    full baseline bytes (emission does not depend on delta size)."""
    system = _primed_system()
    with faults.injected(
        FaultSchedule(sleep=NO_SLEEP).arm("postprocessor.store", call=1)
    ):
        with pytest.raises(FaultError):
            system.refresh("ChaosRefresh")
    result = system.refresh("ChaosRefresh")
    assert result.stats.delta_rows == 0  # state committed before crash
    assert output_fingerprint(system, "ChaosRefresh") == refreshed_baseline
