"""Chaos drills for the sharded executor (PR 6).

Fault site ``core.shard.<i>`` is checked in the parent once per shard
per phase (local mining, exact recount), so arming it kills the run
just before that shard's work is dispatched — ``call=1`` lands before
phase 1, ``call=2`` mid-run between local mining and the recount.
Every drill must end bit-identical to the fault-free *serial*
baseline: the executor's crash/retry/resume story cannot cost the
bit-identity guarantee.
"""

import pytest

from repro import FaultError, FaultSchedule, RetryPolicy, faults

from .conftest import (
    NO_SLEEP,
    STATEMENTS,
    fresh_system,
    output_fingerprint,
)

RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)


@pytest.mark.parametrize("name", ["simple", "paper"])
@pytest.mark.parametrize("call", [1, 2], ids=["before-local", "mid-count"])
def test_kill_shard_then_resume_bit_identical(name, call, baselines):
    """Crash shard 1 (before dispatch / between phases), then resume
    from the checkpoint: output identical to the serial baseline."""
    base_rules, base_text = baselines[name]
    system = fresh_system(workers=2)
    schedule = FaultSchedule(sleep=NO_SLEEP).arm("core.shard.1", call=call)
    with faults.injected(schedule):
        with pytest.raises(FaultError) as excinfo:
            system.run(STATEMENTS[name])
    assert excinfo.value.site == "core.shard.1"
    assert system.checkpoint_for(STATEMENTS[name]) is not None

    result = system.run(STATEMENTS[name], resume=True)
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert system.checkpoint_for(STATEMENTS[name]) is None
    assert result.resilience.stages_resumed > 0


@pytest.mark.parametrize("name", ["simple", "paper"])
def test_kill_shard_then_retry_bit_identical(name, baselines):
    """A retry policy carries the run through a one-shot shard kill."""
    base_rules, base_text = baselines[name]
    system = fresh_system(workers=2)
    schedule = FaultSchedule(sleep=NO_SLEEP).arm("core.shard.0", call=1)
    with faults.injected(schedule):
        result = system.run(STATEMENTS[name], retry=RETRY)
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert result.resilience.faults_injected == 1
    assert result.resilience.retries >= 1


def test_kill_every_shard_once_with_retries(baselines):
    """One schedule that faults both shards; retries survive it."""
    base_rules, base_text = baselines["simple"]
    schedule = FaultSchedule(sleep=NO_SLEEP)
    schedule.arm("core.shard.0", call=1)
    schedule.arm("core.shard.1", call=2)
    system = fresh_system(workers=2)
    with faults.injected(schedule):
        result = system.run(STATEMENTS["simple"], retry=RETRY)
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert result.resilience.faults_injected == 2


def test_bitset_degradation_under_sharding(baselines):
    """A persistently failing bitset layer degrades the sharded run to
    the set layout — still bit-identical to the serial baseline."""
    base_rules, base_text = baselines["simple"]
    system = fresh_system(workers=2)
    with faults.injected(
        FaultSchedule(sleep=NO_SLEEP).arm("core.bitset", times=99)
    ):
        result = system.run(STATEMENTS["simple"], retry=RETRY)
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert any(
        "bitset -> set" in note for note in result.resilience.degraded
    )
    assert result.core_stats.representation == "set"
    assert result.core_stats.shards == 2
