"""Targeted stage kills: one deterministic fault per pipeline stage.

Complements the random matrix with surgical checks: killing any single
stage leaves a checkpoint that a resumed run completes bit-identically,
and a schedule that hits *every* stage once in one run is survived by
the retry policy with the counters visible in trace and report.
"""

import pytest

from repro import FaultError, FaultSchedule, RetryPolicy, faults
from repro.report import render_report

from .conftest import (
    NO_SLEEP,
    STATEMENTS,
    fresh_system,
    output_fingerprint,
)

RETRY = RetryPolicy(max_attempts=4, base_delay=0.0, max_delay=0.0)

#: every stage site reachable for the simple statement (Q3 splits into
#: Q3a/Q3b for the simple translation)
SIMPLE_SITES = (
    "engine.execute",
    "preprocessor.Q0*",
    "preprocessor.Q1",
    "preprocessor.Q2a",
    "preprocessor.Q2b",
    "preprocessor.Q3*",
    "preprocessor.Q4",
    "core.load",
    "core.simple",
    "core.bitset",
    "postprocessor.store",
    "postprocessor.decode",
)

#: general-core sites exercised by the paper statement
PAPER_SITES = (
    "preprocessor.Q7",
    "preprocessor.Q11",
    "preprocessor.Q9",
    "core.load",
    "core.lattice",
    "postprocessor.store",
    "postprocessor.decode",
)


def _kill_resume_roundtrip(name, site, call, baselines):
    base_rules, base_text = baselines[name]
    system = fresh_system()
    with faults.injected(FaultSchedule(sleep=NO_SLEEP).arm(site, call=call)):
        with pytest.raises(FaultError) as excinfo:
            system.run(STATEMENTS[name])
    assert excinfo.value.site  # typed, site-attributed failure
    assert system.checkpoint_for(STATEMENTS[name]) is not None

    result = system.run(STATEMENTS[name], resume=True)
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert system.checkpoint_for(STATEMENTS[name]) is None
    return result


@pytest.mark.parametrize("site", [s for s in SIMPLE_SITES
                                  if s != "core.bitset"])
def test_kill_each_simple_stage_then_resume(site, baselines):
    result = _kill_resume_roundtrip("simple", site, 1, baselines)
    if site.startswith(("core.", "postprocessor.")):
        # preprocessing was already complete when the crash happened,
        # so the resumed run skipped at least those stages
        assert result.resilience.stages_resumed > 0


@pytest.mark.parametrize("site", PAPER_SITES)
def test_kill_each_general_stage_then_resume(site, baselines):
    # call=2 for the lattice site: it is checked once per itemset pair,
    # so the kill lands mid-computation rather than at the first touch
    call = 2 if site == "core.lattice" else 1
    _kill_resume_roundtrip("paper", site, call, baselines)


def test_kill_every_stage_in_one_run_with_retries(baselines):
    """One schedule that faults every stage of the simple pipeline;
    retries carry the run through and the counters surface."""
    base_rules, base_text = baselines["simple"]
    schedule = FaultSchedule(sleep=NO_SLEEP)
    for site in ("preprocessor.Q0*", "preprocessor.Q1", "preprocessor.Q2a",
                 "preprocessor.Q2b", "preprocessor.Q4", "core.load",
                 "postprocessor.store", "postprocessor.decode"):
        schedule.arm(site, call=1)

    system = fresh_system()
    with faults.injected(schedule):
        result = system.run(STATEMENTS["simple"], retry=RETRY)

    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    resilience = result.resilience
    assert resilience.faults_injected == len(schedule.specs)
    assert resilience.retries >= len(schedule.specs)

    # counters appear in the process trace ...
    rendered = result.flow.render()
    assert "-- counters --" in rendered
    assert "retries" in rendered
    # ... and in the report
    report_text = render_report(system, result)
    assert "resilience:" in report_text
    assert f"retries {resilience.retries}" in report_text


def test_bitset_degradation_is_bit_identical(baselines):
    """A persistently failing bitset layer degrades to the set layout
    and still produces the baseline output."""
    base_rules, base_text = baselines["simple"]
    system = fresh_system()
    with faults.injected(FaultSchedule(sleep=NO_SLEEP).arm(
            "core.bitset", times=99)):
        result = system.run(STATEMENTS["simple"], retry=RETRY)
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert any("bitset -> set" in note for note in result.resilience.degraded)


def test_compile_degradation_is_bit_identical(baselines):
    """Compiled-expression faults fall back to the interpreter without
    retries, failures, or output changes."""
    base_rules, base_text = baselines["simple"]
    system = fresh_system()
    with faults.injected(FaultSchedule(sleep=NO_SLEEP).arm(
            "engine.compile", times=10_000)):
        result = system.run(STATEMENTS["simple"])
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert result.resilience.degradations > 0


def test_latency_faults_slow_but_do_not_fail(baselines):
    """Latency faults are counted, surfaced, and harmless."""
    base_rules, base_text = baselines["simple"]
    sleeps = []
    schedule = FaultSchedule(sleep=sleeps.append).arm(
        "engine.execute", call=3, times=2, kind="latency", latency=0.25
    )
    system = fresh_system()
    with faults.injected(schedule):
        result = system.run(STATEMENTS["simple"])
    assert result.rule_set() == base_rules
    assert output_fingerprint(system, result.output_table) == base_text
    assert sleeps == [0.25, 0.25]
    assert result.resilience.latencies_injected == 2
    assert result.resilience.faults_injected == 0
