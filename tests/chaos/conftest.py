"""Shared machinery for the chaos suite.

Every chaos test follows the same shape: mine a statement on a fresh
Figure-1 database under a *seeded* fault schedule and compare the
outcome against a fault-free baseline.  Schedules are deterministic
(same seed, same faults), so every red run is replayable.

``CHAOS_QUICK=1`` shrinks the schedule matrix to a 5-combination smoke
subset for fast CI feedback.
"""

import os

import pytest

from repro import Database, MiningSystem
from repro.sqlengine.dump import dump_table_text
from repro.datagen import load_purchase_figure1

#: no-op sleep so latency faults and backoff don't slow the suite down
NO_SLEEP = lambda seconds: None  # noqa: E731

#: fault sites used by the random schedules: globs across every layer
#: the injection hooks cover (engine, preprocessing queries, core
#: operator, postprocessing)
CHAOS_SITES = (
    "engine.execute",
    "preprocessor.Q*",
    "core.load",
    "core.simple",
    "core.lattice",
    "core.bitset",
    "postprocessor.store",
    "postprocessor.decode",
)

#: the MINE RULE matrix: one statement per translator classification of
#: interest (simple core; general core with clusters + mining
#: condition; clusters only; mining condition only)
STATEMENTS = {
    "simple": (
        "MINE RULE ChaosSimple AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
    "paper": (
        "MINE RULE ChaosPaper AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "WHERE BODY.price >= 100 AND HEAD.price < 100 "
        "FROM Purchase "
        "WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' "
        "GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
    "clusters": (
        "MINE RULE ChaosClusters AS "
        "SELECT DISTINCT 1..1 item AS BODY, 1..1 item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.2"
    ),
    "mining_condition": (
        "MINE RULE ChaosMining AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "WHERE BODY.price >= 100 "
        "FROM Purchase GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
}

SEEDS = tuple(range(7))

#: 4 statements x 7 seeds = 28 seeded schedules
CHAOS_MATRIX = [
    (name, seed) for name in sorted(STATEMENTS) for seed in SEEDS
]
if os.environ.get("CHAOS_QUICK"):
    # one seed for every statement kind plus one extra: 5 combinations
    CHAOS_MATRIX = [
        (name, 0) for name in sorted(STATEMENTS)
    ] + [("paper", 1)]


def fresh_system(**kwargs) -> MiningSystem:
    database = Database()
    load_purchase_figure1(database)
    return MiningSystem(database=database, **kwargs)


def output_fingerprint(system: MiningSystem, out: str) -> str:
    """Bit-exact text of all four output relations of statement *out*."""
    parts = []
    for table in (out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"):
        parts.append(f"== {table} ==")
        parts.append(dump_table_text(system.db, table))
    return "\n".join(parts)


@pytest.fixture(scope="session")
def baselines():
    """Fault-free rule sets and output fingerprints per statement."""
    results = {}
    for name, statement in STATEMENTS.items():
        system = fresh_system()
        result = system.run(statement)
        results[name] = (
            result.rule_set(),
            output_fingerprint(system, result.output_table),
        )
    return results
