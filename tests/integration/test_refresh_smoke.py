"""REFRESH RULES end-to-end over the serving stack (PR 9).

Boots the full service (monitoring HTTP server + job queue + shared
mining system), mines a statement, appends rows to the source through
SQL INSERT jobs — the same write path a client has — then submits a
``REFRESH RULES`` job over ``POST /jobs`` and byte-compares the
refreshed display against a from-scratch run of the statement on an
identically-appended database (the golden for this schedule).
"""

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.serve import MineRuleService
from repro.sqlengine.dump import dump_table_text
from tests.integration.test_jobs_http import request, wait_job

STATEMENT = (
    "MINE RULE SmokeRefresh AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY tr "
    "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
)

APPENDS = [
    "INSERT INTO Purchase VALUES "
    "(30, 'c9', 'ski_pants', DATE '1998-01-02', 120.0, 1)",
    "INSERT INTO Purchase VALUES "
    "(30, 'c9', 'hiking_boots', DATE '1998-01-02', 180.0, 1)",
    "INSERT INTO Purchase VALUES "
    "(31, 'c10', 'ski_pants', DATE '1998-01-03', 120.0, 1)",
]


@pytest.fixture
def base():
    service = MineRuleService(scenario="purchase", port=0)
    with service:
        yield service.monitor.url


def scratch_golden():
    """Display text of a from-scratch run on the appended table."""
    database = Database()
    load_purchase_figure1(database)
    for statement in APPENDS:
        database.execute(statement)
    system = MiningSystem(database=database)
    system.run(STATEMENT)
    return dump_table_text(database, "SmokeRefresh_Display")


def submit_and_wait(base, statement, expected_kind):
    status, payload = request("POST", base + "/jobs", statement)
    assert status == 201, payload
    assert payload["job"]["kind"] == expected_kind
    job = wait_job(base, payload["job"]["id"])
    assert job["state"] == "done", job.get("error")
    status, payload = request("GET", f"{base}/jobs/{job['id']}/result")
    assert status == 200
    return payload["job"]["result"]


def test_refresh_job_matches_from_scratch_golden(base):
    mined = submit_and_wait(base, STATEMENT, "mine")
    assert mined["rule_count"] > 0
    # capture refresh state, then append through the public SQL path
    captured = submit_and_wait(
        base, "REFRESH RULES SmokeRefresh", "refresh"
    )
    assert captured["mode"] == "incremental"
    for insert in APPENDS:
        submit_and_wait(base, insert, "sql")

    refreshed = submit_and_wait(
        base, "REFRESH RULES SmokeRefresh", "refresh"
    )
    assert refreshed["kind"] == "refresh"
    assert refreshed["mode"] == "incremental"
    assert refreshed["output_table"] == "SmokeRefresh"
    assert refreshed["display"] == scratch_golden()


def test_refresh_of_unknown_output_fails_clean(base):
    status, payload = request(
        "POST", base + "/jobs", "REFRESH RULES NeverMined"
    )
    assert status == 201, payload
    job = wait_job(base, payload["job"]["id"])
    assert job["state"] == "failed"
    assert "NeverMined" in job["error"]
