"""Advanced MINE RULE semantics: multi-attribute partitions, cross-side
mining conditions, cardinality interplay, and failure injection."""

import datetime

import pytest

from repro import Database, MiningSystem
from repro.minerule import MineRuleValidationError
from repro.sqlengine.types import SqlType


def make_system(rows, columns, types=None, table="T"):
    db = Database()
    db.create_table_from_rows(table, columns, rows, types)
    return MiningSystem(database=db)


class TestCrossSideMiningConditions:
    """Mining conditions comparing BODY and HEAD attributes."""

    @pytest.fixture
    def system(self):
        rows = [
            (1, "a", 10), (1, "b", 20), (1, "c", 30),
            (2, "a", 10), (2, "b", 20), (2, "c", 30),
            (3, "a", 10), (3, "c", 30),
        ]
        return make_system(
            rows,
            ("grp", "item", "price"),
            (SqlType.INTEGER, SqlType.VARCHAR, SqlType.INTEGER),
        )

    def test_body_cheaper_than_head(self, system):
        result = system.execute(
            "MINE RULE Up AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
            "WHERE BODY.price < HEAD.price FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.1"
        )
        prices = {"a": 10, "b": 20, "c": 30}
        assert result.rules
        for rule in result.rules:
            body = next(iter(rule.body))
            head = next(iter(rule.head))
            assert prices[body] < prices[head]

    def test_price_difference_condition(self, system):
        result = system.execute(
            "MINE RULE Far AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
            "WHERE HEAD.price - BODY.price >= 20 FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.1"
        )
        keys = {
            (next(iter(r.body)), next(iter(r.head))) for r in result.rules
        }
        assert keys == {("a", "c")}

    def test_composite_bodies_respect_pairwise_condition(self, system):
        result = system.execute(
            "MINE RULE Multi AS SELECT DISTINCT 1..2 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
            "WHERE BODY.price < HEAD.price FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1"
        )
        # {a,b} => c requires both a<c and b<c: present
        keys = {
            (tuple(sorted(r.body)), next(iter(r.head)))
            for r in result.rules
        }
        assert (("a", "b"), "c") in keys
        # {b,c} => anything is impossible (c is the maximum)
        assert not any(body == ("b", "c") for body, _ in keys)


class TestMultiAttributePartitions:
    @pytest.fixture
    def system(self):
        rows = [
            # grp, region, day, item
            (1, "north", 1, "x"), (1, "north", 2, "y"),
            (1, "south", 1, "x"), (1, "south", 2, "z"),
            (2, "north", 1, "x"), (2, "north", 2, "y"),
        ]
        return make_system(
            rows,
            ("grp", "region", "day", "item"),
            (SqlType.INTEGER, SqlType.VARCHAR, SqlType.INTEGER,
             SqlType.VARCHAR),
        )

    def test_two_attribute_cluster_by(self, system):
        result = system.execute(
            "MINE RULE RC AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "CLUSTER BY region, day "
            "HAVING BODY.region = HEAD.region AND BODY.day < HEAD.day "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1"
        )
        keys = {
            (next(iter(r.body)), next(iter(r.head))) for r in result.rules
        }
        # within north: day1 x -> day2 y in both groups
        assert ("x", "y") in keys
        # within south (group 1): day1 x -> day2 z
        assert ("x", "z") in keys
        # y -> z crosses regions (north day2 -> south day2): excluded
        assert ("y", "z") not in keys

    def test_cluster_encoding_carries_both_attributes(self, system):
        result = system.execute(
            "MINE RULE RC2 AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "CLUSTER BY region, day "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1"
        )
        names = result.program.workspace
        table = system.db.table(names.clusters)
        assert "region" in [c.lower() for c in table.columns]
        assert "day" in [c.lower() for c in table.columns]


class TestCardinalityInterplay:
    @pytest.fixture
    def system(self):
        rows = [
            (g, item)
            for g in (1, 2, 3)
            for item in ("a", "b", "c", "d")
        ]
        return make_system(
            rows, ("grp", "item"), (SqlType.INTEGER, SqlType.VARCHAR)
        )

    def test_exact_cardinalities(self, system):
        result = system.execute(
            "MINE RULE C22 AS SELECT DISTINCT 2..2 item AS BODY, "
            "2..2 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 1.0, CONFIDENCE: 0.1"
        )
        assert result.rules
        assert all(
            len(r.body) == 2 and len(r.head) == 2 for r in result.rules
        )

    def test_body_min_greater_than_one(self, system):
        result = system.execute(
            "MINE RULE C31 AS SELECT DISTINCT 3..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 1.0, CONFIDENCE: 0.1"
        )
        assert result.rules
        assert all(len(r.body) == 3 for r in result.rules)

    def test_impossible_cardinality_yields_empty(self, system):
        result = system.execute(
            "MINE RULE C5 AS SELECT DISTINCT 5..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1"
        )
        assert result.rules == []


class TestGroupAndClusterCombined:
    def test_group_having_with_clusters(self):
        rows = [
            (1, 1, "a"), (1, 2, "b"),
            (2, 1, "a"), (2, 2, "b"),
            (3, 1, "a"),  # group 3 has only 1 tuple
        ]
        system = make_system(
            rows, ("grp", "step", "item"),
            (SqlType.INTEGER, SqlType.INTEGER, SqlType.VARCHAR),
        )
        result = system.execute(
            "MINE RULE GC AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T "
            "GROUP BY grp HAVING COUNT(*) >= 2 "
            "CLUSTER BY step HAVING BODY.step < HEAD.step "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1"
        )
        assert result.directives.G and result.directives.K
        keys = {
            (next(iter(r.body)), next(iter(r.head))) for r in result.rules
        }
        assert keys == {("a", "b")}
        rule = result.rules[0]
        # support over ALL 3 groups (totg from Q1), found in 2
        assert rule.support == pytest.approx(2 / 3)


class TestFailureInjection:
    def test_type_error_in_mining_condition_surfaces(self):
        system = make_system(
            [(1, "a", "oops")], ("grp", "item", "price"),
            (SqlType.INTEGER, SqlType.VARCHAR, SqlType.VARCHAR),
        )
        from repro.sqlengine.errors import SqlTypeError

        with pytest.raises(SqlTypeError):
            system.execute(
                "MINE RULE F AS SELECT DISTINCT 1..1 item AS BODY, "
                "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
                "WHERE BODY.price > 10 AND HEAD.price > 10 "
                "FROM T GROUP BY grp "
                "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
            )

    def test_failed_preprocessing_leaves_system_usable(self):
        system = make_system(
            [(1, "a", "oops"), (1, "b", "x")], ("grp", "item", "price"),
            (SqlType.INTEGER, SqlType.VARCHAR, SqlType.VARCHAR),
        )
        from repro.sqlengine.errors import SqlTypeError

        with pytest.raises(SqlTypeError):
            system.execute(
                "MINE RULE F AS SELECT DISTINCT 1..1 item AS BODY, "
                "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
                "WHERE BODY.price > 10 AND HEAD.price > 10 "
                "FROM T GROUP BY grp "
                "EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1"
            )
        # a subsequent valid statement still runs (stale working tables
        # are dropped by the next setup program)
        ok = system.execute(
            "MINE RULE OK AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.1"
        )
        assert ok.rules

    def test_nulls_in_partition_attributes(self):
        # NULL group keys form their own group via GROUP BY semantics
        rows = [(None, "a"), (None, "b"), (1, "a"), (1, "b")]
        system = make_system(
            rows, ("grp", "item"), (SqlType.INTEGER, SqlType.VARCHAR)
        )
        result = system.execute(
            "MINE RULE N AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM T GROUP BY grp "
            "EXTRACTING RULES WITH SUPPORT: 0.4, CONFIDENCE: 0.1"
        )
        # totg counts the NULL group too
        assert system.db.variables["totg"] == 2
