"""Columnar smoke: the Appendix-A golden statements on column vectors.

The golden files in ``tests/integration/golden/`` were produced by the
row pipeline; this module re-runs every golden statement with

* ``storage="columnar"`` (vectorized batch executor over the encoded
  column vectors), and
* ``storage="columnar"`` under a tiny ``memory_budget`` + small
  ``batch_size`` (every sizable sort / join / aggregate goes through
  the spill operators)

and compares the dumped output relations byte-for-byte against the
same checked-in goldens — the PR's bit-identity contract, enforced on
the exact artifacts the row path is pinned to.
"""

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.sqlengine.dump import dump_table_text

from tests.integration.test_golden_outputs import (
    GOLDEN_DIR,
    GOLDEN_STATEMENTS,
)

CONFIGURATIONS = {
    "columnar": {"storage": "columnar"},
    "columnar_spill": {
        "storage": "columnar",
        "memory_budget": 2_000,
        "batch_size": 16,
    },
}


@pytest.mark.parametrize("config", sorted(CONFIGURATIONS))
@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_columnar_matches_row_goldens(name, config):
    database = Database()
    load_purchase_figure1(database)
    system = MiningSystem(database=database, **CONFIGURATIONS[config])
    result = system.run(GOLDEN_STATEMENTS[name])
    out = result.output_table

    mismatches = []
    for table in (out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"):
        text = dump_table_text(database, table)
        path = GOLDEN_DIR / f"{name}__{table}.golden.txt"
        assert path.exists(), f"golden file {path.name} missing"
        expected = path.read_text(encoding="utf-8")
        if text != expected:
            mismatches.append(
                f"{table} ({config}):\n--- expected\n{expected}"
                f"--- actual\n{text}"
            )
    assert not mismatches, "\n".join(mismatches)
