"""The job REST API end-to-end, over real HTTP sockets.

The unit suite drives :class:`JobsApi` directly; this suite boots the
full serving stack (:class:`MineRuleService` → monitoring HTTP server
with the jobs router mounted) and talks to it the way a client would:
``urllib`` requests against the loopback port.  Covered here:

* submit a golden Appendix-A MINE RULE statement over ``POST /jobs``,
  poll to ``done``, and compare the result display **byte-for-byte**
  against the committed golden file;
* raw-body SQL submission, listing with state filters, validation
  errors, 404/405/409 behaviour on the wire;
* ``DELETE`` of a running job (widened with a latency fault) lands in
  ``cancelled`` and leaves the engine able to rerun the statement;
* the job metrics series show up on the shared ``/metrics`` scrape;
* the stdin statement protocol keeps working next to the HTTP API.
"""

import json
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import faults
from repro.faults import FaultSchedule
from repro.serve import MineRuleService
from tests.integration.test_golden_outputs import GOLDEN_STATEMENTS
from tests.integration.test_monitoring_server import fetch, parse_prometheus

GOLDEN_DISPLAY = (
    Path(__file__).parent
    / "golden"
    / "simple_associations__SimpleAssociations_Display.golden.txt"
)

TERMINAL_STATES = {"done", "failed", "cancelled"}


def request(method, url, payload=None):
    """(status, decoded JSON).  dict/list payloads go as JSON, strings
    as a raw statement body; non-2xx statuses don't raise."""
    data = None
    headers = {}
    if isinstance(payload, (dict, list)):
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    elif payload is not None:
        data = payload.encode()
        headers["Content-Type"] = "text/plain"
    req = urllib.request.Request(url, data=data, method=method, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, json.loads(resp.read().decode())
    except urllib.error.HTTPError as err:
        body = err.read().decode()
        try:
            return err.code, json.loads(body)
        except json.JSONDecodeError:
            return err.code, body


def wait_job(base, job_id, timeout=120, until=TERMINAL_STATES):
    """Poll ``GET /jobs/<id>`` until the state is in *until*."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload = request("GET", f"{base}/jobs/{job_id}")
        assert status == 200, payload
        job = payload["job"]
        if job["state"] in until:
            return job
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never reached {until}")


@pytest.fixture
def service():
    svc = MineRuleService(scenario="purchase", port=0)
    with svc:
        yield svc


@pytest.fixture
def base(service):
    return service.monitor.url


def test_mine_job_matches_golden_display(base):
    status, payload = request(
        "POST",
        base + "/jobs",
        {"statement": GOLDEN_STATEMENTS["simple_associations"]},
    )
    assert status == 201, payload
    job = payload["job"]
    assert job["kind"] == "mine"
    assert job["state"] in ("queued", "running", "done")

    done = wait_job(base, job["id"])
    assert done["state"] == "done", done.get("error")

    status, payload = request("GET", f"{base}/jobs/{job['id']}/result")
    assert status == 200
    result = payload["job"]["result"]
    assert result["kind"] == "mine"
    assert result["output_table"] == "SimpleAssociations"
    assert result["rule_count"] == len(result["rules"]) > 0
    assert result["display"] == GOLDEN_DISPLAY.read_text(encoding="utf-8")


def test_sql_job_with_raw_body(base):
    status, payload = request(
        "POST", base + "/jobs", "SELECT COUNT(*) AS n FROM Purchase"
    )
    assert status == 201, payload
    job = wait_job(base, payload["job"]["id"])
    assert job["state"] == "done"
    status, payload = request("GET", f"{base}/jobs/{job['id']}/result")
    assert status == 200
    result = payload["job"]["result"]
    assert result["kind"] == "sql"
    assert result["rows"] == [[8]]
    assert result["columns"] == ["n"]


def test_listing_filters_and_stats(base):
    for _ in range(3):
        _, payload = request("POST", base + "/jobs", "SELECT tr FROM Purchase")
        wait_job(base, payload["job"]["id"])

    status, payload = request("GET", base + "/jobs")
    assert status == 200
    assert len(payload["jobs"]) == 3
    assert payload["stats"]["counts"]["done"] == 3
    assert payload["stats"]["workers"] >= 1

    status, payload = request("GET", base + "/jobs?state=done")
    assert status == 200
    assert len(payload["jobs"]) == 3

    status, payload = request("GET", base + "/jobs?state=failed")
    assert status == 200
    assert payload["jobs"] == []

    status, payload = request("GET", base + "/jobs?state=bogus")
    assert status == 400
    assert "states" in payload


def test_wire_level_error_statuses(base):
    # empty body
    status, payload = request("POST", base + "/jobs", "")
    assert status == 400

    # JSON body without a statement
    status, payload = request("POST", base + "/jobs", {"kind": "sql"})
    assert status == 400
    assert "statement" in payload["error"]

    # unknown job everywhere
    for method, path in (
        ("GET", "/jobs/job-999"),
        ("GET", "/jobs/job-999/result"),
        ("DELETE", "/jobs/job-999"),
    ):
        status, payload = request(method, base + path)
        assert status == 404, (method, path)

    # wrong method on the collection and on a member
    status, _ = request("DELETE", base + "/jobs")
    assert status == 405
    status, _ = request("POST", base + "/jobs/job-1/result")
    assert status == 405

    # a failed job reports its error through the record
    _, payload = request("POST", base + "/jobs", "SELECT nope FROM missing")
    job = wait_job(base, payload["job"]["id"])
    assert job["state"] == "failed"
    assert job["error"]

    # ... and its result endpoint answers 409 with the record
    status, payload = request("GET", f"{base}/jobs/{job['id']}/result")
    assert status == 409
    assert payload["job"]["state"] == "failed"


def test_delete_cancels_a_running_mine_job(base, service):
    """A latency fault parks the run inside preprocessing long enough
    to cancel it over HTTP; the job must land in ``cancelled`` and the
    engine must stay healthy for a clean rerun."""
    faults.install(FaultSchedule.parse("preprocessor.Q1:1@1.5"))
    try:
        _, payload = request(
            "POST",
            base + "/jobs",
            {"statement": GOLDEN_STATEMENTS["simple_associations"]},
        )
        job_id = payload["job"]["id"]
        running = wait_job(base, job_id, until={"running"} | TERMINAL_STATES)
        assert running["state"] == "running"

        status, payload = request("DELETE", base + f"/jobs/{job_id}")
        assert status == 200

        cancelled = wait_job(base, job_id)
        assert cancelled["state"] == "cancelled"
        status, _ = request("GET", f"{base}/jobs/{job_id}/result")
        assert status == 409
    finally:
        faults.uninstall()

    # a cancelled run is not a health failure, and the statement reruns
    status, body = fetch(base + "/healthz")
    assert status == 200

    _, payload = request(
        "POST",
        base + "/jobs",
        {"statement": GOLDEN_STATEMENTS["simple_associations"]},
    )
    rerun = wait_job(base, payload["job"]["id"])
    assert rerun["state"] == "done"


def test_job_series_on_the_shared_metrics_scrape(base):
    _, payload = request(
        "POST",
        base + "/jobs",
        {"statement": GOLDEN_STATEMENTS["simple_associations"]},
    )
    wait_job(base, payload["job"]["id"])
    _, payload = request("POST", base + "/jobs", "SELECT tr FROM Purchase")
    wait_job(base, payload["job"]["id"])

    status, body = fetch(base + "/metrics")
    assert status == 200
    types, samples = parse_prometheus(body)
    assert types["repro_jobs_queue_depth"] == "gauge"
    assert types["repro_job_seconds"] == "histogram"
    assert types["repro_jobs_total"] == "counter"

    observed = {
        (labels["kind"], labels["status"])
        for labels, _ in samples["repro_job_seconds_count"]
    }
    assert ("mine", "done") in observed
    assert ("sql", "done") in observed
    totals = dict(
        (labels["status"], value)
        for labels, value in samples["repro_jobs_total"]
    )
    assert totals["done"] == 2.0


def test_stdin_protocol_still_works_next_to_http(base, service):
    """The line-oriented statement feed and the REST API share one
    engine: a table created over stdin is visible to an HTTP job."""
    assert service.feed("CREATE TABLE FromStdin (v INTEGER);\n") is not None
    assert service.feed("INSERT INTO FromStdin VALUES (42);\n") is not None

    _, payload = request("POST", base + "/jobs", "SELECT v FROM FromStdin")
    job = wait_job(base, payload["job"]["id"])
    assert job["state"] == "done"
    status, payload = request("GET", f"{base}/jobs/{job['id']}/result")
    assert payload["job"]["result"]["rows"] == [[42]]
