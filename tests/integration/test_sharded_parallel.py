"""Sharded execution against the golden dumps (PR 6).

The CI parallel-smoke contract: running every Appendix-A golden
statement with ``workers=2`` — real worker processes, under both fork
and spawn start methods — produces output relations byte-identical to
the serial golden files.  A tracing run and an explicit ``shards >
groups`` run (empty shards) are covered too, since both must leave the
mined output untouched.
"""

import sys

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.obs import Tracer
from repro.sqlengine.dump import dump_table_text
from tests.integration.test_golden_outputs import (
    GOLDEN_DIR,
    GOLDEN_STATEMENTS,
)


def _golden_text(name, table):
    return (GOLDEN_DIR / f"{name}__{table}.golden.txt").read_text(
        encoding="utf-8"
    )


def _assert_matches_golden(name, **system_kwargs):
    database = Database()
    load_purchase_figure1(database)
    system = MiningSystem(database=database, **system_kwargs)
    result = system.run(GOLDEN_STATEMENTS[name])
    out = result.output_table
    for table in (out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"):
        assert dump_table_text(database, table) == _golden_text(
            name, table
        ), f"{table} diverged from golden under {system_kwargs}"
    return result


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_workers2_fork_matches_golden(name):
    if sys.platform == "win32":  # pragma: no cover - POSIX CI
        pytest.skip("fork start method is POSIX-only")
    result = _assert_matches_golden(
        name, workers=2, shard_start_method="fork"
    )
    assert result.core_stats.shards == 2


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_workers2_spawn_matches_golden(name):
    _assert_matches_golden(name, workers=2, shard_start_method="spawn")


def test_empty_shards_match_golden():
    # Figure 1 has 2 customers; 4 shards leaves two of them empty
    result = _assert_matches_golden(
        "simple_associations", workers=2, shards=4
    )
    assert result.core_stats.shards == 4


def test_sharded_run_under_tracing_matches_golden():
    tracer = Tracer(enabled=True)
    _assert_matches_golden(
        "filtered_ordered_sets", workers=2, tracer=tracer
    )
    names = {span.name for span in tracer.spans}
    assert "core.shards.local" in names
    assert "core.shards.recount" in names
    shard_events = [
        event for event in tracer.instants if event.name == "core.shard"
    ]
    assert len(shard_events) == 4  # 2 shards x 2 phases
