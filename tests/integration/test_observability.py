"""End-to-end observability over the golden MINE RULE statements.

Runs each Appendix-A statement with a tracing, analyzing system and
checks three things:

* tracing changes nothing — the mined rule sets equal the un-traced
  run's, so the golden dumps stay bit-identical;
* every preprocessing query (Q0..Q11 as emitted for that statement
  classification) captured an EXPLAIN ANALYZE plan whose node row
  counts respect the engine's structural invariants;
* the Chrome trace export is valid JSON covering the whole pipeline
  (translator -> preprocessor -> core -> postprocessor).
"""

import json

import pytest

from repro import Database, MiningSystem
from repro.obs import Tracer, render_chrome_trace, trace_events
from tests.integration.test_golden_outputs import GOLDEN_STATEMENTS

from repro.datagen import load_purchase_figure1

COMPONENTS = ["translator", "preprocessor", "core", "postprocessor"]


def traced_run(name):
    database = Database()
    load_purchase_figure1(database)
    tracer = Tracer(enabled=True, analyze=True)
    system = MiningSystem(database=database, tracer=tracer)
    result = system.run(GOLDEN_STATEMENTS[name])
    return system, result, tracer


def plain_run(name):
    database = Database()
    load_purchase_figure1(database)
    return MiningSystem(database=database).run(GOLDEN_STATEMENTS[name])


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_tracing_does_not_change_results(name):
    _, traced, _ = traced_run(name)
    assert traced.rule_set() == plain_run(name).rule_set()


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_every_preprocessing_query_is_analyzed(name):
    _, result, _ = traced_run(name)
    stats = result.preprocess_stats
    assert stats is not None
    # every timed (non-setup) query captured a plan with node stats;
    # setup queries (CLEAN, SEQ) are analyzed too but stay quiet
    assert set(stats.analyzed) >= set(stats.query_seconds)
    assert set(stats.analyzed_text) == set(stats.analyzed)
    for label, text in stats.analyzed_text.items():
        assert "Execution:" in text, label


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_analyzed_node_invariants(name):
    """Structural invariants of the actual row counts: loops are
    positive wherever rows flowed, and an operator that produced rows
    was opened at least once."""
    _, result, _ = traced_run(name)
    for label, nodes in result.preprocess_stats.analyzed.items():
        for node in nodes:
            assert node["rows"] >= 0, (label, node)
            assert node["loops"] >= 1, (label, node)
            assert node["seconds"] >= 0.0, (label, node)


def test_chrome_trace_covers_the_pipeline():
    _, _, tracer = traced_run("simple_associations")
    data = json.loads(render_chrome_trace(tracer))
    events = data["traceEvents"]
    complete = [e["name"] for e in events if e["ph"] == "X"]
    for component in COMPONENTS:
        assert component in complete, component
    # component ordering by start time follows Figure 3a
    starts = {
        e["name"]: e["ts"]
        for e in events
        if e["ph"] == "X" and e["name"] in COMPONENTS
    }
    ordered = sorted(COMPONENTS, key=starts.__getitem__)
    assert ordered == COMPONENTS
    # engine spans nest inside the run: every event fits in the
    # minerule.run envelope
    run = next(e for e in events if e["name"] == "minerule.run")
    for event in events:
        if event["ph"] == "X":
            assert event["ts"] >= run["ts"] - 1e-6
            assert (
                event["ts"] + event["dur"]
                <= run["ts"] + run["dur"] + 1e-6
            )


def test_trace_export_registry_snapshot():
    system, result, tracer = traced_run("simple_associations")
    run = result.run_id
    assert tracer.gauges[f"rules.decoded{{run={run}}}"] == len(result.rules)
    assert tracer.gauges[f"preprocessor.totg{{run={run}}}"] == (
        result.preprocess_stats.totg
    )
    events = trace_events(tracer)
    assert any(e["ph"] == "i" for e in events)  # flow markers exported


def test_repeated_runs_keep_distinct_gauges():
    """Regression: end-of-run gauges used to share one key per name, so
    the second run's snapshot silently overwrote the first's
    (last-writer-wins).  Run-labeled keys keep both."""
    database = Database()
    load_purchase_figure1(database)
    tracer = Tracer(enabled=True)
    system = MiningSystem(database=database, tracer=tracer)
    first = system.run(GOLDEN_STATEMENTS["simple_associations"])
    second = system.run(GOLDEN_STATEMENTS["filtered_ordered_sets"])
    assert first.run_id != second.run_id
    key_one = f"rules.decoded{{run={first.run_id}}}"
    key_two = f"rules.decoded{{run={second.run_id}}}"
    assert tracer.gauges[key_one] == len(first.rules)
    assert tracer.gauges[key_two] == len(second.rules)
    # the two statements mine different rule counts, so the old
    # overwrite bug would have lost real information
    assert len(first.rules) != len(second.rules)


def test_disabled_tracer_captures_no_analysis():
    database = Database()
    load_purchase_figure1(database)
    system = MiningSystem(database=database)
    result = system.run(GOLDEN_STATEMENTS["simple_associations"])
    assert result.preprocess_stats.analyzed == {}
    assert system.tracer.spans == []
