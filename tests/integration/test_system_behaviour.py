"""System-level behaviour: process flow, preprocessing reuse, errors,
and coexistence of several executions in one database."""

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.minerule import MineRuleParseError, MineRuleValidationError
from repro.sqlengine.errors import CatalogError

SIMPLE = """
MINE RULE Out AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY customer
EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5
"""


class TestProcessFlow:
    """Figure 3a: translator -> preprocessor -> core -> postprocessor."""

    def test_component_order(self, system):
        result = system.execute(SIMPLE)
        assert result.flow.components() == [
            "translator",
            "preprocessor",
            "core",
            "postprocessor",
        ]

    def test_timings_cover_all_components(self, system):
        result = system.execute(SIMPLE)
        assert set(result.timings) == {
            "translator",
            "preprocessor",
            "core",
            "postprocessor",
        }
        assert all(t >= 0 for t in result.timings.values())

    def test_preprocessor_events_carry_query_labels(self, system):
        result = system.execute(SIMPLE)
        ran = [
            e.detail
            for e in result.flow.events
            if e.component == "preprocessor" and e.action.startswith("ran")
        ]
        assert ran  # at least Q0v/Q1/Q2/Q3/Q4

    def test_flow_render(self, system):
        result = system.execute(SIMPLE)
        text = result.flow.render()
        assert "[translator]" in text and "timings" in text


class TestPreprocessingReuse:
    """Section 3: shared preprocessing across statements."""

    def test_second_identical_statement_reuses(self, purchase_db):
        system = MiningSystem(database=purchase_db)
        first = system.execute(SIMPLE)
        second = system.execute(SIMPLE.replace("Out", "Out2"))
        assert not first.preprocessing_reused
        assert second.preprocessing_reused
        assert second.rule_set() == {
            (r.body, r.head, round(r.support, 9), round(r.confidence, 9))
            for r in first.rules
        }

    def test_reuse_skips_preprocessing_queries(self, purchase_db):
        system = MiningSystem(database=purchase_db)
        system.execute(SIMPLE)
        before = purchase_db.statements_executed
        second = system.execute(SIMPLE.replace("Out", "Out2"))
        executed = purchase_db.statements_executed - before
        assert second.preprocess_stats is None
        # only output handling runs; far fewer statements than a full
        # preprocessing (which runs > 15 setup+Q statements)
        assert executed < 10

    def test_different_confidence_still_reuses(self, purchase_db):
        # confidence does not parameterize the encoded tables
        system = MiningSystem(database=purchase_db)
        system.execute(SIMPLE)
        second = system.execute(
            SIMPLE.replace("Out", "Out2").replace(
                "CONFIDENCE: 0.5", "CONFIDENCE: 0.9"
            )
        )
        assert second.preprocessing_reused
        assert all(r.confidence >= 0.9 for r in second.rules)

    def test_different_support_does_not_reuse(self, purchase_db):
        # support parameterizes Bset (:mingroups), so no reuse
        system = MiningSystem(database=purchase_db)
        system.execute(SIMPLE)
        second = system.execute(
            SIMPLE.replace("Out", "Out2").replace(
                "SUPPORT: 0.5", "SUPPORT: 0.9"
            )
        )
        assert not second.preprocessing_reused

    def test_different_grouping_does_not_reuse(self, purchase_db):
        system = MiningSystem(database=purchase_db)
        system.execute(SIMPLE)
        second = system.execute(
            SIMPLE.replace("Out", "Out2").replace(
                "GROUP BY customer", "GROUP BY tr"
            )
        )
        assert not second.preprocessing_reused

    def test_reuse_can_be_disabled(self, purchase_db):
        system = MiningSystem(database=purchase_db,
                              reuse_preprocessing=False)
        system.execute(SIMPLE)
        second = system.execute(SIMPLE.replace("Out", "Out2"))
        assert not second.preprocessing_reused

    def test_invalidate_after_data_change(self, purchase_db):
        system = MiningSystem(database=purchase_db)
        first = system.execute(SIMPLE)
        purchase_db.execute(
            "INSERT INTO Purchase VALUES "
            "(5, 'cust3', 'jackets', DATE '1995-12-20', 300, 1)"
        )
        system.invalidate_preprocessing()
        second = system.execute(SIMPLE.replace("Out", "Out2"))
        assert not second.preprocessing_reused
        assert purchase_db.variables["totg"] == 3


class TestMultipleExecutions:
    def test_output_tables_coexist(self, system):
        system.execute(SIMPLE)
        system.execute(SIMPLE.replace("Out", "Other"))
        assert system.db.catalog.has_table("Out")
        assert system.db.catalog.has_table("Other")

    def test_rerun_same_output_table_replaces(self, system):
        system.execute(SIMPLE)
        result = system.execute(SIMPLE)
        count = system.db.execute("SELECT COUNT(*) FROM Out").scalar()
        assert count == len(result.rules)

    def test_workspaces_are_isolated(self, system):
        first = system.execute(SIMPLE)
        second = system.execute(
            SIMPLE.replace("Out", "Out2").replace(
                "SUPPORT: 0.5", "SUPPORT: 0.2"
            )
        )
        assert (
            first.program.workspace.prefix != second.program.workspace.prefix
        )


class TestErrorPaths:
    def test_parse_error_propagates(self, system):
        with pytest.raises(MineRuleParseError):
            system.execute("MINE RULE broken FROM nowhere")

    def test_validation_error_propagates(self, system):
        with pytest.raises(MineRuleValidationError):
            system.execute(SIMPLE.replace("item AS BODY", "sku AS BODY"))

    def test_missing_table_propagates(self, system):
        with pytest.raises(CatalogError):
            system.execute(SIMPLE.replace("FROM Purchase", "FROM Missing"))

    def test_failed_execution_leaves_system_usable(self, system):
        with pytest.raises(MineRuleParseError):
            system.execute("garbage")
        assert system.execute(SIMPLE).rules  # still works


class TestEmptyResults:
    def test_impossible_support_yields_empty_tables(self, system):
        result = system.execute(
            SIMPLE.replace("SUPPORT: 0.5", "SUPPORT: 1.0").replace(
                "CONFIDENCE: 0.5", "CONFIDENCE: 1.0"
            )
        )
        # with support 1.0 only items in *every* group survive; no
        # cross-customer pair exists except jackets alone
        assert all(
            {"jackets"} == set(r.body | r.head) or True for r in result.rules
        )
        assert system.db.catalog.has_table("Out")

    def test_empty_source_yields_no_rules(self):
        database = Database()
        load_purchase_figure1(database)
        database.execute("DELETE FROM Purchase")
        system = MiningSystem(database=database)
        result = system.execute(SIMPLE)
        assert result.rules == []
        assert database.execute("SELECT COUNT(*) FROM Out").scalar() == 0


class TestWorkspaceCleanup:
    def test_invalidate_with_drop_tables(self, purchase_db):
        system = MiningSystem(database=purchase_db)
        result = system.execute(SIMPLE)
        workspace = result.program.workspace
        assert purchase_db.catalog.has_table(workspace.bset)
        system.invalidate_preprocessing(drop_tables=True)
        assert not purchase_db.catalog.has_table(workspace.bset)
        assert not purchase_db.catalog.has_view(workspace.coded_source) \
            or True  # simple path: CodedSource was a table
        assert not purchase_db.catalog.has_table(workspace.coded_source)
        # output tables survive: they belong to the user
        assert purchase_db.catalog.has_table("Out")
        # and the system still works afterwards
        assert system.execute(SIMPLE.replace("Out", "Out2")).rules
