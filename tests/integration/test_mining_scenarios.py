"""End-to-end MINE RULE scenarios beyond the paper's worked example."""

import pytest

from repro import Database, MiningSystem
from repro.datagen import (
    QuestParameters,
    load_clickstream,
    load_purchase_figure1,
    load_purchase_synthetic,
    load_quest,
)


def template(**overrides):
    parts = dict(
        out="Out",
        select="1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE",
        mining="",
        source="FROM Purchase",
        group="GROUP BY customer",
        cluster="",
        extract="EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5",
    )
    parts.update(overrides)
    return (
        f"MINE RULE {parts['out']} AS SELECT DISTINCT {parts['select']} "
        f"{parts['mining']} {parts['source']} {parts['group']} "
        f"{parts['cluster']} {parts['extract']}"
    )


class TestSimpleScenarios:
    def test_simple_rules_on_figure1(self, system):
        result = system.execute(template())
        assert result.directives.simple
        assert all(len(r.head) == 1 for r in result.rules)
        assert all(r.support >= 0.5 for r in result.rules)
        assert all(r.confidence >= 0.5 for r in result.rules)

    def test_group_by_transaction_instead_of_customer(self, system):
        result = system.execute(template(group="GROUP BY tr"))
        # tr groups: support denominators over 4 transactions
        assert system.db.variables["totg"] == 4
        assert all(r.support >= 0.5 for r in result.rules)

    def test_multi_attribute_grouping(self, system):
        result = system.execute(template(group="GROUP BY customer, date"))
        assert system.db.variables["totg"] == 4

    def test_group_having_restricts_rule_extraction(self, system):
        with_having = system.execute(
            template(
                out="WithHaving",
                group="GROUP BY customer HAVING COUNT(*) >= 4",
            )
        )
        # only cust2 has >= 4 purchases; totg still counts both
        assert with_having.directives.G and with_having.directives.R
        assert all(r.support <= 0.5 for r in with_having.rules)

    def test_thresholds_monotone(self, system):
        loose = system.execute(
            template(extract="EXTRACTING RULES WITH SUPPORT: 0.2, "
                             "CONFIDENCE: 0.1")
        )
        tight = system.execute(
            template(out="Out2",
                     extract="EXTRACTING RULES WITH SUPPORT: 0.6, "
                             "CONFIDENCE: 0.9")
        )
        assert {(r.body, r.head) for r in tight.rules} <= {
            (r.body, r.head) for r in loose.rules
        }

    def test_source_condition_limits_input(self, system):
        result = system.execute(
            template(source="FROM Purchase WHERE price < 200")
        )
        items = {item for r in result.rules for item in r.body | r.head}
        assert "jackets" not in items  # price 300 filtered out


class TestGeneralScenarios:
    def test_mining_condition_without_clusters(self, system):
        result = system.execute(
            template(
                mining="WHERE BODY.price >= 100 AND HEAD.price < 100",
                extract="EXTRACTING RULES WITH SUPPORT: 0.2, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert result.directives.M and not result.directives.C
        prices = dict(
            system.db.query("SELECT DISTINCT item, price FROM Purchase")
        )
        for rule in result.rules:
            assert all(prices[i] >= 100 for i in rule.body)
            assert all(prices[i] < 100 for i in rule.head)

    def test_different_body_head_schemas(self, system):
        result = system.execute(
            template(
                select="1..1 item AS BODY, 1..1 price AS HEAD, "
                       "SUPPORT, CONFIDENCE",
                extract="EXTRACTING RULES WITH SUPPORT: 0.5, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert result.directives.H
        # heads are prices now
        assert all(
            isinstance(next(iter(r.head)), float) for r in result.rules
        )

    def test_clusters_without_condition_include_reversed_pairs(self, system):
        result = system.execute(
            template(
                select="1..1 item AS BODY, 1..1 item AS HEAD, "
                       "SUPPORT, CONFIDENCE",
                cluster="CLUSTER BY date",
                extract="EXTRACTING RULES WITH SUPPORT: 0.5, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert result.directives.C and not result.directives.K
        keys = {(r.body, r.head) for r in result.rules}
        assert (
            frozenset({"brown_boots"}),
            frozenset({"col_shirts"}),
        ) in keys
        # same-cluster pair: brown_boots and col_shirts on 12/18
        assert (
            frozenset({"col_shirts"}),
            frozenset({"brown_boots"}),
        ) in keys

    def test_cluster_condition_with_aggregates(self, system):
        result = system.execute(
            template(
                cluster="CLUSTER BY date "
                        "HAVING SUM(BODY.price) > SUM(HEAD.price)",
                extract="EXTRACTING RULES WITH SUPPORT: 0.2, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert result.directives.F
        # body clusters must have strictly larger price sums; the rules
        # are a subset of the unconditioned cluster run
        unconditioned = system.execute(
            template(
                out="Uncond",
                cluster="CLUSTER BY date",
                extract="EXTRACTING RULES WITH SUPPORT: 0.2, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert {(r.body, r.head) for r in result.rules} <= {
            (r.body, r.head) for r in unconditioned.rules
        }

    def test_paper_statement_without_mining_condition(self, system):
        """Clusters + cluster condition but no mining condition: the
        core derives elementary rules itself (Section 4.3.2)."""
        result = system.execute(
            template(
                select="1..n item AS BODY, 1..n item AS HEAD, "
                       "SUPPORT, CONFIDENCE",
                cluster="CLUSTER BY date HAVING BODY.date < HEAD.date",
                extract="EXTRACTING RULES WITH SUPPORT: 0.2, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert result.directives.K and not result.directives.M
        assert result.program.core.input_rules is None
        keys = {(r.body, r.head) for r in result.rules}
        # cust2: 12/18 {col_shirts, brown_boots, jackets} -> 12/19
        # {col_shirts, jackets}
        assert (
            frozenset({"brown_boots"}),
            frozenset({"col_shirts", "jackets"}),
        ) in keys

    def test_simple_equals_general_on_same_statement(self, purchase_db):
        """A simple statement forced through the general machinery (via
        a tautological mining condition) gives the same rules."""
        simple_system = MiningSystem(database=purchase_db)
        simple = simple_system.execute(
            template(extract="EXTRACTING RULES WITH SUPPORT: 0.5, "
                             "CONFIDENCE: 0.1")
        )
        general = simple_system.execute(
            template(
                out="OutG",
                mining="WHERE BODY.qty >= 1 AND HEAD.qty >= 1",
                extract="EXTRACTING RULES WITH SUPPORT: 0.5, "
                        "CONFIDENCE: 0.1",
            )
        )
        assert general.directives.general
        assert {(r.body, r.head, round(r.support, 9)) for r in simple.rules} \
            == {(r.body, r.head, round(r.support, 9)) for r in general.rules}


class TestLargerWorkloads:
    def test_quest_workload_end_to_end(self):
        system = MiningSystem()
        load_quest(
            system.db,
            QuestParameters(transactions=200, items=80, patterns=30, seed=3),
        )
        result = system.execute(
            "MINE RULE Q AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets "
            "GROUP BY tid EXTRACTING RULES WITH SUPPORT: 0.05, "
            "CONFIDENCE: 0.3"
        )
        assert result.rules
        assert all(0 < r.support <= 1 for r in result.rules)
        assert all(0 < r.confidence <= 1 for r in result.rules)
        assert all(r.support >= 0.05 - 1e-9 for r in result.rules)

    def test_synthetic_purchase_with_clusters(self):
        system = MiningSystem()
        load_purchase_synthetic(system.db, customers=25, days=5, seed=11)
        result = system.execute(
            "MINE RULE Seq AS SELECT DISTINCT 1..1 item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
            "FROM Purchase GROUP BY customer "
            "CLUSTER BY date HAVING BODY.date < HEAD.date "
            "EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.2"
        )
        assert result.directives.K
        assert all(r.confidence <= 1.0 + 1e-9 for r in result.rules)

    def test_clickstream_cross_schema(self):
        system = MiningSystem()
        load_clickstream(system.db, users=20, sessions_per_user=2, seed=4)
        result = system.execute(
            "MINE RULE X AS SELECT DISTINCT 1..1 page AS BODY, "
            "1..1 section AS HEAD, SUPPORT, CONFIDENCE "
            "WHERE BODY.section = 'product' AND HEAD.section <> 'product' "
            "FROM Clicks GROUP BY usr "
            "EXTRACTING RULES WITH SUPPORT: 0.15, CONFIDENCE: 0.2"
        )
        assert result.directives.H and result.directives.M
        sections = {s for (s,) in system.db.query(
            "SELECT DISTINCT section FROM Clicks")}
        for rule in result.rules:
            assert all(head in sections for head in rule.head)
            assert all(head != "product" for head in rule.head)


class TestAlgorithmInteroperability:
    """Section 3: the core operator accepts any pool algorithm."""

    @pytest.fixture(scope="class")
    def quest_db(self):
        database = Database()
        load_quest(
            database,
            QuestParameters(transactions=120, items=60, patterns=25, seed=8),
        )
        return database

    STATEMENT = (
        "MINE RULE A AS SELECT DISTINCT 1..n item AS BODY, "
        "1..1 item AS HEAD, SUPPORT, CONFIDENCE FROM Baskets "
        "GROUP BY tid EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.3"
    )

    @pytest.mark.parametrize(
        "algorithm", ["apriori", "aprioritid", "dhp", "partition", "sampling"]
    )
    def test_every_pool_algorithm_agrees_with_apriori(
        self, quest_db, algorithm
    ):
        reference = MiningSystem(
            database=quest_db, algorithm="apriori",
            reuse_preprocessing=False,
        ).execute(self.STATEMENT)
        candidate = MiningSystem(
            database=quest_db, algorithm=algorithm,
            reuse_preprocessing=False,
        ).execute(self.STATEMENT)
        assert candidate.rule_set() == reference.rule_set()
