"""The serving-mode monitoring endpoint, scraped like Prometheus would.

A hand-rolled exposition-format parser (no client library — the point
is to validate the bytes on the wire) checks ``/metrics`` for the
well-known series; ``/healthz`` is driven through a fault-injected
failing run and back to recovery; concurrent scrapes race against
active MINE RULE runs; and a fully-observed run (metrics + slow log +
JSON logging + tracing) must stay bit-identical to a plain run on the
golden statements.
"""

import io
import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import Database, MiningSystem, faults
from repro.faults import FaultSchedule
from repro.datagen import load_purchase_figure1
from repro.obs import (
    HealthState,
    JsonLogger,
    MetricsRegistry,
    SlowQueryLog,
    Tracer,
)
from repro.serve import MineRuleService
from tests.integration.test_golden_outputs import GOLDEN_STATEMENTS

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(.*)\})?\s+(\S+)$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def parse_prometheus(text):
    """Minimal exposition-format parser: {family: kind} and
    {series name: [(labels dict, value)]}."""
    types = {}
    samples = {}
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(None, 3)
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, labelstr, value = match.groups()
        labels = dict(LABEL_RE.findall(labelstr)) if labelstr else {}
        samples.setdefault(name, []).append((labels, float(value)))
    return types, samples


def fetch(url):
    """(status, body text); non-2xx statuses don't raise."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode()


@pytest.fixture
def service():
    svc = MineRuleService(scenario="purchase", port=0)
    with svc:
        yield svc


def mine(service, name="simple_associations"):
    output = service.feed(GOLDEN_STATEMENTS[name].strip() + ";\n")
    assert output is not None
    return output


def test_metrics_endpoint_exposes_wellknown_series(service):
    mine(service)
    status, body = fetch(service.monitor.url + "/metrics")
    assert status == 200
    types, samples = parse_prometheus(body)

    assert types["repro_sql_statement_seconds"] == "histogram"
    assert types["repro_preprocess_stage_seconds"] == "histogram"
    assert types["repro_minerule_runs_total"] == "counter"
    assert types["repro_sql_statements_total"] == "counter"

    # per-statement SQL latency, partitioned by statement kind
    kinds = {
        labels["kind"]
        for labels, _ in samples["repro_sql_statement_seconds_count"]
    }
    assert "Select" in kinds and "InsertSelect" in kinds

    # per-Q preprocessor stage timings
    stages = {
        labels["stage"]
        for labels, _ in samples["repro_preprocess_stage_seconds_count"]
    }
    assert "Q1" in stages

    # exactly one successful MINE RULE run so far
    assert samples["repro_minerule_runs_total"] == [({"status": "ok"}, 1.0)]

    # core-operator series exist (simple variant, apriori member)
    assert "repro_core_runs_total" in samples
    assert "repro_core_candidates_total" in samples


def test_histogram_invariants_on_the_wire(service):
    mine(service)
    _, body = fetch(service.monitor.url + "/metrics")
    _, samples = parse_prometheus(body)
    buckets = {}
    for labels, value in samples["repro_sql_statement_seconds_bucket"]:
        key = labels["kind"]
        buckets.setdefault(key, []).append((labels["le"], value))
    counts = dict(
        (labels["kind"], value)
        for labels, value in samples["repro_sql_statement_seconds_count"]
    )
    for kind, series in buckets.items():
        values = [v for _, v in series]
        assert values == sorted(values), kind  # cumulative, non-decreasing
        assert series[-1][0] == "+Inf"
        assert series[-1][1] == counts[kind]  # +Inf bucket == count


def test_healthz_flips_to_503_on_failing_run_and_recovers(service):
    status, body = fetch(service.monitor.url + "/healthz")
    assert status == 200

    faults.install(FaultSchedule.parse("postprocessor.store:1*9"))
    try:
        output = mine(service)
        assert "error" in output
        status, body = fetch(service.monitor.url + "/healthz")
        assert status == 503
        payload = json.loads(body)
        assert payload["status"] == "failing"
        assert payload["failures"] == 1
        assert "postprocessor.store" in payload["last_error"]
    finally:
        faults.uninstall()

    # the next successful run clears the condition
    mine(service)
    status, body = fetch(service.monitor.url + "/healthz")
    assert status == 200
    assert json.loads(body)["status"] == "ok"

    # ... and both outcomes are on the counter
    _, metrics_body = fetch(service.monitor.url + "/metrics")
    _, samples = parse_prometheus(metrics_body)
    outcomes = dict(
        (labels["status"], value)
        for labels, value in samples["repro_minerule_runs_total"]
    )
    assert outcomes == {"error": 1.0, "ok": 1.0}


def test_stats_and_trace_endpoints_are_valid_json(service):
    mine(service)
    status, body = fetch(service.monitor.url + "/stats.json")
    assert status == 200
    stats = json.loads(body)
    assert stats["health"]["status"] == "ok"
    assert stats["statements_executed"] > 0
    assert "repro_minerule_run_seconds" in stats["metrics"]

    status, body = fetch(service.monitor.url + "/trace.json")
    assert status == 200
    trace = json.loads(body)
    names = {e["name"] for e in trace["traceEvents"]}
    assert "minerule.run" in names

    status, body = fetch(service.monitor.url + "/nope")
    assert status == 404


def test_concurrent_scrapes_during_active_runs(service):
    """Scrapes racing MINE RULE runs must neither error nor observe a
    corrupted histogram (cumulative buckets stay monotone)."""
    errors = []
    stop = threading.Event()

    def scrape():
        while not stop.is_set():
            try:
                status, body = fetch(service.monitor.url + "/metrics")
                assert status == 200
                _, samples = parse_prometheus(body)
                for labels, value in samples.get(
                    "repro_sql_statement_seconds_bucket", []
                ):
                    assert value >= 0
            except Exception as exc:  # noqa: BLE001 - collected for the test
                errors.append(exc)
                return

    scrapers = [threading.Thread(target=scrape) for _ in range(4)]
    for thread in scrapers:
        thread.start()
    try:
        for name in ("simple_associations", "filtered_ordered_sets",
                     "ordered_sets"):
            mine(service, name)
    finally:
        stop.set()
        for thread in scrapers:
            thread.join()
    assert errors == []


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_fully_observed_run_is_bit_identical(name):
    """Metrics + slow log + JSON logging + tracing enabled together
    must not change the mined rules."""
    plain_db = Database()
    load_purchase_figure1(plain_db)
    plain = MiningSystem(database=plain_db).run(GOLDEN_STATEMENTS[name])

    observed_db = Database()
    load_purchase_figure1(observed_db)
    registry = MetricsRegistry()
    system = MiningSystem(
        database=observed_db,
        tracer=Tracer(enabled=True, analyze=True, metrics=registry),
        metrics=registry,
        slowlog=SlowQueryLog(threshold=0.0),  # record everything
        health=HealthState(),
    )
    system.json_log = JsonLogger(stream=io.StringIO())
    observed = system.run(GOLDEN_STATEMENTS[name])

    assert observed.rule_set() == plain.rule_set()
    assert system.health.ok
    assert system.slowlog.total_recorded > 0
    assert registry.get("repro_minerule_run_seconds") is not None
