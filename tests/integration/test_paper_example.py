"""Exact reproduction of the paper's worked example (FIG1, FIG2a, FIG2b).

These are the acceptance tests of the reproduction: the Purchase table
of Figure 1, its grouping/clustering of Figure 2a, and the
FilteredOrderedSets output of Figure 2b must match the paper verbatim.
"""

import datetime

import pytest

from repro import MiningSystem
from repro.datagen import figure1_rows, load_purchase_figure1


@pytest.fixture
def result(system, paper_statement):
    return system.execute(paper_statement)


class TestFigure1:
    def test_exact_rows(self, purchase_db):
        rows = purchase_db.query(
            "SELECT tr, customer, item, date, price, qty FROM Purchase"
        )
        assert rows == figure1_rows()

    def test_row_count_and_schema(self, purchase_db):
        table = purchase_db.table("Purchase")
        assert len(table) == 8
        assert table.columns == ("tr", "customer", "item", "date", "price",
                                 "qty")


class TestFigure2a:
    """The grouping by customer and clustering by date of Figure 2a."""

    def test_groups(self, purchase_db):
        rows = purchase_db.query(
            "SELECT customer, COUNT(*) FROM Purchase GROUP BY customer "
            "ORDER BY customer"
        )
        assert rows == [("cust1", 3), ("cust2", 5)]

    def test_clusters_within_groups(self, purchase_db):
        rows = purchase_db.query(
            "SELECT customer, date, COUNT(*) FROM Purchase "
            "GROUP BY customer, date ORDER BY customer, date"
        )
        assert rows == [
            ("cust1", datetime.date(1995, 12, 17), 2),
            ("cust1", datetime.date(1995, 12, 18), 1),
            ("cust2", datetime.date(1995, 12, 18), 3),
            ("cust2", datetime.date(1995, 12, 19), 2),
        ]


class TestFigure2b:
    """The output table FilteredOrderedSets, exactly as printed."""

    EXPECTED = {
        (frozenset({"brown_boots"}), frozenset({"col_shirts"}), 0.5, 1.0),
        (frozenset({"jackets"}), frozenset({"col_shirts"}), 0.5, 0.5),
        (
            frozenset({"brown_boots", "jackets"}),
            frozenset({"col_shirts"}),
            0.5,
            1.0,
        ),
    }

    def test_exact_rule_set(self, result):
        assert result.rule_set() == self.EXPECTED

    def test_exactly_three_rules(self, result):
        assert len(result.rules) == 3

    def test_directive_vector(self, result):
        d = result.directives
        assert (d.H, d.W, d.M, d.G, d.C, d.K, d.F, d.R) == (
            False, True, True, False, True, True, False, False,
        )
        assert d.general

    def test_output_table_stored_in_database(self, system, result):
        rows = system.db.query(
            "SELECT BodyId, HeadId, SUPPORT, CONFIDENCE "
            "FROM FilteredOrderedSets"
        )
        assert len(rows) == 3
        assert {row[2] for row in rows} == {0.5}
        assert sorted(row[3] for row in rows) == [0.5, 1.0, 1.0]

    def test_normalized_bodies_decode(self, system, result):
        rows = system.db.query(
            "SELECT BodyId, item FROM FilteredOrderedSets_Bodies "
            "ORDER BY BodyId, item"
        )
        bodies = {}
        for body_id, item in rows:
            bodies.setdefault(body_id, set()).add(item)
        assert sorted(bodies.values(), key=sorted) == [
            {"brown_boots"},
            {"brown_boots", "jackets"},
            {"jackets"},
        ]

    def test_normalized_heads_decode(self, system, result):
        rows = system.db.query(
            "SELECT HeadId, item FROM FilteredOrderedSets_Heads"
        )
        assert {item for _, item in rows} == {"col_shirts"}

    def test_display_table_matches_figure(self, system, result):
        rows = system.db.query(
            "SELECT BODY, HEAD, SUPPORT, CONFIDENCE "
            "FROM FilteredOrderedSets_Display"
        )
        assert set(rows) == {
            ("{brown_boots}", "{col_shirts}", 0.5, 1.0),
            ("{jackets}", "{col_shirts}", 0.5, 0.5),
            ("{brown_boots,jackets}", "{col_shirts}", 0.5, 1.0),
        }

    def test_rules_queryable_with_sql(self, system, result):
        count = system.db.execute(
            "SELECT COUNT(*) FROM FilteredOrderedSets WHERE CONFIDENCE = 1"
        ).scalar()
        assert count == 2


class TestPaperExampleInternals:
    """The encoded tables the preprocessor builds for the example."""

    def test_totg_counts_both_customers(self, system, result):
        assert system.db.variables["totg"] == 2
        assert system.db.variables["mingroups"] == 1

    def test_cluster_encoding(self, system, result):
        names = result.program.workspace
        rows = system.db.query(
            f"SELECT Gid, date FROM {names.clusters} ORDER BY Gid, date"
        )
        # 2 clusters for cust1 (12/17, 12/18), 2 for cust2 (12/18, 12/19)
        assert len(rows) == 4

    def test_cluster_couples_are_date_ordered(self, system, result):
        names = result.program.workspace
        couples = system.db.query(
            f"SELECT C.Gid, BC.date, HC.date "
            f"FROM {names.cluster_couples} C, {names.clusters} BC, "
            f"{names.clusters} HC "
            f"WHERE C.BCid = BC.Cid AND C.HCid = HC.Cid"
        )
        assert couples  # at least one valid pair
        assert all(body_date < head_date for _, body_date, head_date in couples)

    def test_input_rules_respect_mining_condition(self, system, result):
        names = result.program.workspace
        # decode elementary rules back to item names and check prices
        rows = system.db.query(
            f"SELECT B.item, H.item FROM {names.input_rules} R, "
            f"{names.bset} B, {names.bset} H "
            f"WHERE R.Bid = B.Bid AND R.Hid = H.Bid"
        )
        assert rows
        prices = dict(
            system.db.query("SELECT DISTINCT item, price FROM Purchase")
        )
        for body_item, head_item in rows:
            assert prices[body_item] >= 100
            assert prices[head_item] < 100

    def test_rerun_is_idempotent(self, system, paper_statement, result):
        again = system.execute(paper_statement)
        assert again.rule_set() == result.rule_set()
