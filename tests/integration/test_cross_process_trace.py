"""Cross-process trace collection (PR 10 tentpole).

A ``workers=2`` traced run must produce ONE Chrome trace holding the
parent pipeline spans AND the shard workers' child spans — recorded in
the worker processes, shipped back with the shard results and spliced
under the ``core.shards.local`` / ``core.shards.recount`` phase spans
— all sharing the run's trace id, with per-span CPU attribution and
per-worker pid lanes.  Under both fork and spawn start methods, and
with tracing on the mined output stays bit-identical to the goldens.
"""

import os
import sys

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.obs import TraceContext, Tracer, activated, trace_events
from repro.sqlengine.dump import dump_table_text
from tests.integration.test_golden_outputs import (
    GOLDEN_DIR,
    GOLDEN_STATEMENTS,
)

STATEMENT = "simple_associations"


def _golden_text(table):
    return (
        GOLDEN_DIR / f"{STATEMENT}__{table}.golden.txt"
    ).read_text(encoding="utf-8")


def _traced_run(start_method):
    database = Database()
    load_purchase_figure1(database)
    tracer = Tracer(enabled=True)
    system = MiningSystem(
        database=database,
        workers=2,
        shard_start_method=start_method,
        tracer=tracer,
    )
    with activated(TraceContext(trace_id="trace-xproc")) as context:
        result = system.run(GOLDEN_STATEMENTS[STATEMENT])
    return database, tracer, context, result


def _check_cross_process_trace(start_method):
    database, tracer, context, result = _traced_run(start_method)

    # tracing never changes the mined output
    out = result.output_table
    for table in (out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"):
        assert dump_table_text(database, table) == _golden_text(table)

    spans = {span.name: span for span in tracer.spans}
    assert "core.shards.local" in spans
    assert "core.shards.recount" in spans

    # child spans recorded inside the worker processes, spliced under
    # the owning phase span
    locals_ = [
        s for s in tracer.spans
        if s.name.startswith("core.shard.") and s.name.endswith(".local")
    ]
    recounts = [
        s for s in tracer.spans
        if s.name.startswith("core.shard.") and s.name.endswith(".recount")
    ]
    assert len(locals_) == 2 and len(recounts) == 2
    for span in locals_:
        assert span.parent_id == spans["core.shards.local"].span_id
    for span in recounts:
        assert span.parent_id == spans["core.shards.recount"].span_id

    # one trace id across parent and children; CPU attributed per span
    for span in locals_ + recounts:
        assert span.trace_id == "trace-xproc"
        assert span.cpu is not None and span.cpu >= 0.0

    degraded = any(e.action == "degraded" for e in result.flow.events)
    if not degraded:
        # real worker processes: child spans carry the workers' pids
        child_pids = {span.pid for span in locals_ + recounts}
        assert os.getpid() not in child_pids

    # the exported trace shows the whole fan-out: parent lane plus
    # labelled worker lanes, every X event on this run's trace id
    events = trace_events(tracer, trace_id="trace-xproc")
    x_events = [e for e in events if e["ph"] == "X"]
    assert all(
        e["args"]["trace_id"] == "trace-xproc" for e in x_events
    )
    if not degraded:
        lanes = {e["pid"] for e in x_events}
        assert len(lanes) >= 2
        worker_labels = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert any(
            label.startswith("repro shard worker ")
            for label in worker_labels
        )


def test_cross_process_trace_fork():
    if sys.platform == "win32":  # pragma: no cover - POSIX CI
        pytest.skip("fork start method is POSIX-only")
    _check_cross_process_trace("fork")


def test_cross_process_trace_spawn():
    _check_cross_process_trace("spawn")


def test_untraced_sharded_run_records_no_child_events():
    database = Database()
    load_purchase_figure1(database)
    system = MiningSystem(database=database, workers=2)
    result = system.run(GOLDEN_STATEMENTS[STATEMENT])
    out = result.output_table
    assert dump_table_text(database, out) == _golden_text(out)
