"""MINE RULE over several source tables (the W directive's join case).

"SQL is used in the extraction of the source data (by means of an
unrestricted query on the database)" — the FROM list may join a
normalized schema; query Q0 materializes the join into Source.
"""

import datetime

import pytest

from repro import Database, MiningSystem
from repro.sqlengine.types import SqlType


@pytest.fixture
def normalized_db():
    """Figure 1's data, normalized into three tables."""
    db = Database()
    db.create_table_from_rows(
        "Customers",
        ("cust_id", "cname"),
        [(1, "cust1"), (2, "cust2")],
        (SqlType.INTEGER, SqlType.VARCHAR),
    )
    db.create_table_from_rows(
        "Transactions",
        ("tr", "cust_id", "tdate"),
        [
            (1, 1, datetime.date(1995, 12, 17)),
            (2, 2, datetime.date(1995, 12, 18)),
            (3, 1, datetime.date(1995, 12, 18)),
            (4, 2, datetime.date(1995, 12, 19)),
        ],
        (SqlType.INTEGER, SqlType.INTEGER, SqlType.DATE),
    )
    db.create_table_from_rows(
        "Lines",
        ("line_tr", "item", "price", "qty"),
        [
            (1, "ski_pants", 140.0, 1),
            (1, "hiking_boots", 180.0, 1),
            (2, "col_shirts", 25.0, 2),
            (2, "brown_boots", 150.0, 1),
            (2, "jackets", 300.0, 1),
            (3, "jackets", 300.0, 1),
            (4, "col_shirts", 25.0, 3),
            (4, "jackets", 300.0, 2),
        ],
        (SqlType.INTEGER, SqlType.VARCHAR, SqlType.REAL, SqlType.INTEGER),
    )
    return db


PAPER_OVER_JOIN = """
MINE RULE JoinedSets AS
SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
WHERE BODY.price >= 100 AND HEAD.price < 100
FROM Customers c, Transactions t, Lines l
WHERE c.cust_id = t.cust_id AND t.tr = l.line_tr
GROUP BY cname
CLUSTER BY tdate HAVING BODY.tdate < HEAD.tdate
EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3
"""


class TestJoinedSource:
    def test_paper_example_over_normalized_schema(self, normalized_db):
        """The Figure 2b result must come out of the 3-table join too."""
        system = MiningSystem(database=normalized_db)
        result = system.execute(PAPER_OVER_JOIN)
        assert result.directives.W
        assert result.rule_set() == {
            (frozenset({"brown_boots"}), frozenset({"col_shirts"}),
             0.5, 1.0),
            (frozenset({"jackets"}), frozenset({"col_shirts"}), 0.5, 0.5),
            (frozenset({"brown_boots", "jackets"}),
             frozenset({"col_shirts"}), 0.5, 1.0),
        }

    def test_q0_materializes_the_join(self, normalized_db):
        system = MiningSystem(database=normalized_db)
        result = system.execute(PAPER_OVER_JOIN)
        assert "Q0" in result.program.labels()
        source = result.program.workspace.source
        assert (
            normalized_db.execute(
                f"SELECT COUNT(*) FROM {source}"
            ).scalar()
            == 8
        )

    def test_two_table_simple_statement(self, normalized_db):
        system = MiningSystem(database=normalized_db)
        result = system.execute(
            "MINE RULE TwoTables AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
            "FROM Transactions t, Lines l WHERE t.tr = l.line_tr "
            "GROUP BY tr "
            "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
        )
        assert result.directives.W and result.directives.simple
        assert normalized_db.variables["totg"] == 4
        assert result.rules

    def test_join_filter_in_source_condition(self, normalized_db):
        system = MiningSystem(database=normalized_db)
        result = system.execute(
            "MINE RULE Cheap AS SELECT DISTINCT 1..n item AS BODY, "
            "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
            "FROM Transactions t, Lines l "
            "WHERE t.tr = l.line_tr AND l.price < 200 "
            "GROUP BY cust_id "
            "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.1"
        )
        items = {i for r in result.rules for i in r.body | r.head}
        assert "jackets" not in items

    def test_validation_sees_union_of_schemas(self, normalized_db):
        from repro.minerule import MineRuleValidationError

        system = MiningSystem(database=normalized_db)
        with pytest.raises(MineRuleValidationError):
            system.execute(
                "MINE RULE Bad AS SELECT DISTINCT 1..n missing AS BODY, "
                "1..1 item AS HEAD, SUPPORT, CONFIDENCE "
                "FROM Transactions t, Lines l WHERE t.tr = l.line_tr "
                "GROUP BY tr "
                "EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5"
            )
