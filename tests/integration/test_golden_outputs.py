"""Golden end-to-end outputs for the Appendix-A statements.

Each statement's three output relations (``<out>``, ``<out>_Bodies``,
``<out>_Heads``) plus the display table are rendered with the
deterministic dump format and compared byte-for-byte against files
checked into ``tests/integration/golden/``.  Any change to the
pipeline that alters mined output — rule sets, identifier assignment,
support/confidence arithmetic, serialization — shows up as a readable
text diff.

To regenerate after an intentional change::

    PYTHONPATH=src python -m pytest tests/integration/test_golden_outputs.py --update-golden
"""

from pathlib import Path

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.sqlengine.dump import dump_table_text

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Appendix-A worked example (Section 2 / Figure 2) plus the two
#: simpler classifications it degenerates into
GOLDEN_STATEMENTS = {
    # the paper's full example: mining condition + CLUSTER BY
    "filtered_ordered_sets": (
        "MINE RULE FilteredOrderedSets AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "WHERE BODY.price >= 100 AND HEAD.price < 100 "
        "FROM Purchase "
        "WHERE date BETWEEN DATE '1995-01-01' AND DATE '1995-12-31' "
        "GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
    # plain intra-group associations (simple core processing)
    "simple_associations": (
        "MINE RULE SimpleAssociations AS "
        "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
    ),
    # ordered sets: CLUSTER BY without a mining condition
    "ordered_sets": (
        "MINE RULE OrderedSets AS "
        "SELECT DISTINCT 1..1 item AS BODY, 1..1 item AS HEAD, "
        "SUPPORT, CONFIDENCE "
        "FROM Purchase GROUP BY customer "
        "CLUSTER BY date HAVING BODY.date < HEAD.date "
        "EXTRACTING RULES WITH SUPPORT: 0.08, CONFIDENCE: 0.2"
    ),
}


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")


@pytest.mark.parametrize("name", sorted(GOLDEN_STATEMENTS))
def test_golden_output_relations(name, update_golden):
    database = Database()
    load_purchase_figure1(database)
    system = MiningSystem(database=database)
    result = system.run(GOLDEN_STATEMENTS[name])
    out = result.output_table

    mismatches = []
    for table in (out, f"{out}_Bodies", f"{out}_Heads", f"{out}_Display"):
        text = dump_table_text(database, table)
        path = GOLDEN_DIR / f"{name}__{table}.golden.txt"
        if update_golden:
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            continue
        assert path.exists(), (
            f"golden file {path.name} missing — generate it with "
            f"pytest --update-golden"
        )
        expected = path.read_text(encoding="utf-8")
        if text != expected:
            mismatches.append(f"{table}:\n--- expected\n{expected}"
                              f"--- actual\n{text}")
    assert not mismatches, "\n".join(mismatches)


def test_golden_files_are_committed():
    """Guards against an accidentally empty golden directory (e.g. a
    bad --update-golden run deleting everything)."""
    files = sorted(GOLDEN_DIR.glob("*.golden.txt"))
    assert len(files) == 4 * len(GOLDEN_STATEMENTS)
    for path in files:
        content = path.read_text(encoding="utf-8")
        assert content.strip(), f"{path.name} is empty"
