"""Concurrency stress battery: N client threads, one database.

The acceptance gate of the concurrent-service work: 8 client threads
submit a mixed workload (MINE RULE + DML + scans) against one shared
:class:`MiningSystem` through the job service, and

* every MINE RULE job's rule output is **bit-identical** to running
  the same statement serially on an equivalent database;
* concurrent scans never observe a torn write (a CASE transfer update
  that preserves an invariant SUM);
* concurrent increments never lose an update;
* the job metrics series (``repro_jobs_queue_depth``,
  ``repro_job_seconds``) are live during the run.

The DML targets tables disjoint from the mining input (``Purchase``
stays untouched), so the serial baseline is well-defined no matter how
the scheduler interleaves the jobs.
"""

import threading

import pytest

from repro import Database, MiningSystem
from repro.datagen import load_purchase_figure1
from repro.jobs import DONE, JobService
from repro.obs.metrics import MetricsRegistry
from repro.sqlengine.dump import dump_table_text

CLIENTS = 8
INCREMENTS_PER_CLIENT = 5
TRANSFERS_PER_CLIENT = 5

#: every client mines with its own output table so concurrent runs
#: never collide on output relations
MINE_TEMPLATE = (
    "MINE RULE Stress{n} AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "FROM Purchase GROUP BY customer "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
)

GENERAL_TEMPLATE = (
    "MINE RULE StressGeneral{n} AS "
    "SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, "
    "SUPPORT, CONFIDENCE "
    "WHERE BODY.price >= 100 AND HEAD.price < 100 "
    "FROM Purchase GROUP BY customer "
    "CLUSTER BY date HAVING BODY.date < HEAD.date "
    "EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3"
)


def make_database() -> Database:
    database = Database()
    load_purchase_figure1(database)
    database.execute("CREATE TABLE Bank (id INTEGER, amount INTEGER)")
    database.execute("INSERT INTO Bank VALUES (1, 150)")
    database.execute("INSERT INTO Bank VALUES (2, 50)")
    database.execute("CREATE TABLE Tally (n INTEGER)")
    database.execute("INSERT INTO Tally VALUES (0)")
    return database


def client_statements(client: int):
    """The mixed statement stream of one client thread."""
    statements = [MINE_TEMPLATE.format(n=client)]
    if client % 2 == 0:
        statements.append(GENERAL_TEMPLATE.format(n=client))
    for i in range(TRANSFERS_PER_CLIENT):
        sign = 10 if (client + i) % 2 == 0 else -10
        statements.append(
            "UPDATE Bank SET amount = CASE id "
            f"WHEN 1 THEN amount - {sign} "
            f"ELSE amount + {sign} END"
        )
    statements.extend(
        "UPDATE Tally SET n = n + 1"
        for _ in range(INCREMENTS_PER_CLIENT)
    )
    statements.extend(
        "SELECT SUM(amount) AS total FROM Bank" for _ in range(3)
    )
    return statements


@pytest.fixture(scope="module")
def serial_baseline():
    """Rule sets + display dumps of every mine statement, serially."""
    database = make_database()
    system = MiningSystem(database=database, reuse_preprocessing=False)
    baseline = {}
    for client in range(CLIENTS):
        statements = [MINE_TEMPLATE.format(n=client)]
        if client % 2 == 0:
            statements.append(GENERAL_TEMPLATE.format(n=client))
        for statement in statements:
            result = system.run(statement)
            out = result.output_table
            baseline[out] = (
                result.rule_set(),
                dump_table_text(database, f"{out}_Display"),
            )
    return baseline


def test_eight_thread_mixed_stress(serial_baseline):
    registry = MetricsRegistry()
    database = make_database()
    system = MiningSystem(database=database, reuse_preprocessing=False)
    service = JobService(
        system, workers=CLIENTS, queue_size=256, metrics=registry
    )
    submitted = []
    submitted_lock = threading.Lock()
    errors = []

    def client(n):
        try:
            jobs = [
                service.submit(statement)
                for statement in client_statements(n)
            ]
            with submitted_lock:
                submitted.extend(jobs)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    with service:
        threads = [
            threading.Thread(target=client, args=(n,))
            for n in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        finished = [service.wait(job.id, timeout=300) for job in submitted]

    # -- every job completed --------------------------------------------
    assert all(job.state == DONE for job in finished), [
        (job.id, job.state, job.error)
        for job in finished
        if job.state != DONE
    ]

    # -- every mine job bit-identical to its serial execution -----------
    mine_jobs = [job for job in finished if job.kind == "mine"]
    assert len(mine_jobs) == CLIENTS + CLIENTS // 2
    for job in mine_jobs:
        out = job.result["output_table"]
        expected_rules, expected_display = serial_baseline[out]
        got_rules = {
            (frozenset(body), frozenset(head), support, confidence)
            for body, head, support, confidence in job.result["rules"]
        }
        assert got_rules == expected_rules, f"{out}: rule set diverged"
        assert job.result["display"] == expected_display, (
            f"{out}: display dump diverged from serial execution"
        )
        # the stored output relation survives concurrent runs intact
        assert (
            dump_table_text(database, f"{out}_Display")
            == expected_display
        )

    # -- no torn reads: every concurrent SUM saw the invariant ----------
    sums = [
        job.result["rows"][0][0]
        for job in finished
        if job.kind == "sql" and job.statement.startswith("SELECT SUM")
    ]
    assert sums and set(sums) == {200}

    # -- no lost updates: every increment landed ------------------------
    assert database.query("SELECT n FROM Tally") == [
        (CLIENTS * INCREMENTS_PER_CLIENT,)
    ]
    # transfers are balanced per client, so the final state is exact
    assert database.query(
        "SELECT SUM(amount) FROM Bank"
    ) == [(200,)]

    # -- job metrics series live during the run -------------------------
    snapshot = registry.snapshot()
    assert "repro_jobs_queue_depth" in snapshot
    job_seconds = snapshot["repro_job_seconds"]["samples"]
    observed = {
        (labels["kind"], labels["status"])
        for labels, in ((s["labels"],) for s in job_seconds)
    }
    assert ("mine", "done") in observed
    assert ("sql", "done") in observed
    totals = {
        s["labels"]["status"]: s["value"]
        for s in snapshot["repro_jobs_total"]["samples"]
    }
    assert totals["done"] == len(finished)


def test_concurrent_reads_share_the_engine(serial_baseline):
    """Read-only SQL jobs proceed in parallel (shared read lock):
    with workers parked inside slow scans, the engine must report
    multiple concurrent readers at least once."""
    import time

    database = make_database()
    database.execute("CREATE TABLE Big (k INTEGER, v INTEGER)")
    for i in range(400):
        database.execute(f"INSERT INTO Big VALUES ({i % 20}, {i})")
    system = MiningSystem(database=database)
    service = JobService(system, workers=4, queue_size=64)
    peak = {"readers": 0}
    stop = threading.Event()

    def watch():
        while not stop.is_set():
            status = database.rwlock.status()
            peak["readers"] = max(peak["readers"], status["readers"])
            time.sleep(0.001)

    watcher = threading.Thread(target=watch)
    watcher.start()
    try:
        with service:
            jobs = [
                service.submit(
                    "SELECT b1.k, COUNT(*) AS pairs "
                    "FROM Big b1, Big b2 "
                    "WHERE b1.v < b2.v GROUP BY b1.k"
                )
                for _ in range(12)
            ]
            finished = [service.wait(job.id, timeout=300) for job in jobs]
    finally:
        stop.set()
        watcher.join()
    assert all(job.state == DONE for job in finished)
    first = finished[0].result["rows"]
    assert all(job.result["rows"] == first for job in finished)
    assert peak["readers"] >= 2, "scans never overlapped"
