"""The run-history registry end-to-end, over real HTTP sockets.

Boots the full serving stack with a ``--run-log`` journal and checks
the persistent run history the way a client sees it:

* a mine job executed over ``POST /jobs`` shows up in ``GET /runs``
  with its outcome, stage timings and the job's trace id;
* ``GET /runs/<id>/trace`` serves the run's own Chrome trace slice,
  including the shard workers' child spans on a ``workers=2`` run;
* after stopping the service and starting a NEW one on the same
  journal file, ``GET /runs`` still returns the history and the jobs
  table is rehydrated (``GET /jobs`` shows the finished job);
* the slow-query view in ``/stats.json`` carries the correlation ids.
"""

import json

import pytest

from repro.serve import MineRuleService
from tests.integration.test_golden_outputs import GOLDEN_STATEMENTS
from tests.integration.test_jobs_http import request, wait_job


@pytest.fixture
def journal(tmp_path):
    return str(tmp_path / "runs.ndjson")


def test_run_history_survives_restart(journal):
    svc = MineRuleService(
        scenario="purchase", port=0, run_log=journal, workers=2,
        slow_threshold=0.0,
    )
    with svc:
        base = svc.monitor.url
        status, payload = request(
            "POST", f"{base}/jobs",
            {"statement": GOLDEN_STATEMENTS["simple_associations"]},
        )
        assert status == 201, payload
        job = wait_job(base, payload["job"]["id"])
        assert job["state"] == "done"
        assert job["trace_id"]

        # the run landed in the history with the job's ids
        status, runs = request("GET", f"{base}/runs")
        assert status == 200
        assert runs["total"] == 1
        (run,) = runs["runs"]
        assert run["kind"] == "mine"
        assert run["status"] == "ok"
        assert run["job_id"] == job["id"]
        assert run["trace_id"] == job["trace_id"]
        assert run["rules"] > 0
        assert "core" in run["stages"]
        assert run["cpu_seconds"] >= 0.0

        # full record and the run's own trace slice
        status, record = request("GET", f"{base}/runs/{run['id']}")
        assert status == 200
        assert record["fingerprint"] == run["fingerprint"]
        status, trace = request("GET", f"{base}/runs/{run['id']}/trace")
        assert status == 200
        names = {
            e["name"] for e in trace["traceEvents"] if e["ph"] == "X"
        }
        assert "minerule.run" in names
        assert any(n.startswith("core.shard.") for n in names)
        assert all(
            e["args"]["trace_id"] == run["trace_id"]
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        )

        # slow-query correlation (threshold 0 keeps everything)
        status, stats = request("GET", f"{base}/stats.json")
        assert status == 200
        mine_rows = [
            row for row in stats["slow_queries"]
            if row["name"] == "minerule.run"
        ]
        assert mine_rows and mine_rows[0]["trace_id"] == run["trace_id"]
        assert mine_rows[0]["job_id"] == job["id"]

        status, _ = request("GET", f"{base}/runs/nope")
        assert status == 404
        run_id = run["id"]
        job_id = job["id"]

    # a NEW service on the same journal: history survives the restart
    reborn = MineRuleService(scenario="purchase", port=0, run_log=journal)
    with reborn:
        base = reborn.monitor.url
        status, runs = request("GET", f"{base}/runs")
        assert status == 200
        assert [r["id"] for r in runs["runs"]] == [run_id]
        status, trace = request("GET", f"{base}/runs/{run_id}/trace")
        assert status == 200
        assert trace["traceEvents"]

        # the jobs table was rehydrated from the journal
        status, jobs = request("GET", f"{base}/jobs")
        assert status == 200
        restored = [j for j in jobs["jobs"] if j["id"] == job_id]
        assert restored and restored[0]["state"] == "done"

        # and new submissions don't collide with restored ids
        status, payload = request("POST", f"{base}/jobs", "SELECT 1")
        assert status == 201
        assert payload["job"]["id"] != job_id
        done = wait_job(base, payload["job"]["id"])
        assert done["state"] == "done"

        # the SQL job was journalled too
        status, runs = request("GET", f"{base}/runs?kind=sql")
        assert status == 200
        assert len(runs["runs"]) == 1
        assert runs["runs"][0]["job_id"] == payload["job"]["id"]


def test_runs_endpoint_limit_and_unmounted(tmp_path):
    svc = MineRuleService(scenario="purchase", port=0)
    with svc:
        base = svc.monitor.url
        # in-memory journal: /runs is mounted and starts empty
        status, runs = request("GET", f"{base}/runs")
        assert status == 200 and runs["runs"] == []
        for n in range(3):
            _, payload = request("POST", f"{base}/jobs", f"SELECT {n}")
            wait_job(base, payload["job"]["id"])
        status, runs = request("GET", f"{base}/runs?limit=2")
        assert status == 200 and len(runs["runs"]) == 2
        status, runs = request("GET", f"{base}/runs?kind=mine")
        assert status == 200 and runs["runs"] == []
