"""Tests of the runnable reproduction suite (repro.experiments)."""

import pytest

from repro.experiments import ExperimentSuite, generate_report


@pytest.fixture(scope="module")
def records():
    return ExperimentSuite().run_all()


class TestSuite:
    def test_all_experiments_run(self, records):
        assert [r.id for r in records] == [
            "FIG1", "FIG2", "FIG3", "FIG4",
            "SYN-1", "SYN-2", "SYN-3", "SYN-4",
        ]

    def test_figures_are_exact_or_reproduced(self, records):
        by_id = {r.id: r for r in records}
        assert by_id["FIG1"].status == "exact match"
        assert by_id["FIG2"].status == "exact match"
        assert by_id["FIG3"].status == "reproduced"
        assert by_id["FIG4"].status == "reproduced"

    def test_syn_experiments_measured(self, records):
        for record in records:
            if record.id.startswith("SYN"):
                assert record.status == "measured"
                assert record.details

    def test_timings_recorded(self, records):
        assert all(r.seconds >= 0 for r in records)

    def test_report_renders_markdown(self, records):
        text = generate_report()
        assert text.startswith("# Reproduction report")
        for record_id in ("FIG1", "FIG2", "SYN-4"):
            assert f"## {record_id}" in text

    def test_record_render(self, records):
        text = records[0].render()
        assert text.startswith("## FIG1")
        assert "status" in text
