"""Deterministic fault injection (the chaos layer).

The paper's tightly-coupled design executes each MINE RULE statement as
a multi-stage pipeline of DB round-trips (the Translator's Q0..Q11
program, the core operator, the postprocessor's decode writes).  A
production deployment of that pipeline meets transient failures at
every one of those round-trips, so the reproduction ships a *seeded,
deterministic* fault-injection subsystem: tests arm faults by **site
name** and **call count**, run the pipeline, and know exactly which
call will fail, every time.

Vocabulary
----------

* A **site** is a dotted name compiled into the production code path
  (``repro.faults.check("preprocessor.Q4")``).  When no schedule is
  installed a check is one ``None`` test — the layer costs nothing in
  normal operation.
* A :class:`FaultSpec` arms one fault at a site pattern
  (:mod:`fnmatch` glob) for a window of call counts.
* A :class:`FaultSchedule` owns the specs plus the per-site call
  counters, and records every fault it fired (observability for
  :class:`~repro.kernel.metrics.ResilienceStats`).

Injection sites
---------------

======================  ==================================================
``engine.execute``      every :meth:`Database.execute_ast` statement
``engine.compile``      each expression lowering; an injected failure
                        *degrades* to the interpreter instead of erroring
``dbapi.execute``       each DB-API ``Cursor.execute``
``preprocessor.<L>``    before setup/preprocessing query labelled ``<L>``
                        (``CLEAN``, ``SEQ``, ``Q0`` .. ``Q11`` variants)
``core.load``           reading the encoded tables into the core operator
``core.simple``         each simple-core run (pool algorithm entry)
``core.lattice``        each lattice-set computation of the general core
``core.bitset``         the bitset representation; a persistent failure
                        degrades the run to the ``"set"`` layout
``core.shard.<i>``      before dispatching shard ``<i>`` of a sharded
                        run (``workers>1``) — checked in the parent
                        once per shard per phase (local, recount)
``postprocessor.store`` writing the normalized output relations
``postprocessor.decode``running the decode program + display build
``refresh.delta``       before the REFRESH delta scan (snapshot diff +
                        known-count maintenance); pure computation, so
                        a retried attempt recomputes from scratch
``refresh.recount``     before the REFRESH border recount (level-wise
                        candidate expansion); also idempotent — state
                        commits only after the phase succeeds
``jobs.submit``         job-service submission (job lands in ``failed``)
``jobs.run.<id>``       start of each execution attempt of job ``<id>``
======================  ==================================================

The two ``refresh.*`` sites are deliberately *not* in
:data:`DEFAULT_SITES`: a randomly generated schedule arms only sites
every typical statement visits, and REFRESH runs only when a test asks
for it — the chaos refresh tests install explicit schedules instead.

Faults fire *at stage entry*, before the stage mutates any state —
which is what makes retry (exactly-once re-execution) and stage-level
resume sound.

Usage::

    schedule = FaultSchedule().arm("preprocessor.Q4", call=1)
    with faults.injected(schedule):
        system.run(statement)                  # Q4 raises FaultError
    system.run(statement, resume=True)         # skips completed stages
"""

from __future__ import annotations

import contextlib
import fnmatch
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_SITES",
    "FaultError",
    "FaultSchedule",
    "FaultSpec",
    "RetryPolicy",
    "active",
    "check",
    "injected",
    "install",
    "uninstall",
]

#: sites a randomly generated schedule may arm (everything the pipeline
#: guarantees to visit at least once for a typical statement)
DEFAULT_SITES: Tuple[str, ...] = (
    "engine.execute",
    "preprocessor.Q1",
    "preprocessor.Q2b",
    "preprocessor.Q3",
    "core.load",
    "postprocessor.store",
    "postprocessor.decode",
)


class FaultError(Exception):
    """A deterministic injected failure.

    Typed so the chaos tests (and the retry layer) can distinguish an
    injected fault from a genuine engine error; carries the site and
    the call count at which it fired.
    """

    def __init__(self, site: str, call: int, message: str = ""):
        detail = message or f"injected fault at {site} (call {call})"
        super().__init__(detail)
        self.site = site
        self.call = call


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault.

    ``site`` is an :mod:`fnmatch` pattern matched against the invoked
    site name; the fault fires on calls ``call .. call + times - 1`` of
    that site (1-based, counted per invoked site name).  ``kind`` is
    ``"error"`` (raise :class:`FaultError`) or ``"latency"`` (sleep
    ``latency`` seconds, then continue).
    """

    site: str
    call: int = 1
    times: int = 1
    kind: str = "error"
    latency: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.call < 1 or self.times < 1:
            raise ValueError("call and times must be >= 1")

    def matches(self, site: str, count: int) -> bool:
        return (
            self.call <= count < self.call + self.times
            and fnmatch.fnmatchcase(site, self.site)
        )

    def describe(self) -> str:
        spec = f"{self.site}:{self.call}"
        if self.times != 1:
            spec += f"*{self.times}"
        if self.kind == "latency":
            spec += f"@{self.latency:g}"
        return spec


class FaultSchedule:
    """A deterministic set of armed faults plus per-site call counters.

    The schedule is reusable: :meth:`reset` clears the counters (not
    the specs), so the same schedule can be replayed against a retried
    or resumed pipeline run.
    """

    def __init__(
        self,
        specs: Optional[Sequence[FaultSpec]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.specs: List[FaultSpec] = list(specs or ())
        self.counts: Dict[str, int] = {}
        #: (site, call, kind) of every fault fired, in firing order
        self.fired: List[Tuple[str, int, str]] = []
        #: degradations recorded by graceful-fallback handlers
        self.degradations: List[str] = []
        self.errors_injected = 0
        self.latencies_injected = 0
        self._sleep = sleep

    # -- arming ---------------------------------------------------------

    def arm(
        self,
        site: str,
        call: int = 1,
        times: int = 1,
        kind: str = "error",
        latency: float = 0.0,
    ) -> "FaultSchedule":
        """Arm one fault; returns ``self`` for chaining."""
        self.specs.append(FaultSpec(site, call, times, kind, latency))
        return self

    @classmethod
    def random(
        cls,
        seed: int,
        sites: Optional[Sequence[str]] = None,
        max_faults: int = 3,
        max_call: int = 4,
        max_times: int = 2,
        latency: float = 0.0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "FaultSchedule":
        """A seeded schedule: 1..``max_faults`` faults over *sites*
        with call counts in ``1..max_call`` and run lengths in
        ``1..max_times``.  Same seed, same schedule — always."""
        rng = random.Random(seed)
        sites = tuple(sites or DEFAULT_SITES)
        schedule = cls(sleep=sleep)
        for _ in range(rng.randint(1, max_faults)):
            kind = "latency" if rng.random() < 0.2 else "error"
            schedule.arm(
                rng.choice(sites),
                call=rng.randint(1, max_call),
                times=rng.randint(1, max_times),
                kind=kind,
                latency=latency if kind == "latency" else 0.0,
            )
        return schedule

    @classmethod
    def parse(cls, text: str) -> "FaultSchedule":
        """Parse the CLI spec format: ``site:call[*times][@latency]``
        entries separated by ``,`` or ``;``.  A ``@latency`` suffix
        makes the fault a latency fault; otherwise it is an error.

        Example: ``preprocessor.Q4:1;engine.execute:3*2;core.load:1@0.05``
        """
        schedule = cls()
        for chunk in text.replace(";", ",").split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            site, _, rest = chunk.partition(":")
            if not site or not rest:
                raise ValueError(
                    f"bad fault spec {chunk!r}; expected site:call[*times][@latency]"
                )
            latency = 0.0
            kind = "error"
            if "@" in rest:
                rest, _, latency_text = rest.partition("@")
                kind = "latency"
                latency = float(latency_text)
            times = 1
            if "*" in rest:
                rest, _, times_text = rest.partition("*")
                times = int(times_text)
            schedule.arm(site, call=int(rest), times=times, kind=kind,
                         latency=latency)
        return schedule

    def describe(self) -> str:
        return ",".join(spec.describe() for spec in self.specs) or "(empty)"

    # -- firing ---------------------------------------------------------

    def check(self, site: str) -> None:
        """Count one call of *site*; fire any armed fault matching it."""
        count = self.counts.get(site, 0) + 1
        self.counts[site] = count
        for spec in self.specs:
            if not spec.matches(site, count):
                continue
            self.fired.append((site, count, spec.kind))
            if spec.kind == "latency":
                self.latencies_injected += 1
                if spec.latency > 0:
                    self._sleep(spec.latency)
                continue
            self.errors_injected += 1
            raise FaultError(site, count)

    def degrade(self, description: str) -> None:
        """Record a graceful degradation taken in response to a fault."""
        self.degradations.append(description)

    def reset(self) -> "FaultSchedule":
        """Clear counters and firing records, keeping the armed specs."""
        self.counts.clear()
        self.fired.clear()
        self.degradations.clear()
        self.errors_injected = 0
        self.latencies_injected = 0
        return self

    def snapshot(self) -> Tuple[int, int, int]:
        """(errors, latencies, degradations) so far — for delta
        accounting across one pipeline run."""
        return (
            self.errors_injected,
            self.latencies_injected,
            len(self.degradations),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultSchedule({self.describe()})"


# ---------------------------------------------------------------------------
# the process-wide active schedule
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultSchedule] = None


def install(schedule: FaultSchedule) -> FaultSchedule:
    """Make *schedule* the process-wide active schedule."""
    global _ACTIVE
    _ACTIVE = schedule
    return schedule


def uninstall() -> None:
    """Remove the active schedule (checks become no-ops again)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultSchedule]:
    """The currently installed schedule, if any."""
    return _ACTIVE


def check(site: str) -> None:
    """Injection hook: a no-op unless a schedule is installed."""
    if _ACTIVE is not None:
        _ACTIVE.check(site)


def degrade(description: str) -> None:
    """Record a degradation on the active schedule (no-op without one)."""
    if _ACTIVE is not None:
        _ACTIVE.degrade(description)


@contextlib.contextmanager
def injected(schedule: FaultSchedule):
    """Install *schedule* for the duration of a ``with`` block."""
    install(schedule)
    try:
        yield schedule
    finally:
        uninstall()


# ---------------------------------------------------------------------------
# retry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Per-stage retry with capped exponential backoff and a wall-clock
    budget.

    Attempt *n* (n >= 1) that fails with a retryable error sleeps
    ``min(max_delay, base_delay * backoff**(n-1))`` and tries again,
    up to ``max_attempts`` attempts; once ``timeout`` seconds of stage
    wall clock (including the pending backoff) would be exceeded, the
    error propagates instead.

    Only :class:`FaultError` is retryable by default: injected faults
    fire at stage entry, so re-running the stage is exactly-once.  A
    genuine engine error may leave a statement partially applied, so
    widening ``retryable`` is a caller's explicit decision.
    """

    max_attempts: int = 3
    base_delay: float = 0.005
    backoff: float = 2.0
    max_delay: float = 0.25
    timeout: Optional[float] = None
    retryable: Tuple[type, ...] = (FaultError,)

    @classmethod
    def single(cls) -> "RetryPolicy":
        """No retries: one attempt, errors propagate immediately."""
        return cls(max_attempts=1, base_delay=0.0)

    def delay(self, attempt: int) -> float:
        """Backoff before the attempt *after* failed attempt *attempt*."""
        if self.base_delay <= 0:
            return 0.0
        return min(self.max_delay, self.base_delay * self.backoff ** (attempt - 1))

    def execute(
        self,
        fn: Callable[[], Any],
        stage: str = "stage",
        on_retry: Optional[Callable[[str, int, Exception, float], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> Any:
        """Run *fn* under this policy.  ``on_retry(stage, attempt, exc,
        delay)`` is invoked before each re-attempt (observability)."""
        started = clock()
        attempt = 1
        while True:
            try:
                return fn()
            except self.retryable as exc:
                if attempt >= self.max_attempts:
                    raise
                pause = self.delay(attempt)
                if (
                    self.timeout is not None
                    and clock() - started + pause > self.timeout
                ):
                    raise
                if on_retry is not None:
                    on_retry(stage, attempt, exc, pause)
                if pause > 0:
                    sleep(pause)
                attempt += 1
