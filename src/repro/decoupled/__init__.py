"""The decoupled (loosely-coupled) baseline architecture.

The introduction of the paper describes the approach "followed by
several products": a data mining tool executes on data *previously
extracted from the database and transformed into a suitable format*.
This package implements that baseline faithfully so the benchmarks can
compare it against the tightly-coupled system:

1. :mod:`repro.decoupled.extractor` — queries the SQL server and dumps
   the result to a flat file (the analyst's "long preparation for
   extracting data");
2. :mod:`repro.decoupled.encoder` — re-reads the flat file and encodes
   items/groups inside the tool ("preparing data by means of explicit
   encoding");
3. :mod:`repro.decoupled.miner` — a standalone mining engine whose
   results live in tool memory / an export file, *not* in the database
   ("once extracted, rules are contained in the data mining tool").

:class:`~repro.decoupled.workflow.DecoupledWorkflow` chains the steps.
"""

from repro.decoupled.encoder import FlatFileEncoder
from repro.decoupled.extractor import FlatFileExtractor
from repro.decoupled.miner import StandaloneMiner, ToolRule
from repro.decoupled.workflow import DecoupledWorkflow, WorkflowReport

__all__ = [
    "DecoupledWorkflow",
    "FlatFileEncoder",
    "FlatFileExtractor",
    "StandaloneMiner",
    "ToolRule",
    "WorkflowReport",
]
