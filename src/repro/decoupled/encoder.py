"""Step 2 of the decoupled workflow: tool-side data preparation.

The standalone tool cannot push encoding into the DBMS, so it
rebuilds dictionaries in memory from the flat file: distinct groups
get consecutive numbers, distinct items likewise, and the transactions
are assembled as id sets.  This duplicates — outside the database —
exactly the work the tightly-coupled preprocessor performs with
queries Q2/Q3/Q4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Tuple

from repro.decoupled.extractor import parse_flat_file


@dataclass
class EncodedDataset:
    """The tool's in-memory representation."""

    groups: Dict[int, FrozenSet[int]]
    group_labels: Dict[int, str]
    item_labels: Dict[int, str]

    @property
    def group_count(self) -> int:
        return len(self.groups)


class FlatFileEncoder:
    """Builds the tool-side encoding from an extracted flat file."""

    def encode(
        self, path: Path, group_column: str, item_column: str
    ) -> EncodedDataset:
        """Read the file and encode (group, item) pairs.

        Raises :class:`ValueError` when the named columns are missing —
        the decoupled analyst gets no data-dictionary help.
        """
        header, rows = parse_flat_file(path)
        try:
            group_index = header.index(group_column)
            item_index = header.index(item_column)
        except ValueError:
            raise ValueError(
                f"flat file lacks required columns "
                f"{group_column!r}/{item_column!r}; header: {header}"
            ) from None

        group_ids: Dict[str, int] = {}
        item_ids: Dict[str, int] = {}
        members: Dict[int, set] = {}
        for fields in rows:
            group_key = fields[group_index]
            item_key = fields[item_index]
            gid = group_ids.setdefault(group_key, len(group_ids) + 1)
            iid = item_ids.setdefault(item_key, len(item_ids) + 1)
            members.setdefault(gid, set()).add(iid)

        return EncodedDataset(
            groups={gid: frozenset(items) for gid, items in members.items()},
            group_labels={gid: label for label, gid in group_ids.items()},
            item_labels={iid: label for label, iid in item_ids.items()},
        )
