"""Step 1 of the decoupled workflow: extract data to a flat file.

The analyst writes an extraction query by hand; the result set is
serialized to a delimiter-separated text file, because that is the
format the standalone tool ingests.  (This serialization/parse
round-trip is part of the cost the tightly-coupled architecture
eliminates — the benchmark measures it honestly.)
"""

from __future__ import annotations

import datetime
import io
from pathlib import Path
from typing import List, Optional, Sequence

from repro.sqlengine.engine import Database

#: field separator of the flat format
SEPARATOR = "\t"


class FlatFileExtractor:
    """Runs extraction queries and writes flat files."""

    def __init__(self, database: Database):
        self._db = database

    def extract(self, query: str, destination: Path) -> int:
        """Execute *query* and dump the rows; returns the row count."""
        result = self._db.execute(query)
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(SEPARATOR.join(result.columns) + "\n")
            for row in result.rows:
                handle.write(
                    SEPARATOR.join(_serialize(value) for value in row) + "\n"
                )
        return len(result.rows)


def _serialize(value: object) -> str:
    if value is None:
        return "\\N"
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        return repr(value)
    return str(value)


def parse_flat_file(path: Path) -> (List[str], List[List[str]]):
    """Re-read a flat file as header + raw string fields."""
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n").split(SEPARATOR)
        rows = [
            line.rstrip("\n").split(SEPARATOR)
            for line in handle
            if line.strip()
        ]
    return header, rows
