"""Step 3 of the decoupled workflow: the standalone mining engine.

A self-contained tool in the spirit of mid-90s products: it mines the
prepared dataset with an algorithm from the same pool the core
operator uses (so the comparison is about the *architecture*, not the
algorithm), keeps the rules in memory, and can only export them back
to a text file — combining them with database data requires a manual
re-import, the paper's third criticism of the decoupled approach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import FrozenSet, List, Optional, Tuple

from repro.algorithms import FrequentItemsetMiner, get_algorithm
from repro.decoupled.encoder import EncodedDataset


@dataclass(frozen=True)
class ToolRule:
    """A rule as the standalone tool represents it (labels, not ids)."""

    body: FrozenSet[str]
    head: FrozenSet[str]
    support: float
    confidence: float


class StandaloneMiner:
    """Mines simple association rules from a prepared dataset."""

    def __init__(self, algorithm: str = "apriori"):
        self.algorithm: FrequentItemsetMiner = get_algorithm(algorithm)
        #: rules of the last run, held inside the tool
        self.rules: List[ToolRule] = []

    def mine(
        self,
        dataset: EncodedDataset,
        min_support: float,
        min_confidence: float,
        max_head_size: int = 1,
    ) -> List[ToolRule]:
        """Classic (L - H) => H rule mining over the prepared groups."""
        total = dataset.group_count
        if total == 0:
            self.rules = []
            return self.rules
        import math

        min_count = max(1, math.ceil(min_support * total - 1e-9))
        counts = self.algorithm.mine(dataset.groups, min_count)

        rules: List[ToolRule] = []
        for itemset, count in counts.items():
            if len(itemset) < 2:
                continue
            ordered = sorted(itemset)
            for head_size in range(1, max_head_size + 1):
                if head_size >= len(itemset):
                    break
                for head in itertools.combinations(ordered, head_size):
                    body = itemset - frozenset(head)
                    confidence = count / counts[body]
                    if confidence + 1e-12 < min_confidence:
                        continue
                    rules.append(
                        ToolRule(
                            body=frozenset(
                                dataset.item_labels[i] for i in body
                            ),
                            head=frozenset(
                                dataset.item_labels[i] for i in head
                            ),
                            support=count / total,
                            confidence=confidence,
                        )
                    )
        self.rules = rules
        return rules

    def export(self, destination: Path) -> int:
        """Write the rules to a text file — the only way results leave
        the tool in the decoupled architecture."""
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write("body\thead\tsupport\tconfidence\n")
            for rule in sorted(
                self.rules, key=lambda r: (sorted(r.body), sorted(r.head))
            ):
                handle.write(
                    ",".join(sorted(rule.body))
                    + "\t"
                    + ",".join(sorted(rule.head))
                    + f"\t{rule.support!r}\t{rule.confidence!r}\n"
                )
        return len(self.rules)
