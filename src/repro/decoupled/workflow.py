"""The full decoupled workflow, instrumented for the SYN-1 benchmark."""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.decoupled.encoder import FlatFileEncoder
from repro.decoupled.extractor import FlatFileExtractor
from repro.decoupled.miner import StandaloneMiner, ToolRule
from repro.sqlengine.engine import Database


@dataclass
class WorkflowReport:
    """Outcome and per-step timings of one decoupled run."""

    rules: List[ToolRule]
    timings: Dict[str, float] = field(default_factory=dict)
    extracted_rows: int = 0
    flat_file: Optional[Path] = None
    export_file: Optional[Path] = None

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())


class DecoupledWorkflow:
    """extract -> prepare -> mine -> export, with files in between."""

    def __init__(self, database: Database, algorithm: str = "apriori"):
        self._db = database
        self._extractor = FlatFileExtractor(database)
        self._encoder = FlatFileEncoder()
        self._miner = StandaloneMiner(algorithm)

    def run(
        self,
        extraction_query: str,
        group_column: str,
        item_column: str,
        min_support: float,
        min_confidence: float,
        workdir: Optional[Path] = None,
        export: bool = True,
    ) -> WorkflowReport:
        """Execute the whole decoupled pipeline.

        When *workdir* is None a temporary directory holds the
        intermediate files (they are what makes the approach
        decoupled, so they are always really written).
        """
        if workdir is None:
            with tempfile.TemporaryDirectory(prefix="decoupled_") as tmp:
                return self._run_in(
                    Path(tmp),
                    extraction_query,
                    group_column,
                    item_column,
                    min_support,
                    min_confidence,
                    export,
                )
        return self._run_in(
            workdir,
            extraction_query,
            group_column,
            item_column,
            min_support,
            min_confidence,
            export,
        )

    def _run_in(
        self,
        workdir: Path,
        extraction_query: str,
        group_column: str,
        item_column: str,
        min_support: float,
        min_confidence: float,
        export: bool,
    ) -> WorkflowReport:
        timings: Dict[str, float] = {}
        flat_file = workdir / "extracted.tsv"

        started = time.perf_counter()
        extracted = self._extractor.extract(extraction_query, flat_file)
        timings["extract"] = time.perf_counter() - started

        started = time.perf_counter()
        dataset = self._encoder.encode(flat_file, group_column, item_column)
        timings["prepare"] = time.perf_counter() - started

        started = time.perf_counter()
        rules = self._miner.mine(dataset, min_support, min_confidence)
        timings["mine"] = time.perf_counter() - started

        export_file: Optional[Path] = None
        if export:
            export_file = workdir / "rules.tsv"
            started = time.perf_counter()
            self._miner.export(export_file)
            timings["export"] = time.perf_counter() - started

        return WorkflowReport(
            rules=rules,
            timings=timings,
            extracted_rows=extracted,
            flat_file=flat_file,
            export_file=export_file,
        )
