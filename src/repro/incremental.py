"""FUP-style incremental maintenance of MINE RULE outputs.

After an initial MINE RULE run, :class:`MiningState` persists the exact
mining state of the statement — every frequent itemset with its exact
group count **plus the negative border** (the maximal infrequent
candidates: itemsets whose proper subsets are all frequent but which
failed the support threshold themselves).  On ``REFRESH RULES <out>``
the delta of the source table is diffed against the recorded snapshot
and the state is maintained FUP-style (Cheung et al.):

* itemsets already in the state (frequent or border) never re-scan the
  full table: appended rows can only flip bits of *touched* group
  slots, so the exact new count is

  ``new = old + popcount(AND_new & T) - popcount(AND_old & T)``

  evaluated over compact bitmaps restricted to the touched slots
  ``T`` — work proportional to the delta, not the table;
* only *border-crossing* itemsets force a full re-scan: when a border
  itemset turns frequent (or the support threshold drops because
  ``totg`` grew), its superset candidates were never counted, so their
  supports come from fresh AND/popcount passes over the full item
  bitmaps (the in-memory image of the table — still no SQL
  re-preprocessing);
* the refreshed state is rebuilt as exactly ``F' ∪ border'`` of the
  new data, so repeated refreshes never accumulate stale itemsets.

The refreshed frequent counts feed the *serial* rule constructor and
postprocessor (:func:`repro.kernel.core.simple.build_rules` +
:class:`repro.kernel.postprocessor.Postprocessor`), with the ``Bset``
encoding rebuilt in staging first-appearance order — the same order
queries Q3a/Q3b produce — so a refreshed rule table is bit-identical
to a from-scratch run of the statement on the appended table.

A refresh falls back to a forced full re-mine (and state re-capture)
when the statement is not eligible (general core, group HAVING,
multi-table FROM), when the source shrank or its sampled prefix
fingerprint changed (not append-only), or when no state has been
captured yet.  :class:`SourceMutated` signals the fallback.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.kernel.core.inputs import min_group_count
from repro.kernel.program import TranslationProgram
from repro.minerule.errors import MineRuleError
from repro.minerule.statements import MineRuleStatement
from repro.sqlengine.render import render_expr

#: sampled-fingerprint resolution: at most this many rows are hashed
#: per refresh, whatever the table size (mutation detection stays
#: O(samples), the append path stays O(delta))
FINGERPRINT_SAMPLES = 1024


class RefreshError(MineRuleError):
    """REFRESH RULES targeted an output table no MINE RULE run of this
    system has produced (nothing to maintain)."""


class SourceMutated(Exception):
    """The source table is not an append-only extension of the recorded
    snapshot — the caller must fall back to a full re-mine."""


def fingerprint_stride(row_count: int) -> int:
    """Sampling stride hashing at most :data:`FINGERPRINT_SAMPLES`
    rows of a *row_count*-row prefix."""
    return max(1, row_count // FINGERPRINT_SAMPLES)


@dataclass
class MiningState:
    """Exact mining state of one statement over one source snapshot.

    Items and groups are interned in **staging first-appearance
    order** — the order ``SELECT DISTINCT <schema>, <group>`` emits
    pairs, which is the order queries Q3a/Q3b enumerate them — so the
    ``Bset`` encoding of any later refresh can be reproduced without
    re-running the preprocessor.
    """

    #: item value-tuples in first-appearance order (index = item id)
    item_order: List[Tuple]
    #: item value-tuple -> index in :attr:`item_order`
    item_index: Dict[Tuple, int]
    #: group value-tuple -> bitmap slot
    group_index: Dict[Tuple, int]
    #: per-item big-int bitmap: bit ``g`` set iff the item occurs in
    #: group slot ``g`` (the vertical layout of PR2's bitset core)
    masks: List[int]
    #: exact group counts of F ∪ negative border, keyed by frozensets
    #: of item indexes
    counts: Dict[FrozenSet[int], int]
    #: total number of groups (= Q1's ``totg``)
    totg: int
    #: support threshold in groups (= Q3b's ``mingroups``)
    min_count: int
    #: base-table rows covered by this snapshot
    row_count: int
    #: crc32 over ``repr`` of the sampled prefix rows
    fingerprint: int
    #: stride the fingerprint was sampled with
    stride: int

    def frequent(self) -> Dict[FrozenSet[int], int]:
        """The frequent subset of :attr:`counts` (what rule
        construction consumes)."""
        return {
            itemset: count
            for itemset, count in self.counts.items()
            if count >= self.min_count
        }


@dataclass
class RefreshStats:
    """Observability of one refresh (mirrored into tracer spans)."""

    mode: str = "incremental"  # "incremental" | "full"
    reason: str = ""  # why a full re-mine was forced
    delta_rows: int = 0
    delta_pairs: int = 0
    new_items: int = 0
    new_groups: int = 0
    touched_items: int = 0
    touched_groups: int = 0
    #: state itemsets whose counts carried over or were delta-adjusted
    known_itemsets: int = 0
    #: itemsets that needed a full-bitmap re-scan (border crossers,
    #: new-item candidates)
    recounted_itemsets: int = 0
    frequent_itemsets: int = 0
    border_itemsets: int = 0
    totg: int = 0
    min_count: int = 0
    rules: int = 0

    def as_args(self) -> Dict[str, object]:
        return {k: v for k, v in self.__dict__.items() if v or k == "mode"}


def refresh_eligibility(program: TranslationProgram) -> Optional[str]:
    """None when the statement supports incremental maintenance, else
    the human-readable reason a full re-mine is forced."""
    statement = program.statement
    if not program.core.simple:
        return (
            "general core statement (mining condition, distinct head "
            "schema or clusters)"
        )
    if statement.group_condition is not None:
        return "GROUP BY ... HAVING can invalidate groups retroactively"
    if len(statement.from_list) != 1:
        return "multi-table FROM list"
    return None


def pairs_query(statement: MineRuleStatement) -> str:
    """The collapsed Q0+Q3a query: every distinct (schema, group) pair
    of the (filtered) source in first-appearance order."""
    table = statement.from_list[0]
    source = table.name + (f" {table.alias}" if table.alias else "")
    columns = ", ".join(
        tuple(statement.body.attributes) + tuple(statement.group_attributes)
    )
    sql = f"SELECT DISTINCT {columns} FROM {source}"
    if statement.source_condition is not None:
        sql += f" WHERE {render_expr(statement.source_condition)}"
    return sql


# ---------------------------------------------------------------------------
# the two refresh phases
# ---------------------------------------------------------------------------


class RefreshComputation:
    """One refresh of one statement: delta scan + FUP recount.

    Pure computation over the engine's in-memory tables — the caller
    (:meth:`repro.system.MiningSystem.refresh`) owns locking, tracer
    spans, fault sites and the emission through the postprocessor.
    Both phases are side-effect free until :meth:`recount` returns the
    new state, so a faulted phase can simply be retried.
    """

    def __init__(
        self,
        db,
        statement: MineRuleStatement,
        state: Optional[MiningState],
    ):
        self.db = db
        self.statement = statement
        self.state = state
        self.stats = RefreshStats()
        # populated by delta()
        self._item_order: List[Tuple] = []
        self._item_index: Dict[Tuple, int] = {}
        self._group_index: Dict[Tuple, int] = {}
        self._masks: List[int] = []
        self._known: Dict[FrozenSet[int], int] = {}
        self._row_count = 0
        self._fingerprint = 0
        self._stride = 1

    # -- phase 1: delta ---------------------------------------------------

    def delta(self) -> RefreshStats:
        """Verify the append-only premise, intern the delta pairs and
        delta-adjust every known itemset count.

        Raises :class:`SourceMutated` when the source is not an
        append-only extension of the snapshot."""
        rows = self._source_rows()
        self._check_append_only(rows)
        pairs = self.db.execute(pairs_query(self.statement)).rows
        self._apply_pairs(pairs)
        return self.stats

    def _source_rows(self) -> List[Tuple]:
        table_name = self.statement.from_list[0].name
        if not self.db.catalog.has_table(table_name):
            raise SourceMutated(f"source table {table_name!r} is gone")
        return self.db.catalog.get_table(table_name).rows

    def _check_append_only(self, rows: List[Tuple]) -> None:
        state = self.state
        n = len(rows)
        old_n = state.row_count if state is not None else 0
        if state is not None:
            if n < old_n:
                raise SourceMutated(
                    f"source shrank from {old_n} to {n} rows"
                )
            crc = 0
            for i in range(0, old_n, state.stride):
                crc = zlib.crc32(repr(rows[i]).encode("utf-8"), crc)
            if crc != state.fingerprint:
                raise SourceMutated(
                    "sampled prefix fingerprint changed "
                    "(rows were updated or deleted in place)"
                )
        stride = fingerprint_stride(n)
        crc = 0
        for i in range(0, n, stride):
            crc = zlib.crc32(repr(rows[i]).encode("utf-8"), crc)
        self._row_count = n
        self._fingerprint = crc
        self._stride = stride
        self.stats.delta_rows = n - old_n

    def _apply_pairs(self, pairs: List[Tuple]) -> None:
        """Intern the distinct (schema, group) pairs, growing the item
        and group orders append-only, and record per-item added slots.

        The pairs list is a superset of the recorded state: new items
        and groups get fresh indexes/slots at the end (matching a
        from-scratch staging enumeration of the appended table), and
        pairs already present are skipped via an O(1) bit probe."""
        state = self.state
        k = len(self.statement.body.attributes)
        item_order = list(state.item_order) if state else []
        item_index = dict(state.item_index) if state else {}
        group_index = dict(state.group_index) if state else {}
        old_items = len(item_order)
        old_groups = len(group_index)
        old_bytes: Dict[int, bytes] = {}
        nbytes_old = (old_groups + 7) // 8
        added: Dict[int, List[int]] = {}

        for row in pairs:
            item = tuple(row[:k])
            group = tuple(row[k:])
            slot = group_index.get(group)
            if slot is None:
                slot = len(group_index)
                group_index[group] = slot
            index = item_index.get(item)
            if index is None:
                index = len(item_order)
                item_index[item] = index
                item_order.append(item)
            elif index < old_items and slot < old_groups:
                probe = old_bytes.get(index)
                if probe is None:
                    probe = state.masks[index].to_bytes(
                        nbytes_old, "little"
                    )
                    old_bytes[index] = probe
                if (probe[slot >> 3] >> (slot & 7)) & 1:
                    continue  # pair already in the snapshot
            added.setdefault(index, []).append(slot)

        totg = len(group_index)
        nbytes_new = (totg + 7) // 8
        masks: List[int] = []
        for index in range(len(item_order)):
            slots = added.get(index)
            if slots is None:
                masks.append(state.masks[index])  # untouched: shared
                continue
            if index < old_items:
                buffer = bytearray(
                    old_bytes.get(index)
                    or state.masks[index].to_bytes(nbytes_old, "little")
                )
                buffer.extend(b"\x00" * (nbytes_new - len(buffer)))
            else:
                buffer = bytearray(nbytes_new)
            for slot in slots:
                buffer[slot >> 3] |= 1 << (slot & 7)
            masks.append(int.from_bytes(buffer, "little"))

        self._item_order = item_order
        self._item_index = item_index
        self._group_index = group_index
        self._masks = masks
        stats = self.stats
        stats.delta_pairs = sum(len(s) for s in added.values())
        stats.new_items = len(item_order) - old_items
        stats.new_groups = totg - old_groups
        stats.touched_items = len(added)
        touched_slots = sorted(
            {slot for slots in added.values() for slot in slots}
        )
        stats.touched_groups = len(touched_slots)
        self._update_known_counts(added, touched_slots, nbytes_new)

    def _update_known_counts(
        self,
        added: Dict[int, List[int]],
        touched_slots: List[int],
        nbytes_new: int,
    ) -> None:
        """FUP delta adjustment: every itemset of the recorded state
        gets its exact new count from bitmaps *restricted to the
        touched slots* — appended rows cannot flip any other bit, so
        ``new = old + pc(AND_new & T) - pc(AND_old & T)``."""
        state = self.state
        if state is None:
            return
        touched_items = set(added)
        slot_pos = {slot: pos for pos, slot in enumerate(touched_slots)}
        compact_added: Dict[int, int] = {}
        for index, slots in added.items():
            bits = 0
            for slot in slots:
                bits |= 1 << slot_pos[slot]
            compact_added[index] = bits
        compact_cache: Dict[int, int] = {}

        def compact_new(index: int) -> int:
            bits = compact_cache.get(index)
            if bits is None:
                raw = self._masks[index].to_bytes(nbytes_new, "little")
                bits = 0
                for pos, slot in enumerate(touched_slots):
                    if (raw[slot >> 3] >> (slot & 7)) & 1:
                        bits |= 1 << pos
                compact_cache[index] = bits
            return bits

        known = self._known
        for itemset, count in state.counts.items():
            if touched_items.isdisjoint(itemset):
                known[itemset] = count
                continue
            new_bits = -1
            old_bits = -1
            for index in itemset:
                bits = compact_new(index)
                new_bits &= bits
                old_bits &= bits & ~compact_added.get(index, 0)
            mask = (1 << len(touched_slots)) - 1
            known[itemset] = (
                count
                + (new_bits & mask).bit_count()
                - (old_bits & mask).bit_count()
            )
        self.stats.known_itemsets = len(known)

    # -- phase 2: recount -------------------------------------------------

    def recount(self) -> MiningState:
        """Level-wise closure over the updated counts: candidates whose
        counts are known (delta-adjusted) cost a dict lookup; only
        border-crossing candidates re-scan the full bitmaps.  Returns
        the committed new state (F' ∪ border')."""
        masks = self._masks
        known = self._known
        totg = len(self._group_index)
        min_count = min_group_count(self.statement.min_support, totg)
        counts: Dict[FrozenSet[int], int] = {}
        stats = self.stats
        stats.recounted_itemsets = 0  # idempotent under phase retries

        def exact(key: FrozenSet[int], members: Tuple[int, ...]) -> int:
            count = known.get(key)
            if count is None:
                bits = masks[members[0]]
                for index in members[1:]:
                    bits &= masks[index]
                count = bits.bit_count()
                stats.recounted_itemsets += 1
            return count

        level: List[Tuple[int, ...]] = []
        for index in range(len(self._item_order)):
            key = frozenset((index,))
            count = exact(key, (index,))
            counts[key] = count
            if count >= min_count:
                level.append((index,))

        while level:
            survivors = {frozenset(members) for members in level}
            next_level: List[Tuple[int, ...]] = []
            for candidate in _apriori_candidates(level, survivors):
                key = frozenset(candidate)
                count = exact(key, candidate)
                counts[key] = count
                if count >= min_count:
                    next_level.append(candidate)
            level = next_level

        frequent = sum(1 for c in counts.values() if c >= min_count)
        stats.frequent_itemsets = frequent
        stats.border_itemsets = len(counts) - frequent
        stats.totg = totg
        stats.min_count = min_count
        return MiningState(
            item_order=self._item_order,
            item_index=self._item_index,
            group_index=self._group_index,
            masks=masks,
            counts=counts,
            totg=totg,
            min_count=min_count,
            row_count=self._row_count,
            fingerprint=self._fingerprint,
            stride=self._stride,
        )


def _apriori_candidates(
    level: List[Tuple[int, ...]], survivors: Set[FrozenSet[int]]
) -> List[Tuple[int, ...]]:
    """Classic prefix-join + subset-prune candidate generation over the
    sorted frequent tuples of one level."""
    level = sorted(level)
    out: List[Tuple[int, ...]] = []
    n = len(level)
    for i in range(n):
        head = level[i]
        prefix = head[:-1]
        for j in range(i + 1, n):
            other = level[j]
            if other[:-1] != prefix:
                break
            candidate = head + (other[-1],)
            if len(candidate) > 2:
                key = frozenset(candidate)
                if any(
                    key - {member} not in survivors for member in candidate
                ):
                    continue
            out.append(candidate)
    return out


# ---------------------------------------------------------------------------
# emission helpers (Bset rebuild + rule counts in encoded space)
# ---------------------------------------------------------------------------


def encode_for_emission(
    state: MiningState,
) -> Tuple[List[Tuple], Dict[FrozenSet[int], int]]:
    """The ``Bset`` rows and the frequent counts re-keyed by Bid.

    Bids are assigned 1..n over the *frequent items in first-appearance
    order* — exactly what Q3b's ``GROUP BY <schema> HAVING COUNT(*) >=
    :mingroups`` with a fresh Bid sequence produces — so the encoded
    rules (and therefore every output table) of a refresh are
    bit-identical to a from-scratch run."""
    bid_of: Dict[int, int] = {}
    bset_rows: List[Tuple] = []
    for index, item in enumerate(state.item_order):
        count = state.counts.get(frozenset((index,)))
        if count is None or count < state.min_count:
            continue
        bid = len(bset_rows) + 1
        bid_of[index] = bid
        bset_rows.append((bid, *item, count))
    counts_by_bid = {
        frozenset(bid_of[index] for index in itemset): count
        for itemset, count in state.frequent().items()
    }
    return bset_rows, counts_by_bid
