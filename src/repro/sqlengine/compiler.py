"""Expression compilation: AST expressions lowered to Python closures.

The interpreted :class:`~repro.sqlengine.evaluator.Evaluator` walks the
AST for every row and resolves every column reference through
``Frame.lookup`` string hashing.  The mining architecture routes each
MINE RULE execution through a dozen generated SQL queries (Q0..Q11)
that scan and join the encoded tables, so that per-row overhead *is*
the system's hot path.  This module lowers each planned expression
**once** into a closure:

* column references become fixed ``env.rows[src][col]`` tuple indexing
  against the operator's compile-time :class:`Frame` — no per-row name
  hashing;
* constant LIKE patterns compile their regex once instead of per row;
* dispatch happens at compile time, so evaluating a row is a plain
  chain of Python calls with no ``type(expr)`` lookups.

Three-valued logic, NULL propagation, type errors and evaluation order
(short-circuit AND/OR, IN early exit, CASE branch order, NEXTVAL side
effects) mirror the interpreter exactly; the differential property
suite (``tests/property/test_compiler_differential.py``) enforces the
equivalence.

Expressions the compiler cannot lower — aggregates, subqueries,
outer-scope (correlated) column references, ambiguous names — fall
back to an interpreter closure, so binding is always total and always
semantics-preserving.  :attr:`BoundExpr.compiled` records which path
was taken; EXPLAIN surfaces it as ``[compiled]`` markers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import faults
from repro.faults import FaultError
from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import CatalogError, ExecutionError, SqlTypeError
from repro.sqlengine.evaluator import (
    SCALAR_FUNCTIONS,
    Env,
    Evaluator,
    Frame,
    _arith,
    _escape_char,
    _like_to_regex,
    _to_str,
    compare,
    tvl_and,
    tvl_not,
    tvl_or,
)
from repro.sqlengine.parser import AGGREGATE_NAMES
from repro.sqlengine.types import SqlType, coerce

#: a lowered expression: called with the row Env (or None), returns the value
ExprFn = Callable[[Optional[Env]], Any]

_truth = Evaluator._as_truth

_COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")


class BoundExpr:
    """An expression bound to an execution frame: a callable plus a
    flag recording whether it was compiled or fell back to the
    interpreter."""

    __slots__ = ("fn", "compiled")

    def __init__(self, fn: ExprFn, compiled: bool):
        self.fn = fn
        self.compiled = compiled


def bind_expr(
    expr: ast.Expression,
    frame: Optional[Frame],
    evaluator: Evaluator,
    compiler: Optional["ExpressionCompiler"],
) -> BoundExpr:
    """Bind *expr* for evaluation against rows of *frame*: compiled
    when a compiler is supplied and the expression is lowerable,
    an interpreter closure otherwise."""
    if compiler is not None:
        return compiler.bind(expr, frame)
    return BoundExpr(lambda env, _e=expr: evaluator.eval(_e, env), False)


class ExpressionCompiler:
    """Lowers AST expressions to closures over a fixed frame.

    ``enabled=False`` (the ``compile_expressions`` engine option turned
    off) makes every :meth:`bind` return an interpreter fallback, which
    is how the differential tests and the SYN ablations exercise the
    interpreted path through identical operator code.
    """

    def __init__(self, evaluator: Evaluator, enabled: bool = True):
        self._evaluator = evaluator
        self.enabled = enabled

    # -- public API --------------------------------------------------------

    def bind(self, expr: ast.Expression, frame: Optional[Frame]) -> BoundExpr:
        if self.enabled:
            try:
                faults.check("engine.compile")
                fn = self._compile(expr, frame)
            except FaultError:
                # Graceful degradation: an injected compilation fault
                # falls back to the interpreter closure (identical
                # semantics) instead of failing the statement.
                faults.degrade("engine.compile: interpreter fallback")
                fn = None
            if fn is not None:
                return BoundExpr(fn, True)
        evaluator = self._evaluator
        return BoundExpr(lambda env, _e=expr: evaluator.eval(_e, env), False)

    def bind_list(
        self, exprs: Sequence[ast.Expression], frame: Optional[Frame]
    ) -> List[BoundExpr]:
        return [self.bind(expr, frame) for expr in exprs]

    # -- compilation core --------------------------------------------------

    def _compile(
        self, expr: ast.Expression, frame: Optional[Frame]
    ) -> Optional[ExprFn]:
        """Return a closure for *expr* or ``None`` when it (or any
        sub-expression) must stay interpreted."""
        method = self._DISPATCH.get(type(expr))
        if method is None:
            return None
        return method(self, expr, frame)

    def _compile_all(
        self, exprs: Sequence[ast.Expression], frame: Optional[Frame]
    ) -> Optional[List[ExprFn]]:
        fns = []
        for expr in exprs:
            fn = self._compile(expr, frame)
            if fn is None:
                return None
            fns.append(fn)
        return fns

    # -- node lowerings ----------------------------------------------------

    def _literal(self, expr: ast.Literal, frame) -> ExprFn:
        value = expr.value
        return lambda env: value

    def _hostvar(self, expr: ast.HostVar, frame) -> ExprFn:
        # Reads the evaluator's *current* bindings at call time so a
        # cached plan sees the parameters of each new execution.
        evaluator = self._evaluator
        name = expr.name

        def fn(env):
            try:
                return evaluator._params[name]
            except KeyError:
                raise ExecutionError(f"unbound host variable :{name}") from None

        return fn

    def _column(self, expr: ast.ColumnRef, frame) -> Optional[ExprFn]:
        if frame is None:
            return None
        try:
            hit = frame.lookup(expr.qualifier, expr.name)
        except CatalogError:
            # Ambiguous here: stay interpreted so the error surfaces at
            # evaluation time exactly as the interpreter raises it.
            return None
        if hit is None:
            # Not visible in this frame: an outer-scope (correlated)
            # reference that needs the parent-environment walk.
            return None
        src_idx, col_idx = hit
        return lambda env: env.rows[src_idx][col_idx]

    def _nextval(self, expr: ast.SequenceNextval, frame) -> ExprFn:
        database = self._evaluator._db
        sequence = expr.sequence
        return lambda env: database.catalog.get_sequence(sequence).nextval()

    def _binary(self, expr: ast.BinaryOp, frame) -> Optional[ExprFn]:
        left = self._compile(expr.left, frame)
        if left is None:
            return None
        right = self._compile(expr.right, frame)
        if right is None:
            return None
        op = expr.op
        if op == "AND":

            def fn_and(env):
                lval = _truth(left(env))
                if lval is False:
                    return False
                return tvl_and(lval, _truth(right(env)))

            return fn_and
        if op == "OR":

            def fn_or(env):
                lval = _truth(left(env))
                if lval is True:
                    return True
                return tvl_or(lval, _truth(right(env)))

            return fn_or
        if op in _COMPARISON_OPS:
            return lambda env: compare(op, left(env), right(env))
        if op == "||":

            def fn_concat(env):
                lval = left(env)
                rval = right(env)
                if lval is None or rval is None:
                    return None
                return _to_str(lval) + _to_str(rval)

            return fn_concat

        def fn_arith(env):
            lval = left(env)
            rval = right(env)
            if lval is None or rval is None:
                return None
            return _arith(op, lval, rval)

        return fn_arith

    def _unary(self, expr: ast.UnaryOp, frame) -> Optional[ExprFn]:
        operand = self._compile(expr.operand, frame)
        if operand is None:
            return None
        if expr.op == "NOT":
            return lambda env: tvl_not(_truth(operand(env)))
        if expr.op == "-":

            def fn_neg(env):
                value = operand(env)
                if value is None:
                    return None
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise SqlTypeError(f"cannot negate {value!r}")
                return -value

            return fn_neg
        return None

    def _function(self, expr: ast.FunctionCall, frame) -> Optional[ExprFn]:
        if expr.name in AGGREGATE_NAMES or expr.star:
            return None  # aggregates need the group machinery
        if expr.name == "COALESCE":
            arg_fns = self._compile_all(expr.args, frame)
            if arg_fns is None:
                return None

            def fn_coalesce(env):
                for arg in arg_fns:
                    value = arg(env)
                    if value is not None:
                        return value
                return None

            return fn_coalesce
        if expr.name == "NULLIF":
            if len(expr.args) != 2:
                return None  # interpreter raises the arity error
            arg_fns = self._compile_all(expr.args, frame)
            if arg_fns is None:
                return None
            first_fn, second_fn = arg_fns

            def fn_nullif(env):
                first = first_fn(env)
                second = second_fn(env)
                return None if compare("=", first, second) is True else first

            return fn_nullif
        impl = SCALAR_FUNCTIONS.get(expr.name)
        if impl is None:
            return None  # interpreter raises "unknown function"
        arg_fns = self._compile_all(expr.args, frame)
        if arg_fns is None:
            return None
        if len(arg_fns) == 1:
            only = arg_fns[0]
            return lambda env: impl([only(env)])
        return lambda env: impl([arg(env) for arg in arg_fns])

    def _between(self, expr: ast.Between, frame) -> Optional[ExprFn]:
        fns = self._compile_all((expr.expr, expr.low, expr.high), frame)
        if fns is None:
            return None
        value_fn, low_fn, high_fn = fns
        negated = expr.negated

        def fn(env):
            value = value_fn(env)
            low = low_fn(env)
            high = high_fn(env)
            result = tvl_and(
                compare(">=", value, low), compare("<=", value, high)
            )
            return tvl_not(result) if negated else result

        return fn

    def _in_list(self, expr: ast.InList, frame) -> Optional[ExprFn]:
        value_fn = self._compile(expr.expr, frame)
        if value_fn is None:
            return None
        item_fns = self._compile_all(expr.items, frame)
        if item_fns is None:
            return None
        negated = expr.negated

        def fn(env):
            value = value_fn(env)
            found = False
            saw_null = False
            for item in item_fns:
                result = compare("=", value, item(env))
                if result is True:
                    found = True
                    break
                if result is None:
                    saw_null = True
            result3: Optional[bool] = (
                True if found else (None if saw_null else False)
            )
            return tvl_not(result3) if negated else result3

        return fn

    def _like(self, expr: ast.Like, frame) -> Optional[ExprFn]:
        value_fn = self._compile(expr.expr, frame)
        if value_fn is None:
            return None
        negated = expr.negated
        escape_expr = expr.escape
        constant_escape = escape_expr is None or isinstance(
            escape_expr, ast.Literal
        )
        if (
            isinstance(expr.pattern, ast.Literal)
            and isinstance(expr.pattern.value, str)
            and constant_escape
        ):
            if escape_expr is not None and escape_expr.value is None:
                # LIKE ... ESCAPE NULL is NULL for every row
                return lambda env: None
            escape = (
                _escape_char(escape_expr.value)
                if escape_expr is not None
                else None
            )
            regex = _like_to_regex(expr.pattern.value, escape)

            def fn_const(env):
                value = value_fn(env)
                if value is None:
                    return None
                if not isinstance(value, str):
                    raise SqlTypeError("LIKE requires string operands")
                result = bool(regex.match(value))
                return not result if negated else result

            return fn_const
        pattern_fn = self._compile(expr.pattern, frame)
        if pattern_fn is None:
            return None
        escape_fn = (
            self._compile(escape_expr, frame)
            if escape_expr is not None
            else None
        )
        if escape_expr is not None and escape_fn is None:
            return None

        def fn(env):
            value = value_fn(env)
            pattern = pattern_fn(env)
            if value is None or pattern is None:
                return None
            if not isinstance(value, str) or not isinstance(pattern, str):
                raise SqlTypeError("LIKE requires string operands")
            escape = None
            if escape_fn is not None:
                escape_value = escape_fn(env)
                if escape_value is None:
                    return None
                escape = _escape_char(escape_value)
            # _like_to_regex carries an lru_cache, so dynamic patterns
            # compile once per distinct (pattern, escape) pair.
            result = bool(_like_to_regex(pattern, escape).match(value))
            return not result if negated else result

        return fn

    def _is_null(self, expr: ast.IsNull, frame) -> Optional[ExprFn]:
        value_fn = self._compile(expr.expr, frame)
        if value_fn is None:
            return None
        if expr.negated:
            return lambda env: value_fn(env) is not None
        return lambda env: value_fn(env) is None

    def _case(self, expr: ast.Case, frame) -> Optional[ExprFn]:
        when_fns = []
        for cond, result in expr.whens:
            cond_fn = self._compile(cond, frame)
            result_fn = self._compile(result, frame)
            if cond_fn is None or result_fn is None:
                return None
            when_fns.append((cond_fn, result_fn))
        else_fn = (
            self._compile(expr.else_, frame) if expr.else_ is not None else None
        )
        if expr.else_ is not None and else_fn is None:
            return None
        if expr.operand is not None:
            operand_fn = self._compile(expr.operand, frame)
            if operand_fn is None:
                return None

            def fn_switch(env):
                operand = operand_fn(env)
                for cond_fn, result_fn in when_fns:
                    if compare("=", operand, cond_fn(env)) is True:
                        return result_fn(env)
                return else_fn(env) if else_fn is not None else None

            return fn_switch

        def fn_search(env):
            for cond_fn, result_fn in when_fns:
                if cond_fn(env) is True:
                    return result_fn(env)
            return else_fn(env) if else_fn is not None else None

        return fn_search

    def _cast(self, expr: ast.Cast, frame) -> Optional[ExprFn]:
        value_fn = self._compile(expr.expr, frame)
        if value_fn is None:
            return None
        target = expr.target
        if target is SqlType.VARCHAR:
            convert: Callable[[Any], Any] = _to_str
        elif target is SqlType.INTEGER:
            convert = int
        elif target is SqlType.REAL:
            convert = float
        else:
            convert = lambda value: coerce(value, target)  # noqa: E731

        def fn(env):
            value = value_fn(env)
            if value is None:
                return None
            return convert(value)

        return fn

    def _tuple(self, expr: ast.TupleExpr, frame) -> Optional[ExprFn]:
        item_fns = self._compile_all(expr.items, frame)
        if item_fns is None:
            return None
        return lambda env: tuple(item(env) for item in item_fns)

    _DISPATCH: Dict[type, Callable[..., Optional[ExprFn]]] = {}


ExpressionCompiler._DISPATCH = {
    ast.Literal: ExpressionCompiler._literal,
    ast.HostVar: ExpressionCompiler._hostvar,
    ast.ColumnRef: ExpressionCompiler._column,
    ast.SequenceNextval: ExpressionCompiler._nextval,
    ast.BinaryOp: ExpressionCompiler._binary,
    ast.UnaryOp: ExpressionCompiler._unary,
    ast.FunctionCall: ExpressionCompiler._function,
    ast.Between: ExpressionCompiler._between,
    ast.InList: ExpressionCompiler._in_list,
    ast.Like: ExpressionCompiler._like,
    ast.IsNull: ExpressionCompiler._is_null,
    ast.Case: ExpressionCompiler._case,
    ast.Cast: ExpressionCompiler._cast,
    ast.TupleExpr: ExpressionCompiler._tuple,
    # InSubquery / Exists / ScalarSubquery / Star stay interpreted.
}


def make_key_fn(bound: Sequence[BoundExpr]) -> Callable[[Optional[Env]], tuple]:
    """Compose per-key closures into one tuple-building key function
    (specialised for the common 1- and 2-column join/group keys)."""
    fns = [b.fn for b in bound]
    if not fns:
        return lambda env: ()
    if len(fns) == 1:
        only = fns[0]
        return lambda env: (only(env),)
    if len(fns) == 2:
        first, second = fns
        return lambda env: (first(env), second(env))
    return lambda env: tuple(fn(env) for fn in fns)
