"""A PEP 249 (DB-API 2.0) style adapter over the engine.

Downstream code written against the standard Python database interface
can talk to the mining system's SQL server without learning its native
API::

    from repro.sqlengine import dbapi

    conn = dbapi.connect()
    cur = conn.cursor()
    cur.execute("CREATE TABLE t (a INTEGER)")
    cur.execute("INSERT INTO t VALUES (:v)", {"v": 1})
    cur.execute("SELECT a FROM t")
    print(cur.fetchall())

Deliberate deviations, documented:

* ``paramstyle`` is ``"named"`` (``:name``), matching the engine's host
  variables (and the paper's Appendix A);
* the engine is non-transactional, so ``commit()`` is a no-op and
  ``rollback()`` raises :class:`NotSupportedError`;
* ``connect()`` may wrap an existing :class:`Database` so a DB-API
  consumer and a :class:`~repro.system.MiningSystem` can share one
  catalog.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro import faults
from repro.sqlengine.engine import Database, PreparedStatement
from repro.sqlengine.errors import SqlError
from repro.sqlengine.result import Result

apilevel = "2.0"
threadsafety = 2  # threads may share the module and connections
paramstyle = "named"


class Error(Exception):
    """DB-API base error (wraps the engine's SqlError)."""


class InterfaceError(Error):
    """Misuse of the DB-API itself (closed cursor, etc.)."""


class DatabaseError(Error):
    """Errors raised by the underlying engine."""


class NotSupportedError(DatabaseError):
    """Requested feature the engine deliberately lacks."""


def connect(database: Optional[Database] = None) -> "Connection":
    """Open a connection, optionally wrapping an existing engine."""
    return Connection(database if database is not None else Database())


class Connection:
    """A DB-API connection: a thin session over one Database.

    The connection keeps a small LRU of prepared statements, so
    re-executing the same SQL text through a cursor skips parsing (and,
    for SELECTs, planning) entirely — the DB-API route is as fast as
    the native :meth:`Database.prepare` route.
    """

    _PREPARED_CACHE_SIZE = 64

    def __init__(self, database: Database):
        self._db = database
        self._closed = False
        self._prepared: "OrderedDict[str, PreparedStatement]" = OrderedDict()
        # Guards the prepared-statement LRU: job workers share one
        # connection, and an unguarded move_to_end/popitem pair can
        # corrupt the OrderedDict under concurrent prepare().
        self._prepared_lock = threading.Lock()

    def prepare(self, operation: str) -> PreparedStatement:
        """Parse *operation* once, caching the handle per connection."""
        self._check_open()
        with self._prepared_lock:
            cached = self._prepared.get(operation)
            if cached is not None:
                self._prepared.move_to_end(operation)
                return cached
        try:
            statement = self._db.prepare(operation)
        except SqlError as exc:
            raise DatabaseError(str(exc)) from exc
        with self._prepared_lock:
            existing = self._prepared.get(operation)
            if existing is not None:
                self._prepared.move_to_end(operation)
                return existing
            self._prepared[operation] = statement
            while len(self._prepared) > self._PREPARED_CACHE_SIZE:
                self._prepared.popitem(last=False)
        return statement

    @property
    def database(self) -> Database:
        """The wrapped engine (for handover to a MiningSystem)."""
        return self._db

    def cursor(self) -> "Cursor":
        self._check_open()
        return Cursor(self)

    def commit(self) -> None:
        """No-op: statements are applied immediately (documented)."""
        self._check_open()

    def rollback(self) -> None:
        self._check_open()
        raise NotSupportedError(
            "the engine is non-transactional; rollback is not available"
        )

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")


class Cursor:
    """A DB-API cursor: executes statements, buffers the result."""

    arraysize = 1

    def __init__(self, connection: Connection):
        self._connection = connection
        self._closed = False
        self._result: Optional[Result] = None
        self._position = 0

    # -- execution -----------------------------------------------------

    def execute(
        self, operation: str, parameters: Optional[Dict[str, Any]] = None
    ) -> "Cursor":
        self._check_open()
        # Injected FaultError deliberately propagates unwrapped: it is
        # not a SqlError, and the retry layer matches it by type.
        faults.check("dbapi.execute")
        statement = self._connection.prepare(operation)
        tracer = self._connection.database.tracer
        try:
            if tracer.enabled:
                with tracer.span(
                    "dbapi.execute", category="sql", sql=operation[:80]
                ):
                    self._result = statement.execute(parameters)
            else:
                self._result = statement.execute(parameters)
        except SqlError as exc:
            raise DatabaseError(str(exc)) from exc
        self._position = 0
        return self

    def executemany(
        self, operation: str, seq_of_parameters: Sequence[Dict[str, Any]]
    ) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
        return self

    # -- results ----------------------------------------------------------

    @property
    def description(
        self,
    ) -> Optional[List[Tuple[str, None, None, None, None, None, None]]]:
        if self._result is None or not self._result.columns:
            return None
        return [
            (name, None, None, None, None, None, None)
            for name in self._result.columns
        ]

    @property
    def rowcount(self) -> int:
        if self._result is None:
            return -1
        return self._result.rowcount

    def fetchone(self) -> Optional[Tuple[Any, ...]]:
        rows = self._rows()
        if self._position >= len(rows):
            return None
        row = rows[self._position]
        self._position += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> List[Tuple[Any, ...]]:
        size = self.arraysize if size is None else size
        rows = self._rows()
        chunk = rows[self._position : self._position + size]
        self._position += len(chunk)
        return chunk

    def fetchall(self) -> List[Tuple[Any, ...]]:
        rows = self._rows()
        chunk = rows[self._position :]
        self._position = len(rows)
        return chunk

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        self._result = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # setinputsizes/setoutputsize are required no-ops per PEP 249
    def setinputsizes(self, sizes: Sequence[Any]) -> None:
        self._check_open()

    def setoutputsize(self, size: int, column: Optional[int] = None) -> None:
        self._check_open()

    def _rows(self) -> List[Tuple[Any, ...]]:
        self._check_open()
        if self._result is None:
            raise InterfaceError("no statement has been executed")
        return self._result.rows

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self._connection._check_open()
