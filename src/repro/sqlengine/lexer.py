"""Tokenizer for the SQL dialect understood by the engine.

The token stream distinguishes keywords, identifiers, literals
(numbers, strings, dates), host variables (``:name``), and operator /
punctuation symbols.  Keywords are recognised case-insensitively;
identifiers preserve their original spelling but compare
case-insensitively at the catalog level.
"""

from __future__ import annotations

import datetime
import enum
from dataclasses import dataclass
from typing import Any, Iterator, List

from repro.sqlengine.errors import SqlParseError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    NUMBER = "NUMBER"
    STRING = "STRING"
    DATE = "DATE"
    HOSTVAR = "HOSTVAR"  # :name
    SYMBOL = "SYMBOL"  # punctuation and operators
    EOF = "EOF"


#: Reserved words of the dialect.  Everything else is an identifier.
KEYWORDS = frozenset(
    """
    SELECT DISTINCT ALL FROM WHERE GROUP BY HAVING ORDER ASC DESC
    AND OR NOT IN BETWEEN LIKE ESCAPE IS NULL TRUE FALSE UNKNOWN EXISTS
    CREATE TABLE VIEW SEQUENCE INDEX DROP DELETE UPDATE SET INSERT INTO VALUES
    AS ON UNION INTERSECT EXCEPT CASE WHEN THEN ELSE END CAST
    COUNT SUM AVG MIN MAX LIMIT OFFSET DATE JOIN INNER LEFT RIGHT OUTER CROSS
    """.split()
)

#: Multi-character operator symbols, longest first.
_SYMBOLS2 = ("<>", "<=", ">=", "!=", "||", "..")
_SYMBOLS1 = "+-*/%(),.<>=;:"


@dataclass(frozen=True)
class Token:
    """One lexical token: its type, uppercase-normalised text for
    keywords/symbols, the literal value for constants, and position."""

    type: TokenType
    text: str
    value: Any
    position: int
    line: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in words

    def is_symbol(self, *symbols: str) -> bool:
        return self.type is TokenType.SYMBOL and self.text in symbols

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r})"



def _is_digit(ch: str) -> bool:
    """ASCII digit check (str.isdigit also matches e.g. superscripts,
    which int() rejects)."""
    return "0" <= ch <= "9"


def _is_ident_start(ch: str) -> bool:
    return ("a" <= ch <= "z") or ("A" <= ch <= "Z") or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return _is_ident_start(ch) or _is_digit(ch)


class Lexer:
    """Single-pass tokenizer; call :meth:`tokens` once per statement."""

    def __init__(self, text: str):
        self._text = text
        self._pos = 0
        self._line = 1

    def tokens(self) -> List[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        out = list(self._iter_tokens())
        out.append(Token(TokenType.EOF, "", None, self._pos, self._line))
        return out

    # ------------------------------------------------------------------
    def _iter_tokens(self) -> Iterator[Token]:
        text = self._text
        n = len(text)
        while self._pos < n:
            ch = text[self._pos]
            if ch in " \t\r":
                self._pos += 1
            elif ch == "\n":
                self._pos += 1
                self._line += 1
            elif text.startswith("--", self._pos):
                self._skip_line_comment()
            elif text.startswith("/*", self._pos):
                self._skip_block_comment()
            elif _is_digit(ch) or (
                ch == "." and self._pos + 1 < n
                and _is_digit(text[self._pos + 1])
            ):
                yield self._number()
            elif ch == "'":
                yield self._string()
            elif ch == ":" and self._pos + 1 < n and (
                _is_ident_start(text[self._pos + 1])
            ):
                yield self._hostvar()
            elif _is_ident_start(ch) or ch == '"':
                yield self._word()
            else:
                yield self._symbol()

    def _skip_line_comment(self) -> None:
        end = self._text.find("\n", self._pos)
        self._pos = len(self._text) if end < 0 else end

    def _skip_block_comment(self) -> None:
        end = self._text.find("*/", self._pos + 2)
        if end < 0:
            raise SqlParseError("unterminated comment", self._pos, self._line)
        self._line += self._text.count("\n", self._pos, end)
        self._pos = end + 2

    def _number(self) -> Token:
        start = self._pos
        text = self._text
        n = len(text)
        seen_dot = False
        while self._pos < n:
            ch = text[self._pos]
            if _is_digit(ch):
                self._pos += 1
            elif ch == "." and not seen_dot:
                # ".." is the cardinality range operator, not a decimal point
                if text.startswith("..", self._pos):
                    break
                seen_dot = True
                self._pos += 1
            else:
                break
        raw = text[start : self._pos]
        value: Any = float(raw) if seen_dot else int(raw)
        return Token(TokenType.NUMBER, raw, value, start, self._line)

    def _string(self) -> Token:
        start = self._pos
        self._pos += 1  # opening quote
        chars: List[str] = []
        text = self._text
        n = len(text)
        while self._pos < n:
            ch = text[self._pos]
            if ch == "'":
                if self._pos + 1 < n and text[self._pos + 1] == "'":
                    chars.append("'")  # escaped quote
                    self._pos += 2
                    continue
                self._pos += 1
                value = "".join(chars)
                return Token(TokenType.STRING, value, value, start, self._line)
            if ch == "\n":
                self._line += 1
            chars.append(ch)
            self._pos += 1
        raise SqlParseError("unterminated string literal", start, self._line)

    def _hostvar(self) -> Token:
        start = self._pos
        self._pos += 1  # the colon
        text = self._text
        n = len(text)
        while self._pos < n and _is_ident_char(text[self._pos]):
            self._pos += 1
        name = text[start + 1 : self._pos]
        return Token(TokenType.HOSTVAR, name, name, start, self._line)

    def _word(self) -> Token:
        start = self._pos
        text = self._text
        n = len(text)
        if text[self._pos] == '"':  # delimited identifier
            end = text.find('"', self._pos + 1)
            if end < 0:
                raise SqlParseError(
                    "unterminated delimited identifier", start, self._line
                )
            name = text[self._pos + 1 : end]
            self._pos = end + 1
            return Token(TokenType.IDENT, name, name, start, self._line)
        while self._pos < n and _is_ident_char(text[self._pos]):
            self._pos += 1
        word = text[start : self._pos]
        upper = word.upper()
        if upper == "DATE" and self._peek_string_follows():
            return self._date_literal(start)
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, None, start, self._line)
        return Token(TokenType.IDENT, word, word, start, self._line)

    def _peek_string_follows(self) -> bool:
        pos = self._pos
        text = self._text
        while pos < len(text) and text[pos] in " \t":
            pos += 1
        return pos < len(text) and text[pos] == "'"

    def _date_literal(self, start: int) -> Token:
        while self._text[self._pos] in " \t":
            self._pos += 1
        string_tok = self._string()
        try:
            value = datetime.date.fromisoformat(string_tok.value)
        except ValueError:
            raise SqlParseError(
                f"invalid DATE literal {string_tok.value!r}", start, self._line
            ) from None
        return Token(TokenType.DATE, string_tok.value, value, start, self._line)

    def _symbol(self) -> Token:
        start = self._pos
        text = self._text
        for sym in _SYMBOLS2:
            if text.startswith(sym, start):
                self._pos += len(sym)
                canonical = "<>" if sym == "!=" else sym
                return Token(TokenType.SYMBOL, canonical, None, start, self._line)
        ch = text[start]
        if ch in _SYMBOLS1:
            self._pos += 1
            return Token(TokenType.SYMBOL, ch, None, start, self._line)
        raise SqlParseError(f"unexpected character {ch!r}", start, self._line)


def tokenize(text: str) -> List[Token]:
    """Convenience wrapper: tokenize *text* into a list of tokens."""
    return Lexer(text).tokens()
