"""Physical operators for query execution.

Operators follow the iterator (Volcano) model: each exposes a
:attr:`frame` describing its output schema and an :meth:`envs` method
yielding :class:`~repro.sqlengine.evaluator.Env` objects.  A frame can
contain several sources (one per joined table), so column references
keep their table qualifiers through the pipeline; projection collapses
the frame into a single anonymous source.

Expressions are bound at construction time through
:mod:`repro.sqlengine.compiler`: when the engine's
``compile_expressions`` option is on (the default) predicates and keys
run as compiled closures with pre-resolved column slots; otherwise (or
when an expression is not lowerable) they run through the interpreted
:class:`~repro.sqlengine.evaluator.Evaluator` with identical
semantics.  Each operator records the outcome in :attr:`compiled` for
EXPLAIN.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.compiler import ExpressionCompiler, bind_expr, make_key_fn
from repro.sqlengine.evaluator import Env, Evaluator, Frame
from repro.sqlengine.table import Table

Row = Tuple[Any, ...]


class Operator:
    """Base physical operator."""

    frame: Frame
    #: True when every expression of this node runs compiled
    compiled: bool = False

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        """Yield row environments; *parent* is the enclosing scope used
        by correlated subqueries."""
        raise NotImplementedError


class TableScan(Operator):
    """Full scan of a base table under a binding name."""

    def __init__(self, table: Table, binding: str):
        self.table = table
        self.binding = binding
        self.frame = Frame.single(binding, table.columns)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        frame = self.frame
        for row in self.table.rows:
            yield Env(frame, (row,), parent=parent)


class IndexLookup(Operator):
    """Equality lookup through a secondary hash index.

    ``key_exprs`` are evaluated per call against the *parent*
    environment (they may reference outer scopes or host variables),
    so the same plan node serves constant predicates and correlated
    subqueries alike.
    """

    def __init__(self, table: Table, binding: str, index, key_exprs,
                 evaluator, compiler: Optional[ExpressionCompiler] = None):
        self.table = table
        self.binding = binding
        self.index = index
        self.key_exprs = key_exprs
        self.evaluator = evaluator
        self.frame = Frame.single(binding, table.columns)
        # Keys run against the *outer* scope, whose frame is unknown at
        # plan time: only self-contained expressions (literals, host
        # variables, arithmetic over them) compile; outer column
        # references fall back to the interpreter's parent-env walk.
        bound = [bind_expr(e, None, evaluator, compiler) for e in key_exprs]
        self._key_fn = make_key_fn(bound)
        self.compiled = bool(bound) and all(b.compiled for b in bound)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        key = self._key_fn(parent)
        if any(value is None for value in key):
            return
        frame = self.frame
        for row in self.index.lookup(key):
            yield Env(frame, (row,), parent=parent)


class RowsSource(Operator):
    """Materialized rows under a binding (derived tables, views)."""

    def __init__(
        self, binding: Optional[str], columns: List[str], rows: List[Tuple[Any, ...]]
    ):
        self.frame = Frame.single(binding, columns)
        self.rows = rows

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        frame = self.frame
        for row in self.rows:
            yield Env(frame, (row,), parent=parent)


class Filter(Operator):
    """Keeps rows whose predicate evaluates to TRUE."""

    def __init__(self, child: Operator, predicate: ast.Expression,
                 evaluator: Evaluator,
                 compiler: Optional[ExpressionCompiler] = None):
        self.child = child
        self.predicate = predicate
        self.evaluator = evaluator
        self.frame = child.frame
        self._predicate = bind_expr(predicate, child.frame, evaluator, compiler)
        self.compiled = self._predicate.compiled

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        predicate = self._predicate.fn
        for env in self.child.envs(parent):
            if predicate(env) is True:
                yield env


class NestedLoopJoin(Operator):
    """Cross/theta join; the optional residual predicate is applied to
    the combined environment."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        evaluator: Evaluator,
        predicate: Optional[ast.Expression] = None,
        compiler: Optional[ExpressionCompiler] = None,
    ):
        self.left = left
        self.right = right
        self.evaluator = evaluator
        self.predicate = predicate
        self.frame = left.frame.combine(right.frame)
        self._predicate = (
            bind_expr(predicate, self.frame, evaluator, compiler)
            if predicate is not None
            else None
        )
        self.compiled = (
            self._predicate.compiled if self._predicate is not None else False
        )

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        predicate = self._predicate.fn if self._predicate is not None else None
        frame = self.frame
        right_rows = [tuple(env.rows) for env in self.right.envs(parent)]
        for left_env in self.left.envs(parent):
            left_rows = tuple(left_env.rows)
            for rows in right_rows:
                env = Env(frame, left_rows + rows, parent=parent)
                if predicate is None or predicate(env) is True:
                    yield env


class HashJoin(Operator):
    """Equi-join: builds a hash table on the right input.

    ``left_keys`` / ``right_keys`` are expressions evaluated against the
    respective child environments; rows with any NULL key never match
    (SQL equality semantics).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: List[ast.Expression],
        right_keys: List[ast.Expression],
        evaluator: Evaluator,
        residual: Optional[ast.Expression] = None,
        compiler: Optional[ExpressionCompiler] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.evaluator = evaluator
        self.residual = residual
        self.frame = left.frame.combine(right.frame)
        left_bound = [bind_expr(k, left.frame, evaluator, compiler)
                      for k in left_keys]
        right_bound = [bind_expr(k, right.frame, evaluator, compiler)
                       for k in right_keys]
        self._left_key = make_key_fn(left_bound)
        self._right_key = make_key_fn(right_bound)
        self._residual = (
            bind_expr(residual, self.frame, evaluator, compiler)
            if residual is not None
            else None
        )
        parts = left_bound + right_bound + (
            [self._residual] if self._residual is not None else []
        )
        self.compiled = bool(parts) and all(b.compiled for b in parts)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        right_key = self._right_key
        build: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for right_env in self.right.envs(parent):
            key = right_key(right_env)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(tuple(right_env.rows))
        frame = self.frame
        residual = self._residual.fn if self._residual is not None else None
        left_key = self._left_key
        for left_env in self.left.envs(parent):
            key = left_key(left_env)
            if any(v is None for v in key):
                continue
            bucket = build.get(key)
            if not bucket:
                continue
            left_rows = tuple(left_env.rows)
            for right_rows in bucket:
                env = Env(frame, left_rows + right_rows, parent=parent)
                if residual is None or residual(env) is True:
                    yield env


class LeftOuterHashJoin(Operator):
    """LEFT OUTER equi-join; unmatched left rows pad the right side with
    NULLs."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: List[ast.Expression],
        right_keys: List[ast.Expression],
        evaluator: Evaluator,
        residual: Optional[ast.Expression] = None,
        compiler: Optional[ExpressionCompiler] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.evaluator = evaluator
        self.residual = residual
        self.frame = left.frame.combine(right.frame)
        self._null_rows = tuple(
            tuple([None] * len(columns)) for _, columns in right.frame.sources
        )
        left_bound = [bind_expr(k, left.frame, evaluator, compiler)
                      for k in left_keys]
        right_bound = [bind_expr(k, right.frame, evaluator, compiler)
                       for k in right_keys]
        self._left_key = make_key_fn(left_bound)
        self._right_key = make_key_fn(right_bound)
        self._residual = (
            bind_expr(residual, self.frame, evaluator, compiler)
            if residual is not None
            else None
        )
        parts = left_bound + right_bound + (
            [self._residual] if self._residual is not None else []
        )
        self.compiled = bool(parts) and all(b.compiled for b in parts)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        right_key = self._right_key
        build: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
        for right_env in self.right.envs(parent):
            key = right_key(right_env)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(tuple(right_env.rows))
        frame = self.frame
        residual = self._residual.fn if self._residual is not None else None
        left_key = self._left_key
        null_rows = self._null_rows
        for left_env in self.left.envs(parent):
            key = left_key(left_env)
            left_rows = tuple(left_env.rows)
            matched = False
            if not any(v is None for v in key):
                for right_rows in build.get(key, ()):
                    env = Env(frame, left_rows + right_rows, parent=parent)
                    if residual is None or residual(env) is True:
                        matched = True
                        yield env
            if not matched:
                yield Env(frame, left_rows + null_rows, parent=parent)


class GroupAggregate(Operator):
    """Hash grouping.  Produces one environment per group; the
    representative env carries ``group`` (the member envs) so the
    evaluator can compute aggregates lazily.

    With no GROUP BY keys and aggregates present, a single global group
    is emitted even for empty input (``scalar`` mode).
    """

    def __init__(
        self,
        child: Operator,
        keys: List[ast.Expression],
        evaluator: Evaluator,
        scalar: bool = False,
        compiler: Optional[ExpressionCompiler] = None,
    ):
        self.child = child
        self.keys = keys
        self.evaluator = evaluator
        self.scalar = scalar
        self.frame = child.frame
        bound = [bind_expr(k, child.frame, evaluator, compiler) for k in keys]
        self._key_fn = make_key_fn(bound)
        self.compiled = bool(bound) and all(b.compiled for b in bound)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        key_fn = self._key_fn
        groups: Dict[Tuple[Any, ...], List[Env]] = {}
        order: List[Tuple[Any, ...]] = []
        for env in self.child.envs(parent):
            key = key_fn(env)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [env]
                order.append(key)
            else:
                bucket.append(env)
        if not groups and self.scalar:
            empty = Env(
                self.frame,
                tuple(
                    tuple([None] * len(columns))
                    for _, columns in self.frame.sources
                ),
                parent=parent,
                group=[],
            )
            yield empty
            return
        for key in order:
            members = groups[key]
            yield members[0].with_group(members)
