"""Physical operators for query execution.

Operators follow the iterator (Volcano) model: each exposes a
:attr:`frame` describing its output schema and an :meth:`envs` method
yielding :class:`~repro.sqlengine.evaluator.Env` objects.  A frame can
contain several sources (one per joined table), so column references
keep their table qualifiers through the pipeline; projection collapses
the frame into a single anonymous source.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.evaluator import Env, Evaluator, Frame
from repro.sqlengine.table import Table


class Operator:
    """Base physical operator."""

    frame: Frame

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        """Yield row environments; *parent* is the enclosing scope used
        by correlated subqueries."""
        raise NotImplementedError


class TableScan(Operator):
    """Full scan of a base table under a binding name."""

    def __init__(self, table: Table, binding: str):
        self.table = table
        self.binding = binding
        self.frame = Frame.single(binding, table.columns)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        frame = self.frame
        for row in self.table.rows:
            yield Env(frame, (row,), parent=parent)


class IndexLookup(Operator):
    """Equality lookup through a secondary hash index.

    ``key_exprs`` are evaluated per call against the *parent*
    environment (they may reference outer scopes or host variables),
    so the same plan node serves constant predicates and correlated
    subqueries alike.
    """

    def __init__(self, table: Table, binding: str, index, key_exprs,
                 evaluator):
        self.table = table
        self.binding = binding
        self.index = index
        self.key_exprs = key_exprs
        self.evaluator = evaluator
        self.frame = Frame.single(binding, table.columns)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        key = tuple(
            self.evaluator.eval(expr, parent) for expr in self.key_exprs
        )
        if any(value is None for value in key):
            return
        frame = self.frame
        for row in self.index.lookup(key):
            yield Env(frame, (row,), parent=parent)


class RowsSource(Operator):
    """Materialized rows under a binding (derived tables, views)."""

    def __init__(
        self, binding: Optional[str], columns: List[str], rows: List[Tuple[Any, ...]]
    ):
        self.frame = Frame.single(binding, columns)
        self.rows = rows

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        frame = self.frame
        for row in self.rows:
            yield Env(frame, (row,), parent=parent)


class Filter(Operator):
    """Keeps rows whose predicate evaluates to TRUE."""

    def __init__(self, child: Operator, predicate: ast.Expression, evaluator: Evaluator):
        self.child = child
        self.predicate = predicate
        self.evaluator = evaluator
        self.frame = child.frame

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        evaluator = self.evaluator
        predicate = self.predicate
        for env in self.child.envs(parent):
            if evaluator.eval_predicate(predicate, env):
                yield env


class NestedLoopJoin(Operator):
    """Cross/theta join; the optional residual predicate is applied to
    the combined environment."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        evaluator: Evaluator,
        predicate: Optional[ast.Expression] = None,
    ):
        self.left = left
        self.right = right
        self.evaluator = evaluator
        self.predicate = predicate
        self.frame = left.frame.combine(right.frame)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        evaluator = self.evaluator
        predicate = self.predicate
        frame = self.frame
        right_envs = list(self.right.envs(parent))
        for left_env in self.left.envs(parent):
            for right_env in right_envs:
                rows = tuple(left_env.rows) + tuple(right_env.rows)
                env = Env(frame, rows, parent=parent)
                if predicate is None or evaluator.eval_predicate(predicate, env):
                    yield env


class HashJoin(Operator):
    """Equi-join: builds a hash table on the right input.

    ``left_keys`` / ``right_keys`` are expressions evaluated against the
    respective child environments; rows with any NULL key never match
    (SQL equality semantics).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: List[ast.Expression],
        right_keys: List[ast.Expression],
        evaluator: Evaluator,
        residual: Optional[ast.Expression] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.evaluator = evaluator
        self.residual = residual
        self.frame = left.frame.combine(right.frame)

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        evaluator = self.evaluator
        build: Dict[Tuple[Any, ...], List[Env]] = {}
        for right_env in self.right.envs(parent):
            key = tuple(evaluator.eval(k, right_env) for k in self.right_keys)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(right_env)
        frame = self.frame
        residual = self.residual
        for left_env in self.left.envs(parent):
            key = tuple(evaluator.eval(k, left_env) for k in self.left_keys)
            if any(v is None for v in key):
                continue
            for right_env in build.get(key, ()):
                rows = tuple(left_env.rows) + tuple(right_env.rows)
                env = Env(frame, rows, parent=parent)
                if residual is None or evaluator.eval_predicate(residual, env):
                    yield env


class LeftOuterHashJoin(Operator):
    """LEFT OUTER equi-join; unmatched left rows pad the right side with
    NULLs."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_keys: List[ast.Expression],
        right_keys: List[ast.Expression],
        evaluator: Evaluator,
        residual: Optional[ast.Expression] = None,
    ):
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.evaluator = evaluator
        self.residual = residual
        self.frame = left.frame.combine(right.frame)
        self._null_rows = tuple(
            tuple([None] * len(columns)) for _, columns in right.frame.sources
        )

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        evaluator = self.evaluator
        build: Dict[Tuple[Any, ...], List[Env]] = {}
        for right_env in self.right.envs(parent):
            key = tuple(evaluator.eval(k, right_env) for k in self.right_keys)
            if any(v is None for v in key):
                continue
            build.setdefault(key, []).append(right_env)
        frame = self.frame
        residual = self.residual
        for left_env in self.left.envs(parent):
            key = tuple(evaluator.eval(k, left_env) for k in self.left_keys)
            matched = False
            if not any(v is None for v in key):
                for right_env in build.get(key, ()):
                    rows = tuple(left_env.rows) + tuple(right_env.rows)
                    env = Env(frame, rows, parent=parent)
                    if residual is None or evaluator.eval_predicate(residual, env):
                        matched = True
                        yield env
            if not matched:
                rows = tuple(left_env.rows) + self._null_rows
                yield Env(frame, rows, parent=parent)


class GroupAggregate(Operator):
    """Hash grouping.  Produces one environment per group; the
    representative env carries ``group`` (the member envs) so the
    evaluator can compute aggregates lazily.

    With no GROUP BY keys and aggregates present, a single global group
    is emitted even for empty input (``scalar`` mode).
    """

    def __init__(
        self,
        child: Operator,
        keys: List[ast.Expression],
        evaluator: Evaluator,
        scalar: bool = False,
    ):
        self.child = child
        self.keys = keys
        self.evaluator = evaluator
        self.scalar = scalar
        self.frame = child.frame

    def envs(self, parent: Optional[Env]) -> Iterator[Env]:
        evaluator = self.evaluator
        groups: Dict[Tuple[Any, ...], List[Env]] = {}
        order: List[Tuple[Any, ...]] = []
        for env in self.child.envs(parent):
            key = tuple(evaluator.eval(k, env) for k in self.keys)
            bucket = groups.get(key)
            if bucket is None:
                groups[key] = [env]
                order.append(key)
            else:
                bucket.append(env)
        if not groups and self.scalar:
            empty = Env(
                self.frame,
                tuple(
                    tuple([None] * len(columns))
                    for _, columns in self.frame.sources
                ),
                parent=parent,
                group=[],
            )
            yield empty
            return
        for key in order:
            members = groups[key]
            yield members[0].with_group(members)
