"""In-memory table storage.

A :class:`Table` is a schema (ordered column names with SQL types) plus
a list of row tuples.  Column lookup is case-insensitive, matching the
catalog's identifier semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.types import SqlType, coerce, infer_type

Row = Tuple[Any, ...]


class TableIndex:
    """A hash index over one or more columns.

    Maps a key tuple (one value per indexed column) to the list of
    rows carrying it.  NULL keys are not indexed — SQL equality can
    never select them.
    """

    __slots__ = ("name", "columns", "positions", "entries")

    def __init__(self, name: str, columns: Tuple[str, ...],
                 positions: Tuple[int, ...]):
        self.name = name
        self.columns = columns
        self.positions = positions
        self.entries: Dict[Tuple[Any, ...], List[Row]] = {}

    def key_of(self, row: Row) -> Optional[Tuple[Any, ...]]:
        key = tuple(row[i] for i in self.positions)
        if any(v is None for v in key):
            return None
        return key

    def add(self, row: Row) -> None:
        key = self.key_of(row)
        if key is not None:
            self.entries.setdefault(key, []).append(row)

    def lookup(self, key: Tuple[Any, ...]) -> List[Row]:
        return self.entries.get(key, [])

    def rebuild(self, rows: Iterable[Row]) -> None:
        self.entries = {}
        for row in rows:
            self.add(row)


class Table:
    """A mutable heap of rows with a fixed schema.

    Secondary hash indexes (:class:`TableIndex`) are maintained on
    every mutation; the planner uses them for equality lookups."""

    #: physical layout discriminator; ColumnarTable overrides this —
    #: the planner/vectorizer branch on it instead of isinstance so
    #: duck-typed test doubles keep working
    storage = "row"

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        types: Optional[Sequence[Optional[SqlType]]] = None,
    ):
        if len(set(c.lower() for c in columns)) != len(columns):
            raise CatalogError(f"duplicate column name in table {name!r}")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self.types: List[Optional[SqlType]] = (
            list(types) if types is not None else [None] * len(columns)
        )
        if len(self.types) != len(self.columns):
            raise CatalogError(
                f"table {name!r}: {len(columns)} columns but {len(self.types)} types"
            )
        self.rows: List[Row] = []
        self._index: Dict[str, int] = {c.lower(): i for i, c in enumerate(columns)}
        #: secondary indexes by lowered name
        self.indexes: Dict[str, TableIndex] = {}

    # -- schema ----------------------------------------------------------

    def column_index(self, column: str) -> int:
        """Position of *column* (case-insensitive); :class:`CatalogError`
        if absent."""
        try:
            return self._index[column.lower()]
        except KeyError:
            raise CatalogError(
                f"no column {column!r} in table {self.name!r} "
                f"(columns: {', '.join(self.columns)})"
            ) from None

    def has_column(self, column: str) -> bool:
        return column.lower() in self._index

    @property
    def arity(self) -> int:
        return len(self.columns)

    # -- data ------------------------------------------------------------

    def insert(self, values: Sequence[Any]) -> None:
        """Append one row, coercing values to declared column types."""
        if len(values) != self.arity:
            raise ExecutionError(
                f"INSERT into {self.name!r}: expected {self.arity} values, "
                f"got {len(values)}"
            )
        row = []
        for i, value in enumerate(values):
            declared = self.types[i]
            if declared is None:
                if value is not None:
                    self.types[i] = infer_type(value)
                row.append(value)
            else:
                row.append(coerce(value, declared))
        stored = tuple(row)
        self.rows.append(stored)
        for table_index in self.indexes.values():
            table_index.add(stored)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def truncate(self) -> None:
        self.rows.clear()
        for table_index in self.indexes.values():
            table_index.entries = {}

    def replace_rows(self, rows: List[Row]) -> None:
        """Swap the row list (DELETE/UPDATE path) and rebuild indexes."""
        self.rows = rows
        for table_index in self.indexes.values():
            table_index.rebuild(rows)

    # -- secondary indexes ----------------------------------------------

    def create_index(self, name: str, columns: Sequence[str]) -> TableIndex:
        key = name.lower()
        if key in self.indexes:
            raise CatalogError(f"index {name!r} already exists on "
                               f"{self.name!r}")
        positions = tuple(self.column_index(c) for c in columns)
        table_index = TableIndex(name, tuple(columns), positions)
        table_index.rebuild(self.rows)
        self.indexes[key] = table_index
        return table_index

    def drop_index(self, name: str) -> None:
        self.indexes.pop(name.lower(), None)

    def index_covering(self, columns: Sequence[str]) -> Optional[TableIndex]:
        """An index whose column set equals *columns* (any order)."""
        wanted = {c.lower() for c in columns}
        for table_index in self.indexes.values():
            if {c.lower() for c in table_index.columns} == wanted:
                return table_index
        return None

    def get(self, row: Row, column: str) -> Any:
        return row[self.column_index(column)]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, {len(self.rows)} rows)"

    # -- presentation ------------------------------------------------------

    def pretty(self, limit: Optional[int] = None) -> str:
        """Render an ASCII table (used by examples and benches)."""
        rows = self.rows if limit is None else self.rows[:limit]
        cells = [[_fmt(v) for v in row] for row in rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        header = "|" + "|".join(
            f" {c.ljust(w)} " for c, w in zip(self.columns, widths)
        ) + "|"
        lines = [sep, header, sep]
        for row in cells:
            lines.append(
                "|" + "|".join(f" {c.ljust(w)} " for c, w in zip(row, widths)) + "|"
            )
        lines.append(sep)
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)
