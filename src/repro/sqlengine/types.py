"""SQL value types and coercion rules.

The engine supports the scalar types needed by the mining architecture:
``INTEGER``, ``REAL`` (synonyms: ``FLOAT``, ``NUMERIC``, ``DECIMAL``),
``VARCHAR`` (synonyms: ``CHAR``, ``TEXT``), ``DATE`` and ``BOOLEAN``.

Python-side representations:

===========  =======================
SQL type     Python type
===========  =======================
INTEGER      :class:`int`
REAL         :class:`float`
VARCHAR      :class:`str`
DATE         :class:`datetime.date`
BOOLEAN      :class:`bool`
NULL         ``None``
===========  =======================
"""

from __future__ import annotations

import datetime
import enum
from typing import Any, Optional

from repro.sqlengine.errors import SqlTypeError


class SqlType(enum.Enum):
    """Enumeration of supported SQL scalar types."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    VARCHAR = "VARCHAR"
    DATE = "DATE"
    BOOLEAN = "BOOLEAN"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Accepted spellings for each type in DDL.
_TYPE_SYNONYMS = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "SMALLINT": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "REAL": SqlType.REAL,
    "FLOAT": SqlType.REAL,
    "DOUBLE": SqlType.REAL,
    "NUMERIC": SqlType.REAL,
    "DECIMAL": SqlType.REAL,
    "VARCHAR": SqlType.VARCHAR,
    "CHAR": SqlType.VARCHAR,
    "CHARACTER": SqlType.VARCHAR,
    "TEXT": SqlType.VARCHAR,
    "STRING": SqlType.VARCHAR,
    "DATE": SqlType.DATE,
    "BOOLEAN": SqlType.BOOLEAN,
    "BOOL": SqlType.BOOLEAN,
}


def type_from_name(name: str) -> SqlType:
    """Resolve a DDL type name (case-insensitive) to a :class:`SqlType`.

    Raises :class:`SqlTypeError` for unknown names.
    """
    try:
        return _TYPE_SYNONYMS[name.upper()]
    except KeyError:
        raise SqlTypeError(f"unknown SQL type: {name!r}") from None


def infer_type(value: Any) -> Optional[SqlType]:
    """Infer the SQL type of a Python value (``None`` for SQL NULL)."""
    if value is None:
        return None
    if isinstance(value, bool):  # bool before int: bool is an int subclass
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.VARCHAR
    if isinstance(value, datetime.date):
        return SqlType.DATE
    raise SqlTypeError(f"unsupported Python value for SQL: {value!r}")


def coerce(value: Any, target: SqlType) -> Any:
    """Coerce *value* to *target* type, or raise :class:`SqlTypeError`.

    NULL passes through unchanged.  Numeric widening (int -> float) and
    ISO-format date strings are accepted; anything else must match.
    """
    if value is None:
        return None
    if target is SqlType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
    elif target is SqlType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
    elif target is SqlType.VARCHAR:
        if isinstance(value, str):
            return value
    elif target is SqlType.DATE:
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value)
            except ValueError:
                raise SqlTypeError(
                    f"invalid DATE literal: {value!r} (expected YYYY-MM-DD)"
                ) from None
    elif target is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
    raise SqlTypeError(f"cannot coerce {value!r} to {target}")


def is_comparable(left: Any, right: Any) -> bool:
    """True when the two non-NULL values may be ordered against each other."""
    lt, rt = infer_type(left), infer_type(right)
    if lt is None or rt is None:
        return True
    numeric = {SqlType.INTEGER, SqlType.REAL, SqlType.BOOLEAN}
    if lt in numeric and rt in numeric:
        return True
    return lt is rt
