"""Render expression/statement ASTs back to SQL text.

The mining translator composes its preprocessing programs (queries
Q0..Q11) as *SQL text*, splicing in the search conditions that the user
wrote inside the MINE RULE statement.  Those conditions are parsed
expression trees, so this module provides the inverse of the parser.

Rendering is deliberately conservative: every binary expression is
parenthesised, which keeps the output unambiguous without tracking
operator precedence.
"""

from __future__ import annotations

import datetime
from typing import Callable, Dict, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlError


def render_expr(
    expr: ast.Expression,
    qualifier_map: Optional[Dict[str, str]] = None,
) -> str:
    """Render an expression to SQL text.

    ``qualifier_map`` remaps column qualifiers (case-insensitive): the
    translator uses it to turn ``BODY.price`` into ``B.price`` when the
    condition is evaluated against aliased encoded tables.  Unqualified
    references may be given a qualifier via the ``""`` key.
    """
    return _Renderer(qualifier_map or {}).render(expr)


class _Renderer:
    def __init__(self, qualifier_map: Dict[str, str]):
        self._map = {k.lower(): v for k, v in qualifier_map.items()}

    def render(self, expr: ast.Expression) -> str:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise SqlError(f"cannot render expression node {expr!r}")
        return method(self, expr)

    # -- handlers ---------------------------------------------------------

    def _literal(self, expr: ast.Literal) -> str:
        return render_literal(expr.value)

    def _hostvar(self, expr: ast.HostVar) -> str:
        return f":{expr.name}"

    def _column(self, expr: ast.ColumnRef) -> str:
        qualifier = expr.qualifier
        if qualifier is not None and qualifier.lower() in self._map:
            qualifier = self._map[qualifier.lower()]
        elif qualifier is None and "" in self._map:
            qualifier = self._map[""]
        return f"{qualifier}.{expr.name}" if qualifier else expr.name

    def _nextval(self, expr: ast.SequenceNextval) -> str:
        return f"{expr.sequence}.NEXTVAL"

    def _binary(self, expr: ast.BinaryOp) -> str:
        return f"({self.render(expr.left)} {expr.op} {self.render(expr.right)})"

    def _unary(self, expr: ast.UnaryOp) -> str:
        if expr.op == "NOT":
            return f"(NOT {self.render(expr.operand)})"
        return f"({expr.op}{self.render(expr.operand)})"

    def _function(self, expr: ast.FunctionCall) -> str:
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(self.render(a) for a in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{expr.name}({distinct}{args})"

    def _between(self, expr: ast.Between) -> str:
        negation = " NOT" if expr.negated else ""
        return (
            f"({self.render(expr.expr)}{negation} BETWEEN "
            f"{self.render(expr.low)} AND {self.render(expr.high)})"
        )

    def _in_list(self, expr: ast.InList) -> str:
        negation = " NOT" if expr.negated else ""
        items = ", ".join(self.render(i) for i in expr.items)
        return f"({self.render(expr.expr)}{negation} IN ({items}))"

    def _in_subquery(self, expr: ast.InSubquery) -> str:
        negation = " NOT" if expr.negated else ""
        return (
            f"({self.render(expr.expr)}{negation} IN "
            f"({render_select(expr.subquery, self._map)}))"
        )

    def _exists(self, expr: ast.Exists) -> str:
        negation = "NOT " if expr.negated else ""
        return f"({negation}EXISTS ({render_select(expr.subquery, self._map)}))"

    def _like(self, expr: ast.Like) -> str:
        negation = " NOT" if expr.negated else ""
        rendered = (
            f"({self.render(expr.expr)}{negation} LIKE "
            f"{self.render(expr.pattern)}"
        )
        if expr.escape is not None:
            rendered += f" ESCAPE {self.render(expr.escape)}"
        return rendered + ")"

    def _is_null(self, expr: ast.IsNull) -> str:
        negation = " NOT" if expr.negated else ""
        return f"({self.render(expr.expr)} IS{negation} NULL)"

    def _case(self, expr: ast.Case) -> str:
        parts = ["CASE"]
        if expr.operand is not None:
            parts.append(self.render(expr.operand))
        for cond, result in expr.whens:
            parts.append(f"WHEN {self.render(cond)} THEN {self.render(result)}")
        if expr.else_ is not None:
            parts.append(f"ELSE {self.render(expr.else_)}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"

    def _cast(self, expr: ast.Cast) -> str:
        return f"CAST({self.render(expr.expr)} AS {expr.target.value})"

    def _scalar_subquery(self, expr: ast.ScalarSubquery) -> str:
        return f"({render_select(expr.select, self._map)})"

    def _tuple(self, expr: ast.TupleExpr) -> str:
        return "(" + ", ".join(self.render(i) for i in expr.items) + ")"

    def _star(self, expr: ast.Star) -> str:
        return f"{expr.qualifier}.*" if expr.qualifier else "*"

    _DISPATCH: Dict[type, Callable] = {}


_Renderer._DISPATCH = {
    ast.Literal: _Renderer._literal,
    ast.HostVar: _Renderer._hostvar,
    ast.ColumnRef: _Renderer._column,
    ast.SequenceNextval: _Renderer._nextval,
    ast.BinaryOp: _Renderer._binary,
    ast.UnaryOp: _Renderer._unary,
    ast.FunctionCall: _Renderer._function,
    ast.Between: _Renderer._between,
    ast.InList: _Renderer._in_list,
    ast.InSubquery: _Renderer._in_subquery,
    ast.Exists: _Renderer._exists,
    ast.Like: _Renderer._like,
    ast.IsNull: _Renderer._is_null,
    ast.Case: _Renderer._case,
    ast.Cast: _Renderer._cast,
    ast.ScalarSubquery: _Renderer._scalar_subquery,
    ast.TupleExpr: _Renderer._tuple,
    ast.Star: _Renderer._star,
}


def render_literal(value: object) -> str:
    """Render a Python value as a SQL literal."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, datetime.date):
        return f"DATE '{value.isoformat()}'"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise SqlError(f"cannot render literal {value!r}")


def render_select(
    select: ast.Select, qualifier_map: Optional[Dict[str, str]] = None
) -> str:
    """Render a SELECT AST back to text (used for subqueries embedded
    in rendered conditions)."""
    renderer = _Renderer(qualifier_map or {})
    parts = ["SELECT"]
    if select.distinct:
        parts.append("DISTINCT")
    items = []
    for item in select.items:
        text = renderer.render(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if select.from_sources:
        parts.append("FROM")
        parts.append(
            ", ".join(_render_source(s, renderer) for s in select.from_sources)
        )
    if select.where is not None:
        parts.append("WHERE " + renderer.render(select.where))
    if select.group_by:
        parts.append(
            "GROUP BY " + ", ".join(renderer.render(e) for e in select.group_by)
        )
    if select.having is not None:
        parts.append("HAVING " + renderer.render(select.having))
    if select.order_by:
        rendered = []
        for order_item in select.order_by:
            text = renderer.render(order_item.expr)
            if not order_item.ascending:
                text += " DESC"
            rendered.append(text)
        parts.append("ORDER BY " + ", ".join(rendered))
    return " ".join(parts)


def _render_source(source: ast.FromSource, renderer: _Renderer) -> str:
    if isinstance(source, ast.TableName):
        return f"{source.name} {source.alias}" if source.alias else source.name
    if isinstance(source, ast.SubquerySource):
        inner = render_select(source.select)
        return f"({inner}) {source.alias}" if source.alias else f"({inner})"
    if isinstance(source, ast.Join):
        left = _render_source(source.left, renderer)
        right = _render_source(source.right, renderer)
        if source.kind == "CROSS":
            return f"{left} CROSS JOIN {right}"
        keyword = "LEFT JOIN" if source.kind == "LEFT" else "JOIN"
        condition = renderer.render(source.condition)
        return f"{left} {keyword} {right} ON {condition}"
    raise SqlError(f"cannot render FROM source {source!r}")
