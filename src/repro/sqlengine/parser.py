"""Recursive-descent parser producing :mod:`repro.sqlengine.ast_nodes`.

Grammar coverage (a pragmatic SQL92 subset, Oracle-flavoured where the
paper's Appendix A requires it):

* ``SELECT [DISTINCT] items [INTO :v, ..] FROM sources [WHERE] [GROUP BY
  [HAVING]] [ORDER BY] [LIMIT [OFFSET]]`` with UNION/INTERSECT/EXCEPT;
* implicit joins (comma-separated FROM list), explicit ``[INNER|LEFT
  [OUTER]|CROSS] JOIN .. ON``, derived tables;
* scalar, ``IN``, ``EXISTS`` subqueries; ``BETWEEN``, ``LIKE``,
  ``IS [NOT] NULL``, ``CASE``, ``CAST``;
* ``CREATE TABLE`` (with column list or ``AS SELECT``), ``CREATE
  [OR REPLACE] VIEW``, ``CREATE SEQUENCE``, ``CREATE INDEX``, ``DROP``;
* ``INSERT INTO t [cols] VALUES (..), ..`` and ``INSERT INTO t (SELECT ..)``;
* ``DELETE``, ``UPDATE``;
* host variables ``:name`` anywhere a scalar is allowed, and
  ``sequence.NEXTVAL``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import SqlParseError
from repro.sqlengine.lexer import Token, TokenType, tokenize
from repro.sqlengine.types import type_from_name

#: Comparison operators at the lowest binary-expression tier.
_COMPARISONS = ("=", "<>", "<", "<=", ">", ">=")

#: Names treated as aggregate functions by the planner.
AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


class Parser:
    """Parses one SQL statement from a token list."""

    def __init__(self, text: str):
        self._tokens = tokenize(text)
        self._index = 0

    # -- token utilities ------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _peek(self, offset: int = 1) -> Token:
        idx = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._current
        if tok.type is not TokenType.EOF:
            self._index += 1
        return tok

    def _error(self, message: str) -> SqlParseError:
        tok = self._current
        return SqlParseError(
            f"{message} (near {tok.text!r})" if tok.text else message,
            tok.position,
            tok.line,
        )

    def _accept_keyword(self, *words: str) -> bool:
        if self._current.is_keyword(*words):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._error(f"expected {word}")

    def _accept_symbol(self, *symbols: str) -> bool:
        if self._current.is_symbol(*symbols):
            self._advance()
            return True
        return False

    def _expect_symbol(self, symbol: str) -> None:
        if not self._accept_symbol(symbol):
            raise self._error(f"expected {symbol!r}")

    def _expect_ident(self) -> str:
        tok = self._current
        if tok.type is TokenType.IDENT:
            self._advance()
            return tok.value
        # Allow non-reserved-sounding keywords as identifiers where
        # unambiguous (e.g. a column named "date" parses as DATE keyword).
        if tok.type is TokenType.KEYWORD and tok.text in ("DATE", "SET", "ALL"):
            self._advance()
            return tok.text.lower()
        raise self._error("expected identifier")

    # -- entry point ----------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        """Parse a single statement and require EOF (an optional
        trailing semicolon is consumed)."""
        stmt = self._statement()
        self._accept_symbol(";")
        if self._current.type is not TokenType.EOF:
            raise self._error("unexpected trailing input")
        return stmt

    def _statement(self) -> ast.Statement:
        tok = self._current
        if tok.is_keyword("SELECT") or tok.is_symbol("("):
            return self._select()
        if tok.is_keyword("CREATE"):
            return self._create()
        if tok.is_keyword("DROP"):
            return self._drop()
        if tok.is_keyword("INSERT"):
            return self._insert()
        if tok.is_keyword("DELETE"):
            return self._delete()
        if tok.is_keyword("UPDATE"):
            return self._update()
        raise self._error("expected a SQL statement")

    # -- SELECT ----------------------------------------------------------

    def _select(self) -> ast.Select:
        """Parse a query expression including set operations."""
        left = self._select_core()
        set_ops: List[Tuple[str, bool, ast.Select]] = []
        while self._current.is_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self._advance().text
            all_flag = self._accept_keyword("ALL")
            right = self._select_core()
            set_ops.append((op, all_flag, right))
        if not set_ops:
            return left
        return ast.Select(
            items=left.items,
            from_sources=left.from_sources,
            where=left.where,
            group_by=left.group_by,
            having=left.having,
            order_by=left.order_by,
            distinct=left.distinct,
            limit=left.limit,
            offset=left.offset,
            into_vars=left.into_vars,
            set_ops=tuple(set_ops),
        )

    def _select_core(self) -> ast.Select:
        if self._accept_symbol("("):
            inner = self._select()
            self._expect_symbol(")")
            return inner
        self._expect_keyword("SELECT")
        distinct = False
        if self._accept_keyword("DISTINCT"):
            distinct = True
        else:
            self._accept_keyword("ALL")
        items = self._select_items()
        into_vars: List[str] = []
        if self._accept_keyword("INTO"):
            into_vars.append(self._expect_hostvar())
            while self._accept_symbol(","):
                into_vars.append(self._expect_hostvar())
        from_sources: Tuple[ast.FromSource, ...] = ()
        if self._accept_keyword("FROM"):
            from_sources = self._from_list()
        where = self._expression() if self._accept_keyword("WHERE") else None
        group_by: Tuple[ast.Expression, ...] = ()
        having = None
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            exprs = [self._expression()]
            while self._accept_symbol(","):
                exprs.append(self._expression())
            group_by = tuple(exprs)
        if self._accept_keyword("HAVING"):
            having = self._expression()
        order_by: Tuple[ast.OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_items = [self._order_item()]
            while self._accept_symbol(","):
                order_items.append(self._order_item())
            order_by = tuple(order_items)
        limit = self._expression() if self._accept_keyword("LIMIT") else None
        offset = self._expression() if self._accept_keyword("OFFSET") else None
        return ast.Select(
            items=tuple(items),
            from_sources=from_sources,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            distinct=distinct,
            limit=limit,
            offset=offset,
            into_vars=tuple(into_vars),
        )

    def _expect_hostvar(self) -> str:
        tok = self._current
        if tok.type is not TokenType.HOSTVAR:
            raise self._error("expected host variable (:name)")
        self._advance()
        return tok.value

    def _select_items(self) -> List[ast.SelectItem]:
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> ast.SelectItem:
        if self._current.is_symbol("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        # alias.* — identifier followed by ".*"
        if (
            self._current.type is TokenType.IDENT
            and self._peek().is_symbol(".")
            and self._peek(2).is_symbol("*")
        ):
            qualifier = self._advance().value
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(qualifier))
        expr = self._expression()
        alias = None
        if self._accept_keyword("AS"):
            alias = self._expect_ident()
        elif self._current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _order_item(self) -> ast.OrderItem:
        expr = self._expression()
        ascending = True
        if self._accept_keyword("DESC"):
            ascending = False
        else:
            self._accept_keyword("ASC")
        return ast.OrderItem(expr, ascending)

    # -- FROM ------------------------------------------------------------

    def _from_list(self) -> Tuple[ast.FromSource, ...]:
        sources = [self._joined_source()]
        while self._accept_symbol(","):
            sources.append(self._joined_source())
        return tuple(sources)

    def _joined_source(self) -> ast.FromSource:
        left = self._table_source()
        while True:
            kind = None
            if self._accept_keyword("CROSS"):
                kind = "CROSS"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("INNER"):
                kind = "INNER"
                self._expect_keyword("JOIN")
            elif self._accept_keyword("LEFT"):
                kind = "LEFT"
                self._accept_keyword("OUTER")
                self._expect_keyword("JOIN")
            elif self._accept_keyword("JOIN"):
                kind = "INNER"
            else:
                return left
            right = self._table_source()
            condition = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self._expression()
            left = ast.Join(kind, left, right, condition)

    def _table_source(self) -> ast.FromSource:
        if self._accept_symbol("("):
            select = self._select()
            self._expect_symbol(")")
            alias = self._source_alias()
            return ast.SubquerySource(select, alias)
        name = self._expect_ident()
        alias = self._source_alias()
        return ast.TableName(name, alias)

    def _source_alias(self) -> Optional[str]:
        if self._accept_keyword("AS"):
            return self._expect_ident()
        if self._current.type is TokenType.IDENT:
            return self._advance().value
        return None

    # -- expressions -------------------------------------------------------
    # precedence: OR < AND < NOT < comparison/IN/BETWEEN/LIKE/IS < add < mul
    #             < unary < primary

    def _expression(self) -> ast.Expression:
        return self._or_expr()

    def _or_expr(self) -> ast.Expression:
        expr = self._and_expr()
        while self._accept_keyword("OR"):
            expr = ast.BinaryOp("OR", expr, self._and_expr())
        return expr

    def _and_expr(self) -> ast.Expression:
        expr = self._not_expr()
        while self._accept_keyword("AND"):
            expr = ast.BinaryOp("AND", expr, self._not_expr())
        return expr

    def _not_expr(self) -> ast.Expression:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._predicate()

    def _predicate(self) -> ast.Expression:
        if self._current.is_keyword("EXISTS"):
            self._advance()
            self._expect_symbol("(")
            sub = self._select()
            self._expect_symbol(")")
            return ast.Exists(sub)
        expr = self._additive()
        while True:
            if self._current.is_symbol(*_COMPARISONS):
                op = self._advance().text
                expr = ast.BinaryOp(op, expr, self._additive())
                continue
            negated = False
            if self._current.is_keyword("NOT") and self._peek().is_keyword(
                "BETWEEN", "IN", "LIKE"
            ):
                self._advance()
                negated = True
            if self._accept_keyword("BETWEEN"):
                low = self._additive()
                self._expect_keyword("AND")
                high = self._additive()
                expr = ast.Between(expr, low, high, negated)
                continue
            if self._accept_keyword("IN"):
                expr = self._in_tail(expr, negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._additive()
                escape = (
                    self._additive()
                    if self._accept_keyword("ESCAPE")
                    else None
                )
                expr = ast.Like(expr, pattern, negated, escape)
                continue
            if self._accept_keyword("IS"):
                is_negated = self._accept_keyword("NOT")
                self._expect_keyword("NULL")
                expr = ast.IsNull(expr, is_negated)
                continue
            return expr

    def _in_tail(self, expr: ast.Expression, negated: bool) -> ast.Expression:
        self._expect_symbol("(")
        if self._current.is_keyword("SELECT"):
            sub = self._select()
            self._expect_symbol(")")
            return ast.InSubquery(expr, sub, negated)
        items = [self._expression()]
        while self._accept_symbol(","):
            items.append(self._expression())
        self._expect_symbol(")")
        return ast.InList(expr, tuple(items), negated)

    def _additive(self) -> ast.Expression:
        expr = self._multiplicative()
        while self._current.is_symbol("+", "-", "||"):
            op = self._advance().text
            expr = ast.BinaryOp(op, expr, self._multiplicative())
        return expr

    def _multiplicative(self) -> ast.Expression:
        expr = self._unary()
        while self._current.is_symbol("*", "/", "%"):
            op = self._advance().text
            expr = ast.BinaryOp(op, expr, self._unary())
        return expr

    def _unary(self) -> ast.Expression:
        if self._current.is_symbol("-", "+"):
            op = self._advance().text
            operand = self._unary()
            if op == "-":
                if isinstance(operand, ast.Literal) and isinstance(
                    operand.value, (int, float)
                ):
                    return ast.Literal(-operand.value)
                return ast.UnaryOp("-", operand)
            return operand
        return self._primary()

    def _primary(self) -> ast.Expression:
        tok = self._current
        if tok.type is TokenType.NUMBER:
            self._advance()
            return ast.Literal(tok.value)
        if tok.type is TokenType.STRING:
            self._advance()
            return ast.Literal(tok.value)
        if tok.type is TokenType.DATE:
            self._advance()
            return ast.Literal(tok.value)
        if tok.type is TokenType.HOSTVAR:
            self._advance()
            return ast.HostVar(tok.value)
        if tok.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if tok.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if tok.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if tok.is_keyword("CASE"):
            return self._case()
        if tok.is_keyword("CAST"):
            return self._cast()
        if tok.is_keyword("COUNT", "SUM", "AVG", "MIN", "MAX"):
            return self._function_call(self._advance().text)
        if tok.is_symbol("("):
            self._advance()
            if self._current.is_keyword("SELECT"):
                sub = self._select()
                self._expect_symbol(")")
                return ast.ScalarSubquery(sub)
            first = self._expression()
            if self._accept_symbol(","):
                items = [first, self._expression()]
                while self._accept_symbol(","):
                    items.append(self._expression())
                self._expect_symbol(")")
                return ast.TupleExpr(tuple(items))
            self._expect_symbol(")")
            return first
        if tok.type is TokenType.IDENT:
            return self._identifier_expression()
        if tok.is_keyword("DATE"):
            # A bare DATE keyword (no string literal follows, otherwise the
            # lexer would have produced a DATE token) is a column named
            # "date" — the paper's Purchase table uses exactly that name.
            self._advance()
            return ast.ColumnRef(None, "date")
        raise self._error("expected an expression")

    def _identifier_expression(self) -> ast.Expression:
        name = self._advance().value
        if self._current.is_symbol("(") :
            return self._function_call(name.upper())
        if self._accept_symbol("."):
            attr_tok = self._current
            if attr_tok.type is TokenType.IDENT and attr_tok.value.upper() == "NEXTVAL":
                self._advance()
                return ast.SequenceNextval(name)
            attr = self._expect_ident()
            return ast.ColumnRef(name, attr)
        return ast.ColumnRef(None, name)

    def _function_call(self, name: str) -> ast.Expression:
        self._expect_symbol("(")
        if self._accept_symbol("*"):
            self._expect_symbol(")")
            return ast.FunctionCall(name, star=True)
        distinct = self._accept_keyword("DISTINCT")
        args: List[ast.Expression] = []
        if not self._current.is_symbol(")"):
            args.append(self._expression())
            while self._accept_symbol(","):
                args.append(self._expression())
        self._expect_symbol(")")
        return ast.FunctionCall(name, tuple(args), distinct=distinct)

    def _case(self) -> ast.Expression:
        self._expect_keyword("CASE")
        operand = None
        if not self._current.is_keyword("WHEN"):
            operand = self._expression()
        whens: List[Tuple[ast.Expression, ast.Expression]] = []
        while self._accept_keyword("WHEN"):
            cond = self._expression()
            self._expect_keyword("THEN")
            whens.append((cond, self._expression()))
        if not whens:
            raise self._error("CASE requires at least one WHEN")
        else_ = self._expression() if self._accept_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.Case(operand, tuple(whens), else_)

    def _cast(self) -> ast.Expression:
        self._expect_keyword("CAST")
        self._expect_symbol("(")
        expr = self._expression()
        self._expect_keyword("AS")
        type_name = self._type_name()
        self._expect_symbol(")")
        return ast.Cast(expr, type_name)

    def _type_name(self):
        tok = self._current
        if tok.type is TokenType.IDENT:
            name = self._advance().value
        elif tok.is_keyword("DATE"):
            self._advance()
            name = "DATE"
        else:
            raise self._error("expected type name")
        # optional length/precision, e.g. VARCHAR(30), NUMERIC(8,2)
        if self._accept_symbol("("):
            while not self._accept_symbol(")"):
                self._advance()
        return type_from_name(name)

    # -- DDL ---------------------------------------------------------------

    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._accept_keyword("TABLE"):
            return self._create_table()
        or_replace = False
        if self._accept_keyword("OR"):
            replace_tok = self._expect_ident()
            if replace_tok.upper() != "REPLACE":
                raise self._error("expected REPLACE")
            or_replace = True
        if self._accept_keyword("VIEW"):
            name = self._expect_ident()
            self._expect_keyword("AS")
            if self._accept_symbol("("):
                select = self._select()
                self._expect_symbol(")")
            else:
                select = self._select()
            return ast.CreateView(name, select, or_replace)
        if self._accept_keyword("SEQUENCE"):
            name = self._expect_ident()
            start = 1
            if self._current.type is TokenType.IDENT and (
                self._current.value.upper() == "START"
            ):
                self._advance()
                if self._current.type is TokenType.IDENT and (
                    self._current.value.upper() == "WITH"
                ):
                    self._advance()
                tok = self._current
                if tok.type is not TokenType.NUMBER:
                    raise self._error("expected number after START")
                self._advance()
                start = int(tok.value)
            return ast.CreateSequence(name, start)
        if self._accept_keyword("INDEX"):
            name = self._expect_ident()
            self._expect_keyword("ON")
            table = self._expect_ident()
            self._expect_symbol("(")
            columns = [self._expect_ident()]
            while self._accept_symbol(","):
                columns.append(self._expect_ident())
            self._expect_symbol(")")
            return ast.CreateIndex(name, table, tuple(columns))
        raise self._error("expected TABLE, VIEW, SEQUENCE or INDEX")

    def _create_table(self) -> ast.Statement:
        if_not_exists = False
        name = self._expect_ident()
        if self._accept_keyword("AS"):
            if self._accept_symbol("("):
                select = self._select()
                self._expect_symbol(")")
            else:
                select = self._select()
            return ast.CreateTableAsSelect(name, select)
        self._expect_symbol("(")
        columns = [self._column_def()]
        while self._accept_symbol(","):
            columns.append(self._column_def())
        self._expect_symbol(")")
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        col_type = self._type_name()
        # tolerate (and ignore) NOT NULL / PRIMARY KEY decorations
        while True:
            if self._current.is_keyword("NOT") and self._peek().is_keyword("NULL"):
                self._advance()
                self._advance()
            elif (
                self._current.type is TokenType.IDENT
                and self._current.value.upper() in ("PRIMARY", "UNIQUE")
            ):
                self._advance()
                if (
                    self._current.type is TokenType.IDENT
                    and self._current.value.upper() == "KEY"
                ):
                    self._advance()
            else:
                break
        return ast.ColumnDef(name, col_type)

    def _drop(self) -> ast.DropObject:
        self._expect_keyword("DROP")
        if self._accept_keyword("TABLE"):
            kind = "TABLE"
        elif self._accept_keyword("VIEW"):
            kind = "VIEW"
        elif self._accept_keyword("SEQUENCE"):
            kind = "SEQUENCE"
        elif self._accept_keyword("INDEX"):
            kind = "INDEX"
        else:
            raise self._error("expected TABLE, VIEW, SEQUENCE or INDEX")
        if_exists = False
        if (
            self._current.type is TokenType.IDENT
            and self._current.value.upper() == "IF"
        ):
            self._advance()
            if self._accept_keyword("EXISTS"):
                if_exists = True
            else:
                raise self._error("expected EXISTS after IF")
        name = self._expect_ident()
        return ast.DropObject(kind, name, if_exists)

    # -- DML ---------------------------------------------------------------

    def _insert(self) -> ast.Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: Tuple[str, ...] = ()
        # Disambiguate "(col, ..)" from "(SELECT ..)"
        if self._current.is_symbol("(") and not self._peek().is_keyword("SELECT"):
            self._advance()
            names = [self._expect_ident()]
            while self._accept_symbol(","):
                names.append(self._expect_ident())
            self._expect_symbol(")")
            columns = tuple(names)
        if self._accept_keyword("VALUES"):
            rows = [self._value_row()]
            while self._accept_symbol(","):
                rows.append(self._value_row())
            return ast.InsertValues(table, columns, tuple(rows))
        if self._current.is_symbol("(") or self._current.is_keyword("SELECT"):
            wrapped = self._accept_symbol("(")
            select = self._select()
            if wrapped:
                self._accept_symbol(")")  # Appendix A omits some closers
            return ast.InsertSelect(table, columns, select)
        raise self._error("expected VALUES or SELECT")

    def _value_row(self) -> Tuple[ast.Expression, ...]:
        self._expect_symbol("(")
        values = [self._expression()]
        while self._accept_symbol(","):
            values.append(self._expression())
        self._expect_symbol(")")
        return tuple(values)

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._accept_symbol(","):
            assignments.append(self._assignment())
        where = self._expression() if self._accept_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> Tuple[str, ast.Expression]:
        name = self._expect_ident()
        self._expect_symbol("=")
        return name, self._expression()


def parse_sql(text: str) -> ast.Statement:
    """Parse a single SQL statement."""
    return Parser(text).parse_statement()


def parse_script(text: str) -> List[ast.Statement]:
    """Parse a semicolon-separated script into a statement list.

    Semicolons inside string literals are honoured.
    """
    statements: List[ast.Statement] = []
    for chunk in split_statements(text):
        statements.append(parse_sql(chunk))
    return statements


def split_statements(text: str) -> List[str]:
    """Split a script on top-level semicolons, respecting quotes."""
    chunks: List[str] = []
    depth_quote = False
    start = 0
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "'":
            depth_quote = not depth_quote
        elif ch == ";" and not depth_quote:
            chunk = text[start:i].strip()
            if chunk:
                chunks.append(chunk)
            start = i + 1
        i += 1
    tail = text[start:].strip()
    if tail:
        chunks.append(tail)
    return chunks
