"""Reader/writer locking for concurrent statement execution.

The jobs layer (:mod:`repro.jobs`) executes statements from a pool of
worker threads against one shared :class:`~repro.sqlengine.engine.Database`.
The engine guards every statement with this lock: plain SELECTs take
the shared (read) side so concurrent scans proceed in parallel, while
DML/DDL/``SELECT .. INTO`` take the exclusive (write) side — a scan can
never observe a half-applied mutation (torn read) and two mutations can
never interleave (lost update).

Semantics:

* **Reentrant.**  A thread holding the write lock may re-acquire both
  sides (a MINE RULE run holds the write lock for its whole pipeline
  while every inner statement re-enters), and a reader may re-acquire
  the read side.
* **Writer preference.**  A waiting writer blocks *new* readers, so a
  stream of scans cannot starve DML; reentrant readers are exempt
  (blocking them would deadlock the thread against itself).
* **No upgrades.**  Read→write upgrade deadlocks by construction (two
  upgrading readers wait on each other forever), so it raises
  immediately instead.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, Optional


class RWLock:
    """A reentrant reader/writer lock with writer preference."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        #: thread ident -> read-side depth (includes reads nested
        #: under that thread's own write lock)
        self._readers: Dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0

    # -- read side ------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me or me in self._readers:
                # reentrant (or nested under our own write lock)
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            while self._writer is not None or self._waiting_writers:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # -- write side -----------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read->write lock upgrade would deadlock; acquire "
                    "the write lock first"
                )
            self._waiting_writers += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write by a non-owner thread")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers -----------------------------------------------

    @contextlib.contextmanager
    def read_locked(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write_locked(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- observability --------------------------------------------------

    def status(self) -> Dict[str, int]:
        """Snapshot for diagnostics: active readers, writer depth,
        queued writers."""
        with self._cond:
            return {
                "readers": sum(self._readers.values()),
                "writer_depth": self._writer_depth,
                "waiting_writers": self._waiting_writers,
            }
