"""An in-memory SQL92-subset relational engine.

This package is the "SQL server" substrate of the tightly-coupled data
mining architecture (Meo, Psaila & Ceri, ICDE 1998).  It provides the
relational functionality the paper's preprocessor and postprocessor rely
on: tables, views, Oracle-style sequences with ``NEXTVAL``, host
variables (``:name``), ``INSERT INTO .. SELECT``, joins, grouping with
``HAVING``, ``DISTINCT``, subqueries and three-valued logic.

The public entry point is :class:`~repro.sqlengine.engine.Database`::

    from repro.sqlengine import Database

    db = Database()
    db.execute("CREATE TABLE t (a INTEGER, b VARCHAR)")
    db.execute("INSERT INTO t VALUES (1, 'x')")
    rows = db.query("SELECT a, b FROM t WHERE a > :low", {"low": 0})
"""

from repro.sqlengine.columnar import ColumnarTable, STORAGE_KINDS
from repro.sqlengine.engine import CacheStats, Database, PreparedStatement
from repro.sqlengine.options import EngineOptions
from repro.sqlengine.errors import (
    CatalogError,
    ExecutionError,
    SqlError,
    SqlParseError,
    SqlTypeError,
)
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType

__all__ = [
    "CacheStats",
    "CatalogError",
    "ColumnarTable",
    "Database",
    "EngineOptions",
    "ExecutionError",
    "PreparedStatement",
    "STORAGE_KINDS",
    "SqlError",
    "SqlParseError",
    "SqlType",
    "SqlTypeError",
    "Table",
]
