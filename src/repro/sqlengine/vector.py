"""Batch-at-a-time (vectorized) SELECT execution over column vectors.

The row executor interprets one :class:`~repro.sqlengine.evaluator.Env`
at a time; every row pays Python call overhead per operator and per
expression node.  This module mirrors a planned SELECT onto *vector*
nodes that process whole columns: a filter evaluates its predicate over
a column batch and gathers the surviving positions, a hash join builds
and probes on key *lists*, an aggregate reduces argument columns per
group.  The unit of work is a :class:`_Batch` — a list of parallel
Python lists, one per flat column of the operator's frame.

Exactness contract
------------------

The vector path must be **bit-identical** to the row path on every
statement it accepts.  That is achieved three ways:

* *Typed kernels only where types are proven.*  Columnar tables coerce
  every stored value to the column's declared SQL type
  (:func:`repro.sqlengine.types.coerce`), so a declared ``INTEGER``
  column holds only ``int``/``None`` — comparisons can use raw Python
  operators.  Row tables, derived tables and untyped columns get the
  ``'any'`` dtype whose kernels call the row path's own helpers
  (:func:`~repro.sqlengine.evaluator.compare`, ``_arith``) element-wise.
* *Lazy masking for short-circuit forms.*  ``AND``/``OR``/``COALESCE``
  evaluate their right/later operands only on the rows the earlier
  operands did not decide, so side conditions (errors in untaken
  operands) match the row path's per-row short circuit.
* *Whole-plan fallback.*  Any construct whose vector semantics are not
  provably identical (subqueries, CASE, dynamic LIKE patterns,
  correlated references, nested-loop joins, multiple NEXTVAL items …)
  raises :class:`Unsupported` at build time and the engine runs the
  row path for the whole statement.  ``plan.vector`` caches the
  outcome: a ``VectorPlan``, or ``False`` for "row path forever".

The only tolerated divergence is *which* row's error surfaces first
when a statement raises: kernels evaluate an operand for every row
before moving on, so two independently erroneous expressions may
report in a different order than tuple-at-a-time evaluation.  Both
paths still raise, with the same exception types.

Out-of-core execution: when ``EngineOptions.memory_budget`` is set and
a sort/hash join/aggregate estimates its input above the budget, the
node switches to the spilling variant in :mod:`repro.sqlengine.spill`
(external merge sort, grace-style partitioned join/aggregate); spilled
byte counts surface in EXPLAIN ANALYZE next to per-node batch counts.
"""

from __future__ import annotations

import datetime
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine import spill as spill_mod
from repro.sqlengine.errors import (
    CatalogError,
    ExecutionError,
    SqlError,
    SqlTypeError,
)
from repro.sqlengine.evaluator import (
    SCALAR_FUNCTIONS,
    Frame,
    _arith,
    _distinct_values,
    _escape_char,
    _like_to_regex,
    _to_str,
    compare,
    tvl_and,
    tvl_not,
    tvl_or,
)
from repro.sqlengine.evaluator import Evaluator as _Evaluator
from repro.sqlengine.operators import (
    Filter,
    GroupAggregate,
    HashJoin,
    IndexLookup,
    LeftOuterHashJoin,
    Operator,
    RowsSource,
    TableScan,
)
from repro.sqlengine.parser import AGGREGATE_NAMES
from repro.sqlengine.types import SqlType

_truth = _Evaluator._as_truth


class Unsupported(Exception):
    """Raised at build time when a plan node or expression has no
    exact vector lowering; the engine falls back to the row path."""


# ---------------------------------------------------------------------------
# batches, scalars, expression values
# ---------------------------------------------------------------------------


class _Batch:
    """A horizontal slice of an operator's output: parallel column
    lists (one per flat frame column) plus the row count."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: List[List[Any]], n: int):
        self.cols = cols
        self.n = n


class _Scalar:
    """Marks an expression result that is one value broadcast over the
    batch (literals, host variables, arithmetic over them)."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


def _as_list(value: Any, n: int) -> List[Any]:
    if isinstance(value, _Scalar):
        return [value.value] * n
    return value


def _gather(col: List[Any], idxs: List[int]) -> List[Any]:
    return [col[i] for i in idxs]


def _gather_pad(col: List[Any], idxs: List[int]) -> List[Any]:
    """Gather allowing ``-1`` = NULL (outer-join padding)."""
    return [None if i < 0 else col[i] for i in idxs]


class VExpr:
    """A compiled vector expression: ``fn(ctx, cols, n)`` returns a
    full-length value list or a :class:`_Scalar`; ``used`` names the
    flat column indices the kernel reads (for masked evaluation)."""

    __slots__ = ("fn", "dtype", "used")

    def __init__(self, fn: Callable, dtype: str, used: frozenset):
        self.fn = fn
        self.dtype = dtype
        self.used = used


class _Ctx:
    """Per-execution state threaded through every vector node."""

    __slots__ = ("db", "params", "collector", "batch_size", "budget")

    def __init__(self, db: Any):
        self.db = db
        self.params = db._params
        self.collector = db._analyze
        options = db.options
        self.batch_size = max(1, options.batch_size)
        self.budget = options.memory_budget


# ---------------------------------------------------------------------------
# dtypes
# ---------------------------------------------------------------------------

#: declared SQL type -> proven runtime Python type of non-NULL values
_SQL_DTYPE = {
    SqlType.INTEGER: "int",
    SqlType.REAL: "float",
    SqlType.VARCHAR: "str",
    SqlType.DATE: "date",
    SqlType.BOOLEAN: "bool",
}

_NUMERIC = ("int", "float", "bool")


def _table_dtypes(table: Any) -> List[str]:
    """Column dtypes a kernel may trust.  Only columnar tables coerce
    on every write path, so only they earn typed kernels; plain tables
    (and ``load_database``'s raw appends) stay ``'any'``."""
    if getattr(table, "storage", "row") != "columnar":
        return ["any"] * len(table.columns)
    return [
        _SQL_DTYPE.get(t, "any") if t is not None else "any"
        for t in table.types
    ]


def _dtype_of_literal(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    if isinstance(value, datetime.date):
        return "date"
    return "any"


def _clean_scalar(dtype: str, value: Any) -> bool:
    """May a raw-operator kernel compare a *dtype* column against this
    scalar with semantics identical to :func:`compare`?"""
    if dtype in _NUMERIC:
        return isinstance(value, (int, float))
    if dtype == "str":
        return isinstance(value, str)
    if dtype == "date":
        return isinstance(value, datetime.date)
    return False


def _clean_pair(ldt: str, rdt: str) -> bool:
    if ldt in _NUMERIC and rdt in _NUMERIC:
        return True
    return ldt == rdt and ldt in ("str", "date")


def _frame_offsets(frame: Frame) -> List[int]:
    offsets = []
    total = 0
    for _, columns in frame.sources:
        offsets.append(total)
        total += len(columns)
    return offsets


def _frame_width(frame: Frame) -> int:
    return sum(len(columns) for _, columns in frame.sources)


# ---------------------------------------------------------------------------
# comparison / arithmetic kernels
# ---------------------------------------------------------------------------

import operator as _op  # noqa: E402  (kernel table below)

_CMP_PY = {
    "=": _op.eq,
    "<>": _op.ne,
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
}

_ARITH_PY = {"+": _op.add, "-": _op.sub, "*": _op.mul}


def _cmp_values(op: str, lv: Any, rv: Any, ldt: str, rdt: str) -> Any:
    """Apply one SQL comparison over batch values (lists or scalars)."""
    opfn = _CMP_PY[op]
    if isinstance(lv, _Scalar) and isinstance(rv, _Scalar):
        return _Scalar(compare(op, lv.value, rv.value))
    if isinstance(rv, _Scalar):
        s = rv.value
        if s is None:
            return _Scalar(None)
        if _clean_scalar(ldt, s):
            return [None if v is None else opfn(v, s) for v in lv]
        return [compare(op, v, s) for v in lv]
    if isinstance(lv, _Scalar):
        s = lv.value
        if s is None:
            return _Scalar(None)
        if _clean_scalar(rdt, s):
            return [None if v is None else opfn(s, v) for v in rv]
        return [compare(op, s, v) for v in rv]
    if _clean_pair(ldt, rdt):
        return [
            None if a is None or b is None else opfn(a, b)
            for a, b in zip(lv, rv)
        ]
    return [compare(op, a, b) for a, b in zip(lv, rv)]


def _numeric_scalar(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _arith_values(op: str, lv: Any, rv: Any, ldt: str, rdt: str) -> Any:
    """Apply ``+ - * / %`` over batch values with the row path's NULL
    guard and :func:`_arith` error semantics."""
    if isinstance(lv, _Scalar) and isinstance(rv, _Scalar):
        a, b = lv.value, rv.value
        if a is None or b is None:
            return _Scalar(None)
        return _Scalar(_arith(op, a, b))
    fast = _ARITH_PY.get(op)
    if isinstance(rv, _Scalar):
        s = rv.value
        if s is None:
            return _Scalar(None)
        if fast is not None and ldt in ("int", "float") and _numeric_scalar(s):
            return [None if v is None else fast(v, s) for v in lv]
        return [None if v is None else _arith(op, v, s) for v in lv]
    if isinstance(lv, _Scalar):
        s = lv.value
        if s is None:
            return _Scalar(None)
        if fast is not None and rdt in ("int", "float") and _numeric_scalar(s):
            return [None if v is None else fast(s, v) for v in rv]
        return [None if v is None else _arith(op, s, v) for v in rv]
    if fast is not None and ldt in ("int", "float") and rdt in ("int", "float"):
        return [
            None if a is None or b is None else fast(a, b)
            for a, b in zip(lv, rv)
        ]
    return [
        None if a is None or b is None else _arith(op, a, b)
        for a, b in zip(lv, rv)
    ]


def _arith_dtype(op: str, ldt: str, rdt: str) -> str:
    if ldt in ("int", "float") and rdt in ("int", "float"):
        if op == "/":
            return "float"
        if op == "%":
            return "float" if "float" in (ldt, rdt) else "int"
        return "int" if ldt == rdt == "int" else "float"
    return "any"


def _mask_gather(
    cols: List[List[Any]], used: frozenset, idxs: List[int]
) -> List[Optional[List[Any]]]:
    """Columns restricted to *idxs*, materialized only for the flat
    indices in *used* (lazy AND/OR/COALESCE operand evaluation)."""
    sub: List[Optional[List[Any]]] = [None] * len(cols)
    for u in used:
        col = cols[u]
        sub[u] = [col[i] for i in idxs]
    return sub


# ---------------------------------------------------------------------------
# expression compiler
# ---------------------------------------------------------------------------

#: scalar functions with a provable result type (everything else 'any')
_FN_DTYPE = {
    "UPPER": "str",
    "LOWER": "str",
    "TRIM": "str",
    "SUBSTR": "str",
    "SUBSTRING": "str",
    "LENGTH": "int",
    "YEAR": "int",
    "MONTH": "int",
    "DAY": "int",
    "WEEKDAY": "int",
    "FLOOR": "int",
    "CEIL": "int",
    "CEILING": "int",
    "SIGN": "int",
    "SQRT": "float",
}

_CAST_DTYPE = {
    SqlType.VARCHAR: "str",
    SqlType.INTEGER: "int",
    SqlType.REAL: "float",
    SqlType.DATE: "date",
    SqlType.BOOLEAN: "bool",
}


class _AggSlot:
    """One aggregate occurrence: its reduction, DISTINCT flag and the
    argument expression compiled over the *child* (pre-group) layout."""

    __slots__ = ("name", "star", "distinct", "arg", "dtype")

    def __init__(self, name, star, distinct, arg, dtype):
        self.name = name
        self.star = star
        self.distinct = distinct
        self.arg = arg
        self.dtype = dtype


class _GroupContext:
    """Allocates aggregate slots appended after the representative
    columns in a :class:`VAggregate` output batch."""

    def __init__(self, base_width: int):
        self.base_width = base_width
        self.slots: List[_AggSlot] = []

    def add(self, slot: _AggSlot) -> int:
        self.slots.append(slot)
        return self.base_width + len(self.slots) - 1


def _agg_dtype(name: str, star: bool, arg_dtype: str) -> str:
    if name == "COUNT":
        return "int"
    if name in ("MIN", "MAX"):
        return arg_dtype
    if name == "SUM":
        return arg_dtype if arg_dtype in ("int", "float") else "any"
    if name == "AVG":
        return "float" if arg_dtype in ("int", "float") else "any"
    return "any"


class _Compiler:
    """Lowers AST expressions to :class:`VExpr` kernels over one flat
    column layout, raising :class:`Unsupported` for anything whose
    vector semantics would not be exact."""

    def __init__(
        self,
        frame: Frame,
        dtypes: Sequence[str],
        db: Any,
        groups: Optional[_GroupContext] = None,
        sibling: Optional["_Compiler"] = None,
    ):
        self._frame = frame
        self._dtypes = list(dtypes)
        self._db = db
        self._offsets = _frame_offsets(frame)
        #: group context when compiling HAVING / post-group projections
        self._groups = groups
        #: the pre-group compiler aggregate arguments compile through
        self._sibling = sibling

    def compile(self, expr: ast.Expression) -> VExpr:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise Unsupported(f"no vector lowering for {type(expr).__name__}")
        return method(self, expr)

    # -- leaves -----------------------------------------------------------

    def _literal(self, expr: ast.Literal) -> VExpr:
        value = expr.value
        scalar = _Scalar(value)
        return VExpr(
            lambda ctx, cols, n: scalar,
            _dtype_of_literal(value),
            frozenset(),
        )

    def _hostvar(self, expr: ast.HostVar) -> VExpr:
        name = expr.name

        def fn(ctx, cols, n):
            try:
                return _Scalar(ctx.params[name])
            except KeyError:
                raise ExecutionError(
                    f"unbound host variable :{name}"
                ) from None

        return VExpr(fn, "any", frozenset())

    def _column(self, expr: ast.ColumnRef) -> VExpr:
        try:
            hit = self._frame.lookup(expr.qualifier, expr.name)
        except CatalogError:
            # Ambiguous name: the row path raises only for rows that
            # actually evaluate it; stay on the row path wholesale.
            raise Unsupported(f"ambiguous column {expr.name!r}") from None
        if hit is None:
            raise Unsupported(f"outer-scope column {expr.name!r}")
        src_idx, col_idx = hit
        flat = self._offsets[src_idx] + col_idx
        return VExpr(
            lambda ctx, cols, n: cols[flat],
            self._dtypes[flat] if flat < len(self._dtypes) else "any",
            frozenset((flat,)),
        )

    # -- operators --------------------------------------------------------

    def _binary(self, expr: ast.BinaryOp) -> VExpr:
        op = expr.op
        if op in ("AND", "OR"):
            return self._logical(op, expr.left, expr.right)
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        used = left.used | right.used
        if op in _CMP_PY:
            ldt, rdt = left.dtype, right.dtype

            def fn_cmp(ctx, cols, n):
                return _cmp_values(
                    op, left.fn(ctx, cols, n), right.fn(ctx, cols, n),
                    ldt, rdt,
                )

            return VExpr(fn_cmp, "bool", used)
        if op == "||":

            def fn_concat(ctx, cols, n):
                lv = left.fn(ctx, cols, n)
                rv = right.fn(ctx, cols, n)
                if isinstance(lv, _Scalar) and isinstance(rv, _Scalar):
                    a, b = lv.value, rv.value
                    if a is None or b is None:
                        return _Scalar(None)
                    return _Scalar(_to_str(a) + _to_str(b))
                la = _as_list(lv, n)
                lb = _as_list(rv, n)
                return [
                    None if a is None or b is None
                    else _to_str(a) + _to_str(b)
                    for a, b in zip(la, lb)
                ]

            return VExpr(fn_concat, "str", used)
        if op in ("+", "-", "*", "/", "%"):
            ldt, rdt = left.dtype, right.dtype

            def fn_arith(ctx, cols, n):
                return _arith_values(
                    op, left.fn(ctx, cols, n), right.fn(ctx, cols, n),
                    ldt, rdt,
                )

            return VExpr(fn_arith, _arith_dtype(op, ldt, rdt), used)
        raise Unsupported(f"binary operator {op!r}")

    def _logical(self, op: str, left_e, right_e) -> VExpr:
        """AND/OR with the row path's short circuit reproduced at row
        granularity: the right operand runs only on undecided rows."""
        left = self.compile(left_e)
        right = self.compile(right_e)
        used = left.used | right.used
        is_and = op == "AND"
        combine = tvl_and if is_and else tvl_or
        decided = False if is_and else True

        def fn(ctx, cols, n):
            lt = [_truth(v) for v in _as_list(left.fn(ctx, cols, n), n)]
            idxs = [i for i, v in enumerate(lt) if v is not decided]
            out: List[Any] = [decided] * n
            if idxs:
                sub = _mask_gather(cols, right.used, idxs)
                rv = _as_list(right.fn(ctx, sub, len(idxs)), len(idxs))
                for k, i in enumerate(idxs):
                    out[i] = combine(lt[i], _truth(rv[k]))
            return out

        return VExpr(fn, "bool", used)

    def _unary(self, expr: ast.UnaryOp) -> VExpr:
        operand = self.compile(expr.operand)
        if expr.op == "NOT":

            def fn_not(ctx, cols, n):
                value = operand.fn(ctx, cols, n)
                if isinstance(value, _Scalar):
                    return _Scalar(tvl_not(_truth(value.value)))
                return [tvl_not(_truth(v)) for v in value]

            return VExpr(fn_not, "bool", operand.used)
        if expr.op == "-":

            def neg_one(v):
                if v is None:
                    return None
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    raise SqlTypeError(f"cannot negate {v!r}")
                return -v

            def fn_neg(ctx, cols, n):
                value = operand.fn(ctx, cols, n)
                if isinstance(value, _Scalar):
                    return _Scalar(neg_one(value.value))
                return [neg_one(v) for v in value]

            dtype = (
                operand.dtype if operand.dtype in ("int", "float") else "any"
            )
            return VExpr(fn_neg, dtype, operand.used)
        raise Unsupported(f"unary operator {expr.op!r}")

    # -- predicates -------------------------------------------------------

    def _between(self, expr: ast.Between) -> VExpr:
        value = self.compile(expr.expr)
        low = self.compile(expr.low)
        high = self.compile(expr.high)
        used = value.used | low.used | high.used
        negated = expr.negated
        vdt = value.dtype

        def fn(ctx, cols, n):
            vv = value.fn(ctx, cols, n)
            lv = low.fn(ctx, cols, n)
            hv = high.fn(ctx, cols, n)
            if (
                not isinstance(vv, _Scalar)
                and isinstance(lv, _Scalar)
                and isinstance(hv, _Scalar)
                and lv.value is not None
                and hv.value is not None
                and _clean_scalar(vdt, lv.value)
                and _clean_scalar(vdt, hv.value)
            ):
                lo, hi = lv.value, hv.value
                if negated:
                    return [
                        None if v is None else not (lo <= v <= hi) for v in vv
                    ]
                return [None if v is None else lo <= v <= hi for v in vv]
            va = _as_list(vv, n)
            la = _as_list(lv, n)
            ha = _as_list(hv, n)
            out = []
            for v, lo, hi in zip(va, la, ha):
                result = tvl_and(
                    compare(">=", v, lo), compare("<=", v, hi)
                )
                out.append(tvl_not(result) if negated else result)
            return out

        return VExpr(fn, "bool", used)

    def _in_list(self, expr: ast.InList) -> VExpr:
        value = self.compile(expr.expr)
        if not all(isinstance(item, ast.Literal) for item in expr.items):
            # non-constant items are evaluated lazily per row with an
            # early break by the row path; keep that exact
            raise Unsupported("IN list with non-literal items")
        items = [item.value for item in expr.items]
        negated = expr.negated
        vdt = value.dtype
        fast_set = (
            frozenset(items)
            if items and all(_clean_scalar(vdt, item) for item in items)
            else None
        )

        def one(v):
            found = False
            saw_null = False
            for item in items:
                result = compare("=", v, item)
                if result is True:
                    found = True
                    break
                if result is None:
                    saw_null = True
            result3 = True if found else (None if saw_null else False)
            return tvl_not(result3) if negated else result3

        def fn(ctx, cols, n):
            vv = value.fn(ctx, cols, n)
            if isinstance(vv, _Scalar):
                return _Scalar(one(vv.value))
            if fast_set is not None:
                if negated:
                    return [
                        None if v is None else v not in fast_set for v in vv
                    ]
                return [None if v is None else v in fast_set for v in vv]
            return [one(v) for v in vv]

        return VExpr(fn, "bool", value.used)

    def _like(self, expr: ast.Like) -> VExpr:
        value = self.compile(expr.expr)
        escape_e = expr.escape
        if escape_e is not None and not isinstance(escape_e, ast.Literal):
            raise Unsupported("LIKE with non-constant ESCAPE")
        if not isinstance(expr.pattern, ast.Literal):
            raise Unsupported("LIKE with non-constant pattern")
        negated = expr.negated
        if escape_e is not None and escape_e.value is None:
            # LIKE ... ESCAPE NULL is NULL for every row
            return VExpr(
                lambda ctx, cols, n: _Scalar(None), "bool", value.used
            )
        pattern = expr.pattern.value
        if pattern is None:
            return VExpr(
                lambda ctx, cols, n: _Scalar(None), "bool", value.used
            )
        if not isinstance(pattern, str):
            # the row path raises per evaluated non-NULL row
            def fn_bad(ctx, cols, n):
                vv = _as_list(value.fn(ctx, cols, n), n)
                out = []
                for v in vv:
                    if v is None:
                        out.append(None)
                    else:
                        raise SqlTypeError("LIKE requires string operands")
                return out

            return VExpr(fn_bad, "bool", value.used)
        try:
            escape = (
                _escape_char(escape_e.value) if escape_e is not None else None
            )
            regex = _like_to_regex(pattern, escape)
        except SqlError:
            # With expression compilation off the row path raises this
            # per row (and not at all on empty input): fall back.
            raise Unsupported("invalid LIKE pattern/escape") from None
        is_str = value.dtype == "str"
        match = regex.match

        def fn(ctx, cols, n):
            vv = value.fn(ctx, cols, n)
            scalar = isinstance(vv, _Scalar)
            col = [vv.value] if scalar else vv
            if is_str:
                if negated:
                    out = [
                        None if v is None else not match(v) for v in col
                    ]
                else:
                    out = [
                        None if v is None else bool(match(v)) for v in col
                    ]
            else:
                out = []
                for v in col:
                    if v is None:
                        out.append(None)
                        continue
                    if not isinstance(v, str):
                        raise SqlTypeError("LIKE requires string operands")
                    result = bool(match(v))
                    out.append(not result if negated else result)
            return _Scalar(out[0]) if scalar else out

        return VExpr(fn, "bool", value.used)

    def _is_null(self, expr: ast.IsNull) -> VExpr:
        value = self.compile(expr.expr)
        negated = expr.negated

        def fn(ctx, cols, n):
            vv = value.fn(ctx, cols, n)
            if isinstance(vv, _Scalar):
                result = vv.value is None
                return _Scalar(not result if negated else result)
            if negated:
                return [v is not None for v in vv]
            return [v is None for v in vv]

        return VExpr(fn, "bool", value.used)

    # -- functions --------------------------------------------------------

    def _function(self, expr: ast.FunctionCall) -> VExpr:
        if expr.name in AGGREGATE_NAMES or expr.star:
            return self._aggregate(expr)
        if expr.name == "COALESCE":
            return self._coalesce(expr)
        if expr.name == "NULLIF":
            if len(expr.args) != 2:
                raise Unsupported("NULLIF arity")
            first = self.compile(expr.args[0])
            second = self.compile(expr.args[1])

            def fn_nullif(ctx, cols, n):
                fv = first.fn(ctx, cols, n)
                sv = second.fn(ctx, cols, n)
                if isinstance(fv, _Scalar) and isinstance(sv, _Scalar):
                    a, b = fv.value, sv.value
                    return _Scalar(
                        None if compare("=", a, b) is True else a
                    )
                fa = _as_list(fv, n)
                sa = _as_list(sv, n)
                return [
                    None if compare("=", a, b) is True else a
                    for a, b in zip(fa, sa)
                ]

            return VExpr(fn_nullif, first.dtype, first.used | second.used)
        impl = SCALAR_FUNCTIONS.get(expr.name)
        if impl is None:
            raise Unsupported(f"unknown function {expr.name!r}")
        args = [self.compile(arg) for arg in expr.args]
        used = frozenset().union(*(a.used for a in args)) if args else frozenset()
        dtype = _FN_DTYPE.get(expr.name, "any")

        def fn(ctx, cols, n):
            vals = [a.fn(ctx, cols, n) for a in args]
            if all(isinstance(v, _Scalar) for v in vals):
                return _Scalar(impl([v.value for v in vals]))
            lists = [_as_list(v, n) for v in vals]
            return [impl(list(row)) for row in zip(*lists)] if lists else [
                impl([]) for _ in range(n)
            ]

        return VExpr(fn, dtype, used)

    def _coalesce(self, expr: ast.FunctionCall) -> VExpr:
        args = [self.compile(arg) for arg in expr.args]
        used = frozenset().union(*(a.used for a in args)) if args else frozenset()

        def fn(ctx, cols, n):
            # lazy like the row path: argument k runs only on rows the
            # first k-1 arguments left NULL
            out: List[Any] = [None] * n
            pending = list(range(n))
            for arg in args:
                if not pending:
                    break
                sub = _mask_gather(cols, arg.used, pending)
                vals = _as_list(arg.fn(ctx, sub, len(pending)), len(pending))
                still: List[int] = []
                for k, i in enumerate(pending):
                    v = vals[k]
                    if v is None:
                        still.append(i)
                    else:
                        out[i] = v
                pending = still
            return out

        return VExpr(fn, "any", used)

    def _aggregate(self, expr: ast.FunctionCall) -> VExpr:
        gctx = self._groups
        if gctx is None:
            raise Unsupported("aggregate outside group context")
        if expr.star:
            if expr.name != "COUNT":
                raise Unsupported(f"{expr.name}(*)")
            slot = _AggSlot("COUNT", True, False, None, "int")
        else:
            if len(expr.args) != 1:
                raise Unsupported(f"{expr.name} arity")
            if expr.name not in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                raise Unsupported(f"aggregate {expr.name!r}")
            arg = self._sibling.compile(expr.args[0])
            slot = _AggSlot(
                expr.name,
                False,
                expr.distinct,
                arg,
                _agg_dtype(expr.name, False, arg.dtype),
            )
        flat = gctx.add(slot)
        return VExpr(
            lambda ctx, cols, n, _f=flat: cols[_f],
            slot.dtype,
            frozenset((flat,)),
        )

    # -- misc -------------------------------------------------------------

    def _cast(self, expr: ast.Cast) -> VExpr:
        value = self.compile(expr.expr)
        target = expr.target
        if target is SqlType.VARCHAR:
            convert: Callable[[Any], Any] = _to_str
        elif target is SqlType.INTEGER:
            convert = int
        elif target is SqlType.REAL:
            convert = float
        else:
            from repro.sqlengine.types import coerce

            convert = lambda v, _t=target: coerce(v, _t)  # noqa: E731

        def fn(ctx, cols, n):
            vv = value.fn(ctx, cols, n)
            if isinstance(vv, _Scalar):
                v = vv.value
                return _Scalar(None if v is None else convert(v))
            return [None if v is None else convert(v) for v in vv]

        return VExpr(fn, _CAST_DTYPE.get(target, "any"), value.used)

    def _tuple(self, expr: ast.TupleExpr) -> VExpr:
        items = [self.compile(item) for item in expr.items]
        used = (
            frozenset().union(*(i.used for i in items))
            if items
            else frozenset()
        )

        def fn(ctx, cols, n):
            vals = [i.fn(ctx, cols, n) for i in items]
            if all(isinstance(v, _Scalar) for v in vals):
                return _Scalar(tuple(v.value for v in vals))
            lists = [_as_list(v, n) for v in vals]
            return [tuple(row) for row in zip(*lists)]

        return VExpr(fn, "any", used)

    def _unsupported(self, expr) -> VExpr:
        raise Unsupported(f"no vector lowering for {type(expr).__name__}")

    _DISPATCH: Dict[type, Callable[..., VExpr]] = {}


_Compiler._DISPATCH = {
    ast.Literal: _Compiler._literal,
    ast.HostVar: _Compiler._hostvar,
    ast.ColumnRef: _Compiler._column,
    ast.BinaryOp: _Compiler._binary,
    ast.UnaryOp: _Compiler._unary,
    ast.FunctionCall: _Compiler._function,
    ast.Between: _Compiler._between,
    ast.InList: _Compiler._in_list,
    ast.Like: _Compiler._like,
    ast.IsNull: _Compiler._is_null,
    ast.Cast: _Compiler._cast,
    ast.TupleExpr: _Compiler._tuple,
    # SequenceNextval: only as a bare select item (see build); inside
    # expressions the per-row allocation order is not reproducible
    # column-wise.  Subqueries, CASE and Star stay on the row path.
    ast.SequenceNextval: _Compiler._unsupported,
    ast.InSubquery: _Compiler._unsupported,
    ast.Exists: _Compiler._unsupported,
    ast.ScalarSubquery: _Compiler._unsupported,
    ast.Case: _Compiler._unsupported,
    ast.Star: _Compiler._unsupported,
}


# ---------------------------------------------------------------------------
# vector operators
# ---------------------------------------------------------------------------


class VNode:
    """Base vector operator.  Mirrors one row operator (``self.op``)
    and reports its rows/batches/spill into the row operator's EXPLAIN
    ANALYZE slot, so both executors share one observability surface."""

    op: Operator
    dtypes: List[str]

    def run(self, ctx: _Ctx) -> _Batch:
        collector = ctx.collector
        if collector is None:
            return self._execute(ctx)
        self._batches = 0
        self._spill = 0
        started = time.perf_counter()
        batch = self._execute(ctx)
        elapsed = time.perf_counter() - started
        collector.record_vector(
            self.op, batch.n, self._batches, self._spill, elapsed
        )
        return batch

    def _execute(self, ctx: _Ctx) -> _Batch:
        raise NotImplementedError

    _batches = 0
    _spill = 0


def _chunks(n: int, size: int) -> int:
    return (n + size - 1) // size if n else 1


class VScan(VNode):
    """Full scan: columnar tables hand over their column lists (cached
    per ``data_version``), row tables transpose their tuples."""

    def __init__(self, op: TableScan):
        self.op = op
        self.dtypes = _table_dtypes(op.table)
        self._cache_version: Optional[int] = None
        self._cache_cols: Optional[List[List[Any]]] = None

    def _execute(self, ctx: _Ctx) -> _Batch:
        table = self.op.table
        version = getattr(table, "data_version", None)
        if version is not None:
            if version != self._cache_version or self._cache_cols is None:
                self._cache_cols = table.column_lists()
                self._cache_version = version
            cols = self._cache_cols
            n = len(table)
        else:
            rows = table.rows
            n = len(rows)
            if n:
                cols = [list(c) for c in zip(*rows)]
            else:
                cols = [[] for _ in table.columns]
        self._batches = _chunks(n, ctx.batch_size)
        return _Batch(cols, n)


class VRows(VNode):
    """Materialized rows (derived tables, views) transposed once."""

    def __init__(self, op: RowsSource):
        self.op = op
        width = _frame_width(op.frame)
        self.dtypes = ["any"] * width
        self._width = width
        self._cols: Optional[List[List[Any]]] = None

    def _execute(self, ctx: _Ctx) -> _Batch:
        if self._cols is None:
            rows = self.op.rows
            if rows:
                self._cols = [list(c) for c in zip(*rows)]
            else:
                self._cols = [[] for _ in range(self._width)]
        self._batches = _chunks(len(self.op.rows), ctx.batch_size)
        return _Batch(self._cols, len(self.op.rows))


class VIndexLookup(VNode):
    """Constant-key secondary-index lookup (the pushed-down equality
    access path).  Key expressions are self-contained — the row
    operator compiled them against no frame — so they are evaluated
    once per execution, not per row."""

    def __init__(self, op: IndexLookup):
        self.op = op
        self.dtypes = _table_dtypes(op.table)

    def _execute(self, ctx: _Ctx) -> _Batch:
        op = self.op
        key = op._key_fn(None)
        width = len(op.table.columns)
        if any(value is None for value in key):
            self._batches = 1
            return _Batch([[] for _ in range(width)], 0)
        rows = list(op.index.lookup(key))
        if rows:
            cols = [list(c) for c in zip(*rows)]
        else:
            cols = [[] for _ in range(width)]
        self._batches = _chunks(len(rows), ctx.batch_size)
        return _Batch(cols, len(rows))


class VFilter(VNode):
    """Selection: evaluates the predicate in chunks of ``batch_size``
    (touching only the columns the predicate reads) and gathers the
    surviving positions."""

    def __init__(self, op: Filter, child: VNode, pred: VExpr):
        self.op = op
        self.child = child
        self.dtypes = child.dtypes
        self.pred = pred

    def _execute(self, ctx: _Ctx) -> _Batch:
        batch = self.child.run(ctx)
        cols = batch.cols
        n = batch.n
        pred = self.pred
        size = ctx.batch_size
        sel: List[int] = []
        batches = 0
        for start in range(0, n, size):
            end = min(start + size, n)
            span = end - start
            sub: List[Optional[List[Any]]] = [None] * len(cols)
            for u in pred.used:
                sub[u] = cols[u][start:end]
            vals = _as_list(pred.fn(ctx, sub, span), span)
            for k, v in enumerate(vals):
                if v is True:
                    sel.append(start + k)
            batches += 1
        self._batches = max(1, batches)
        if len(sel) == n:
            return _Batch(cols, n)
        return _Batch([_gather(c, sel) for c in cols], len(sel))


class VHashJoin(VNode):
    """Equi-join on key lists: builds positions on the right input,
    probes the left in order (left-major output, bucket order within a
    key — exactly the row operator's emission order).  Above the
    memory budget the build/probe runs partition-wise through
    :mod:`repro.sqlengine.spill`."""

    def __init__(
        self,
        op: HashJoin,
        left: VNode,
        right: VNode,
        left_keys: List[VExpr],
        right_keys: List[VExpr],
        residual: Optional[VExpr],
    ):
        self.op = op
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.dtypes = left.dtypes + right.dtypes

    def _execute(self, ctx: _Ctx) -> _Batch:
        # build side first, like the row operator
        rbatch = self.right.run(ctx)
        lbatch = self.left.run(ctx)
        rkeys = [
            _as_list(k.fn(ctx, rbatch.cols, rbatch.n), rbatch.n)
            for k in self.right_keys
        ]
        lkeys = [
            _as_list(k.fn(ctx, lbatch.cols, lbatch.n), lbatch.n)
            for k in self.left_keys
        ]
        budget = ctx.budget
        if budget is not None and rbatch.n and spill_mod.estimate_bytes(
            len(rbatch.cols) + len(rkeys), rbatch.n
        ) > budget:
            pairs, spilled = spill_mod.spill_join_pairs(
                _key_tuples(lkeys, lbatch.n), _key_tuples(rkeys, rbatch.n)
            )
            self._spill += spilled
            lefts = [i for i, _ in pairs]
            rights = [j for _, j in pairs]
        else:
            lefts, rights = _join_pairs(lkeys, lbatch.n, rkeys, rbatch.n)
        cols = [_gather(c, lefts) for c in lbatch.cols]
        cols += [_gather(c, rights) for c in rbatch.cols]
        n = len(lefts)
        residual = self.residual
        if residual is not None and n:
            vals = _as_list(residual.fn(ctx, cols, n), n)
            sel = [i for i, v in enumerate(vals) if v is True]
            if len(sel) != n:
                cols = [_gather(c, sel) for c in cols]
                n = len(sel)
        self._batches = _chunks(n, ctx.batch_size)
        return _Batch(cols, n)


def _key_tuples(key_lists: List[List[Any]], n: int) -> List[Tuple[Any, ...]]:
    if len(key_lists) == 1:
        return [(v,) for v in key_lists[0]]
    return list(zip(*key_lists)) if key_lists else [() for _ in range(n)]


def _join_pairs(
    lkeys: List[List[Any]], ln: int, rkeys: List[List[Any]], rn: int
) -> Tuple[List[int], List[int]]:
    """Matching (left, right) row indices of an equi-join, i-major and
    in bucket order per i — as two parallel index lists, ready for
    :func:`_gather`."""
    lefts: List[int] = []
    rights: List[int] = []
    lappend = lefts.append
    rappend = rights.append
    if len(lkeys) == 1 and len(rkeys) == 1:
        # single-key joins dominate the workload: skip key tuples
        build_scalar: Dict[Any, List[int]] = {}
        setdefault = build_scalar.setdefault
        for j, value in enumerate(rkeys[0]):
            if value is not None:
                setdefault(value, []).append(j)
        get = build_scalar.get
        for i, value in enumerate(lkeys[0]):
            if value is None:
                continue
            bucket = get(value)
            if bucket:
                for j in bucket:
                    lappend(i)
                    rappend(j)
        return lefts, rights
    build: Dict[Tuple[Any, ...], List[int]] = {}
    setdefault = build.setdefault
    for j, key in enumerate(_key_tuples(rkeys, rn)):
        if None in key:
            continue
        setdefault(key, []).append(j)
    get = build.get
    for i, key in enumerate(_key_tuples(lkeys, ln)):
        if None in key:
            continue
        bucket = get(key)
        if bucket:
            for j in bucket:
                lappend(i)
                rappend(j)
    return lefts, rights


class VLeftOuterHashJoin(VNode):
    """LEFT OUTER equi-join.  Candidates are gathered per left row in
    bucket order, the residual is applied batch-wise, and unmatched
    left rows pad the right side with NULLs — the row operator's exact
    emission order.  Above the memory budget the candidate pairs come
    from :func:`repro.sqlengine.spill.spill_join_pairs`, whose output
    (left-major, build-insertion order per key) is exactly the
    in-memory candidate order, so the per-left spans — and with them
    the NULL padding of unmatched rows — rebuild identically."""

    def __init__(
        self,
        op: LeftOuterHashJoin,
        left: VNode,
        right: VNode,
        left_keys: List[VExpr],
        right_keys: List[VExpr],
        residual: Optional[VExpr],
    ):
        self.op = op
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.residual = residual
        self.dtypes = left.dtypes + right.dtypes

    def _execute(self, ctx: _Ctx) -> _Batch:
        rbatch = self.right.run(ctx)
        lbatch = self.left.run(ctx)
        rkeys = [
            _as_list(k.fn(ctx, rbatch.cols, rbatch.n), rbatch.n)
            for k in self.right_keys
        ]
        lkeys = [
            _as_list(k.fn(ctx, lbatch.cols, lbatch.n), lbatch.n)
            for k in self.left_keys
        ]
        budget = ctx.budget
        ltup = _key_tuples(lkeys, lbatch.n)
        # candidate (left, right) pairs, i-major and contiguous per i
        cand: List[Tuple[int, int]]
        if budget is not None and rbatch.n and spill_mod.estimate_bytes(
            len(rbatch.cols) + len(rkeys), rbatch.n
        ) > budget:
            cand, spilled = spill_mod.spill_join_pairs(
                ltup, _key_tuples(rkeys, rbatch.n)
            )
            self._spill += spilled
        else:
            build: Dict[Tuple[Any, ...], List[int]] = {}
            rtup = _key_tuples(rkeys, rbatch.n)
            for j in range(rbatch.n):
                key = rtup[j]
                if any(v is None for v in key):
                    continue
                build.setdefault(key, []).append(j)
            cand = []
            for i in range(lbatch.n):
                key = ltup[i]
                if not any(v is None for v in key):
                    for j in build.get(key, ()):
                        cand.append((i, j))
        # per-left candidate spans over the i-major pair list; left
        # rows with no candidates get empty spans (NULL-pad below)
        spans: List[Tuple[int, int]] = []
        pos = 0
        total = len(cand)
        for i in range(lbatch.n):
            start = pos
            while pos < total and cand[pos][0] == i:
                pos += 1
            spans.append((start, pos))
        matched_flags: List[bool]
        if self.residual is not None and cand:
            ccols = [_gather(c, [i for i, _ in cand]) for c in lbatch.cols]
            ccols += [_gather(c, [j for _, j in cand]) for c in rbatch.cols]
            vals = _as_list(self.residual.fn(ctx, ccols, len(cand)), len(cand))
            matched_flags = [v is True for v in vals]
        else:
            matched_flags = [True] * len(cand)
        lefts: List[int] = []
        rights: List[int] = []
        for i in range(lbatch.n):
            start, end = spans[i]
            any_match = False
            for k in range(start, end):
                if matched_flags[k]:
                    any_match = True
                    lefts.append(i)
                    rights.append(cand[k][1])
            if not any_match:
                lefts.append(i)
                rights.append(-1)
        cols = [_gather(c, lefts) for c in lbatch.cols]
        cols += [_gather_pad(c, rights) for c in rbatch.cols]
        n = len(lefts)
        self._batches = _chunks(n, ctx.batch_size)
        return _Batch(cols, n)


class VAggregate(VNode):
    """Hash grouping with slot reduction.  The output batch carries
    one representative (first-member) value per child column, followed
    by one column per aggregate slot; the post-group compiler reads
    both through flat indices.  Above the memory budget, grouping runs
    partition-wise on disk."""

    def __init__(
        self,
        op: GroupAggregate,
        child: VNode,
        key_vexprs: List[VExpr],
        gctx: _GroupContext,
    ):
        self.op = op
        self.child = child
        self.key_vexprs = key_vexprs
        self.gctx = gctx
        self.dtypes = child.dtypes + [s.dtype for s in gctx.slots]

    def _execute(self, ctx: _Ctx) -> _Batch:
        batch = self.child.run(ctx)
        ccols = batch.cols
        n = batch.n
        keys = _key_tuples(
            [
                _as_list(k.fn(ctx, ccols, n), n)
                for k in self.key_vexprs
            ],
            n,
        )
        slots = self.gctx.slots
        arg_lists: List[Optional[List[Any]]] = [
            None
            if s.star
            else _as_list(s.arg.fn(ctx, ccols, n), n)
            for s in slots
        ]
        budget = ctx.budget
        if budget is not None and n and spill_mod.estimate_bytes(
            len(ccols) + len(slots) + len(self.key_vexprs), n
        ) > budget:
            repcols, slotcols, count, spilled = spill_mod.spill_aggregate(
                n, keys, ccols, arg_lists, slots
            )
            self._spill += spilled
            self._batches = _chunks(count, ctx.batch_size)
            return _Batch(repcols + slotcols, count)
        groups: Dict[Tuple[Any, ...], int] = {}
        members: List[List[int]] = []
        for i in range(n):
            key = keys[i]
            g = groups.get(key)
            if g is None:
                groups[key] = len(members)
                members.append([i])
            else:
                members[g].append(i)
        if not members:
            if not self.op.scalar:
                self._batches = 1
                width = len(ccols) + len(slots)
                return _Batch([[] for _ in range(width)], 0)
            repcols = [[None] for _ in ccols]
            members = [[]]
        else:
            reps = [m[0] for m in members]
            repcols = [_gather(c, reps) for c in ccols]
        slotcols = [
            reduce_slot(slot, arg_lists[pos], members)
            for pos, slot in enumerate(slots)
        ]
        count = len(members)
        self._batches = _chunks(count, ctx.batch_size)
        return _Batch(repcols + slotcols, count)


def reduce_values(name: str, values: List[Any]) -> Any:
    """One aggregate reduction over the non-NULL (and, if requested,
    already-deduplicated) argument values — the evaluator's exact
    arithmetic (shared with the spill path)."""
    if name == "COUNT":
        return len(values)
    if not values:
        return None
    if name == "SUM":
        return sum(values)
    if name == "AVG":
        return sum(values) / len(values)
    if name == "MIN":
        return min(values)
    return max(values)


def reduce_slot(
    slot: _AggSlot, argv: Optional[List[Any]], members: List[List[int]]
) -> List[Any]:
    if slot.star:
        return [len(m) for m in members]
    out = []
    for m in members:
        values = [argv[i] for i in m]
        values = [v for v in values if v is not None]
        if slot.distinct:
            values = _distinct_values(values)
        out.append(reduce_values(slot.name, values))
    return out


# ---------------------------------------------------------------------------
# plan builder
# ---------------------------------------------------------------------------


def _build_node(op: Operator, db: Any) -> VNode:
    if isinstance(op, TableScan):
        return VScan(op)
    if isinstance(op, IndexLookup):
        if not op.compiled:
            # interpreted key expressions may need a row environment
            raise Unsupported("index lookup with non-constant keys")
        return VIndexLookup(op)
    if isinstance(op, RowsSource):
        return VRows(op)
    if isinstance(op, Filter):
        child = _build_node(op.child, db)
        comp = _Compiler(op.frame, child.dtypes, db)
        return VFilter(op, child, comp.compile(op.predicate))
    if isinstance(op, (HashJoin, LeftOuterHashJoin)):
        left = _build_node(op.left, db)
        right = _build_node(op.right, db)
        lcomp = _Compiler(op.left.frame, left.dtypes, db)
        rcomp = _Compiler(op.right.frame, right.dtypes, db)
        left_keys = [lcomp.compile(k) for k in op.left_keys]
        right_keys = [rcomp.compile(k) for k in op.right_keys]
        residual = None
        if op.residual is not None:
            jcomp = _Compiler(op.frame, left.dtypes + right.dtypes, db)
            residual = jcomp.compile(op.residual)
        cls = VHashJoin if isinstance(op, HashJoin) else VLeftOuterHashJoin
        return cls(op, left, right, left_keys, right_keys, residual)
    raise Unsupported(f"operator {type(op).__name__}")


class VectorPlan:
    """A vectorized SELECT pipeline mirroring one ``_SelectPlan``."""

    __slots__ = (
        "source",
        "source_op",
        "filter_vexpr",
        "parts",
        "columns",
        "order_entries",
        "select",
        "width",
    )

    def execute(self, db: Any) -> Tuple[List[str], List[Tuple[Any, ...]]]:
        ctx = _Ctx(db)
        batch = self.source.run(ctx)
        im = db._im
        if im is not None and batch.n:
            im.rows_scanned.inc(batch.n)
        cols = batch.cols
        n = batch.n
        filt = self.filter_vexpr
        if filt is not None and n:
            vals = _as_list(filt.fn(ctx, cols, n), n)
            sel = [i for i, v in enumerate(vals) if v is True]
            if len(sel) != n:
                cols = [_gather(c, sel) for c in cols]
                n = len(sel)
        out_cols: List[List[Any]] = []
        for kind, payload in self.parts:
            if kind == "cols":
                for flat in payload:
                    out_cols.append(cols[flat])
            elif kind == "expr":
                out_cols.append(_as_list(payload.fn(ctx, cols, n), n))
            else:  # "seq": a bare NEXTVAL item, allocated in row order
                sequence = db.catalog.get_sequence(payload)
                out_cols.append([sequence.nextval() for _ in range(n)])
        rows: List[Tuple[Any, ...]] = list(zip(*out_cols)) if n else []
        select = self.select
        if select.distinct:
            seen: Dict[Tuple[Any, ...], None] = {}
            for row in rows:
                if row not in seen:
                    seen[row] = None
            rows = list(seen.keys())
        if self.order_entries and rows:
            rows = self._order(ctx, rows)
        return self.columns, rows

    def _order(self, ctx: _Ctx, rows: List[Tuple[Any, ...]]) -> List[Any]:
        from repro.sqlengine import engine as _engine

        width = self.width
        ocols = [list(c) for c in zip(*rows)]
        n = len(rows)
        key_cols: List[List[Any]] = []
        for kind, payload in self.order_entries:
            if kind == "pos":
                position = payload - 1
                if not 0 <= position < width:
                    raise ExecutionError(
                        f"ORDER BY position {payload} out of range"
                    )
                key_cols.append(ocols[position])
            else:
                key_cols.append(_as_list(payload.fn(ctx, ocols, n), n))
        keys = list(zip(*key_cols))
        budget = ctx.budget
        if budget is not None and spill_mod.estimate_bytes(
            width + len(key_cols), n
        ) > budget:
            rows, spilled = spill_mod.external_sort(
                rows, keys, self.select.order_by, budget
            )
            collector = ctx.collector
            if collector is not None:
                collector.add_vector_spill(self.source_op, spilled)
            return rows
        return _engine._sort_rows(rows, keys, self.select.order_by)


def build_vector_plan(plan: Any, db: Any) -> Any:
    """Mirror *plan* onto a :class:`VectorPlan`, or return ``False``
    when any node has no exact vector lowering (row path forever)."""
    try:
        return _build_plan(plan, db)
    except Unsupported:
        return False


def _build_plan(plan: Any, db: Any) -> VectorPlan:
    select = plan.select
    source_op = plan.source
    if source_op is None:
        raise Unsupported("no FROM source")
    vp = VectorPlan()
    vp.select = select
    vp.source_op = source_op
    if isinstance(source_op, GroupAggregate):
        child = _build_node(source_op.child, db)
        frame = source_op.frame
        gctx = _GroupContext(len(child.dtypes))
        scalar_comp = _Compiler(frame, child.dtypes, db)
        group_comp = _Compiler(
            frame, child.dtypes, db, groups=gctx, sibling=scalar_comp
        )
        key_vexprs = [scalar_comp.compile(k) for k in source_op.keys]
        vp.filter_vexpr = (
            group_comp.compile(select.having)
            if select.having is not None
            else None
        )
        item_comp = group_comp
        node: VNode = VAggregate(source_op, child, key_vexprs, gctx)
    else:
        node = _build_node(source_op, db)
        from repro.sqlengine.planner import conjoin

        predicate = conjoin(plan.leftovers)
        item_comp = _Compiler(source_op.frame, node.dtypes, db)
        vp.filter_vexpr = (
            item_comp.compile(predicate) if predicate is not None else None
        )
    vp.source = node
    frame = source_op.frame
    offsets = _frame_offsets(frame)

    parts: List[Tuple[str, Any]] = []
    out_dtypes: List[str] = []
    seq_items = 0
    for item in select.items:
        expr = item.expr
        if isinstance(expr, ast.Star):
            flats = [
                offsets[src_idx] + col_idx
                for src_idx, col_idx, _ in frame.star_columns(expr.qualifier)
            ]
            parts.append(("cols", flats))
            out_dtypes.extend(
                node.dtypes[f] if f < len(node.dtypes) else "any"
                for f in flats
            )
        elif isinstance(expr, ast.SequenceNextval):
            seq_items += 1
            if seq_items > 1:
                # two sequences interleave per row; column-wise
                # allocation would reorder them
                raise Unsupported("multiple NEXTVAL select items")
            parts.append(("seq", expr.sequence))
            out_dtypes.append("int")
        else:
            vexpr = item_comp.compile(expr)
            parts.append(("expr", vexpr))
            out_dtypes.append(vexpr.dtype)
    vp.parts = parts
    vp.columns = plan.projector.columns
    vp.width = len(vp.columns)

    entries: List[Tuple[str, Any]] = []
    if select.order_by:
        out_frame = Frame.single(None, vp.columns)
        order_comp = _Compiler(out_frame, out_dtypes, db)
        for order_item in select.order_by:
            expr = order_item.expr
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                entries.append(("pos", expr.value))
            else:
                # compiles only against the output row; source-scoped
                # or aggregate order keys fall back to the row path
                entries.append(("expr", order_comp.compile(expr)))
    vp.order_entries = entries
    return vp
