"""Columnar table storage: typed column vectors behind the Table API.

The encoded tables the preprocessor materializes are narrow, long and
string-heavy (``MR_Bset.name`` repeats every distinct item value once
per occurrence) — exactly the shape dictionary encoding and typed
arrays were invented for.  A :class:`ColumnarTable` stores each column
as one adaptive :class:`ColumnVector`:

=========  ==============================================================
kind       physical layout
=========  ==============================================================
empty      no non-NULL value seen yet (``None`` run length only)
int        ``array('q')`` machine words + NULL position list
float      ``array('d')`` + NULL position list
str        dictionary encoding: ``array('i')`` codes into an interned
           value list (``-1`` = NULL)
obj        plain Python list (dates, booleans, mixed/overflowing values)
=========  ==============================================================

A vector *promotes* itself (int -> float -> obj, str -> obj) when a
value arrives that its layout cannot hold exactly — values are never
coerced by storage, so the materialized rows are bit-identical to what
a row :class:`~repro.sqlengine.table.Table` would hold.

``ColumnarTable`` keeps the full ``Table`` contract: ``rows`` is a
lazily materialized (and cached) list of tuples, so the row executor,
DML, dumps and secondary indexes keep working unchanged; the vectorized
executor (:mod:`repro.sqlengine.vector`) reads the column vectors
directly and never pays the materialization.
"""

from __future__ import annotations

import datetime
from array import array
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.table import Row, Table, TableIndex
from repro.sqlengine.types import SqlType, coerce, infer_type

try:  # numpy accelerates typed filter kernels; it is optional
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None

#: bounds of an ``array('q')`` element
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: storage kind names accepted by EngineOptions/CLI
STORAGE_KINDS = ("row", "columnar")


def validate_storage(storage: str) -> str:
    if storage not in STORAGE_KINDS:
        raise ValueError(
            f"unknown storage {storage!r}; choose from {STORAGE_KINDS}"
        )
    return storage


class ColumnVector:
    """One adaptive typed column.

    Appends are exact: a value the current layout cannot represent
    promotes the whole vector (decoding what was stored so far), so
    ``to_pylist()`` always returns the appended values unchanged.
    """

    __slots__ = ("kind", "data", "nulls", "values", "index", "length")

    def __init__(self) -> None:
        self.kind = "empty"
        self.data: Any = None
        #: positions holding NULL (int/float kinds only)
        self.nulls: List[int] = []
        #: interned values (str kind only)
        self.values: Optional[List[str]] = None
        self.index: Optional[Dict[str, int]] = None
        self.length = 0

    # -- writes ---------------------------------------------------------

    def append(self, value: Any) -> None:
        kind = self.kind
        if kind == "int":
            self._append_int(value)
        elif kind == "str":
            self._append_str(value)
        elif kind == "obj":
            self.data.append(value)
        elif kind == "float":
            self._append_float(value)
        else:
            self._append_first(value)
        self.length += 1

    def _append_first(self, value: Any) -> None:
        if value is None:
            self.nulls.append(self.length)
            # leading NULL run: stay "empty" until a typed value shows
            # the layout; record a placeholder so positions line up
            if self.data is None:
                self.data = []
            self.data.append(None)
            return
        prefix = self.data or []
        if isinstance(value, bool):
            self.kind = "obj"
            self.data = list(prefix)
            self.nulls = []
            self.data.append(value)
        elif isinstance(value, int):
            if _INT64_MIN <= value <= _INT64_MAX:
                self.kind = "int"
                self.data = array("q", [0] * len(prefix))
                self.data.append(value)
            else:
                self.kind = "obj"
                self.data = list(prefix)
                self.nulls = []
                self.data.append(value)
        elif isinstance(value, float):
            self.kind = "float"
            self.data = array("d", [0.0] * len(prefix))
            self.data.append(value)
        elif isinstance(value, str):
            self.kind = "str"
            codes = array("i", [-1] * len(prefix))
            self.data = codes
            self.values = []
            self.index = {}
            self.nulls = []
            codes.append(self._intern(value))
        else:
            self.kind = "obj"
            self.data = list(prefix)
            self.nulls = []
            self.data.append(value)

    def _append_int(self, value: Any) -> None:
        if value is None:
            self.nulls.append(self.length)
            self.data.append(0)
            return
        if isinstance(value, int) and not isinstance(value, bool):
            if _INT64_MIN <= value <= _INT64_MAX:
                self.data.append(value)
                return
        self._promote_obj()
        self.data.append(value)

    def _append_float(self, value: Any) -> None:
        if value is None:
            self.nulls.append(self.length)
            self.data.append(0.0)
            return
        if isinstance(value, float):
            self.data.append(value)
            return
        self._promote_obj()
        self.data.append(value)

    def _append_str(self, value: Any) -> None:
        if value is None:
            self.data.append(-1)
            return
        if isinstance(value, str):
            self.data.append(self._intern(value))
            return
        self._promote_obj()
        self.data.append(value)

    def extend(self, values: Sequence[Any]) -> None:
        """Bulk append with one layout dispatch per run, not per value.

        Values the settled layout cannot hold exactly fall back to the
        per-value path (which promotes), so the result is identical to
        appending one by one.
        """
        position = 0
        total = len(values)
        while self.kind == "empty" and position < total:
            self.append(values[position])
            position += 1
        kind = self.kind
        data = self.data
        if kind == "int":
            nulls = self.nulls
            length = self.length
            while position < total:
                value = values[position]
                if type(value) is int:
                    if not _INT64_MIN <= value <= _INT64_MAX:
                        break
                    data.append(value)
                elif value is None:
                    nulls.append(length)
                    data.append(0)
                else:
                    break
                length += 1
                position += 1
            self.length = length
        elif kind == "str":
            index = self.index
            interned = self.values
            length = self.length
            while position < total:
                value = values[position]
                if type(value) is str:
                    code = index.get(value)
                    if code is None:
                        code = len(interned)
                        index[value] = code
                        interned.append(value)
                    data.append(code)
                elif value is None:
                    data.append(-1)
                else:
                    break
                length += 1
                position += 1
            self.length = length
        elif kind == "float":
            nulls = self.nulls
            length = self.length
            while position < total:
                value = values[position]
                if type(value) is float:
                    data.append(value)
                elif value is None:
                    nulls.append(length)
                    data.append(0.0)
                else:
                    break
                length += 1
                position += 1
            self.length = length
        elif kind == "obj":
            tail = values[position:] if position else values
            data.extend(tail)
            self.length += total - position
            position = total
        for i in range(position, total):
            self.append(values[i])

    def _intern(self, value: str) -> int:
        code = self.index.get(value)
        if code is None:
            code = len(self.values)
            self.index[value] = code
            self.values.append(value)
        return code

    def _promote_obj(self) -> None:
        self.data = self.to_pylist()
        self.kind = "obj"
        self.nulls = []
        self.values = None
        self.index = None

    # -- reads ----------------------------------------------------------

    def to_pylist(self) -> List[Any]:
        """The column as a fresh Python list with exact values."""
        kind = self.kind
        if kind in ("int", "float"):
            out: List[Any] = list(self.data)
            for position in self.nulls:
                out[position] = None
            return out
        if kind == "str":
            values = self.values
            return [None if code < 0 else values[code] for code in self.data]
        if kind == "obj":
            return list(self.data)
        return [None] * self.length

    def get(self, position: int) -> Any:
        kind = self.kind
        if kind == "str":
            code = self.data[position]
            return None if code < 0 else self.values[code]
        if kind in ("int", "float"):
            if self.nulls and position in self._null_set():
                return None
            return self.data[position]
        if kind == "obj":
            return self.data[position]
        return None

    def _null_set(self):
        # small helper; the hot paths use to_pylist / numpy instead
        return set(self.nulls)

    @property
    def has_nulls(self) -> bool:
        if self.kind == "str":
            return any(code < 0 for code in self.data)
        if self.kind == "obj":
            return any(v is None for v in self.data)
        if self.kind == "empty":
            return self.length > 0
        return bool(self.nulls)

    def numpy(self):
        """The column as a numpy array when its layout is numeric and
        NULL-free (None otherwise) — the fast filter kernel input."""
        if _np is None or self.nulls:
            return None
        if self.kind == "int":
            return _np.frombuffer(self.data, dtype=_np.int64)
        if self.kind == "float":
            return _np.frombuffer(self.data, dtype=_np.float64)
        return None

    def nbytes(self) -> int:
        """Approximate heap footprint of the physical layout."""
        if self.kind in ("int", "float", "str"):
            size = self.data.itemsize * len(self.data)
            if self.kind == "str":
                size += sum(len(v) + 49 for v in self.values)
            return size + 8 * len(self.nulls)
        if self.kind == "obj":
            return 56 * len(self.data)
        return 8 * self.length

    def __len__(self) -> int:
        return self.length


def _coerce_column(values: List[Any], declared: SqlType) -> List[Any]:
    """Coerce a whole column, skipping values that already have the
    declared type's canonical Python shape (``coerce`` would return
    them unchanged)."""
    if declared is SqlType.INTEGER:
        return [
            v if type(v) is int or v is None else coerce(v, declared)
            for v in values
        ]
    if declared is SqlType.VARCHAR:
        return [
            v if type(v) is str or v is None else coerce(v, declared)
            for v in values
        ]
    if declared is SqlType.REAL:
        return [
            v if type(v) is float or v is None else coerce(v, declared)
            for v in values
        ]
    if declared is SqlType.DATE:
        return [
            v if type(v) is datetime.date or v is None
            else coerce(v, declared)
            for v in values
        ]
    return [coerce(v, declared) for v in values]


class ColumnarTable(Table):
    """A :class:`Table` whose physical layout is one vector per column.

    The row-oriented API (``rows``, iteration, DML through
    ``replace_rows``) stays available through a cached materialization,
    so every existing consumer works unchanged; mutations go to the
    vectors and invalidate the cache.
    """

    storage = "columnar"

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        types: Optional[Sequence[Optional[SqlType]]] = None,
    ):
        # mirrors Table.__init__ minus the row list (rows is a property
        # here, so the base class assignment would not bind)
        if len(set(c.lower() for c in columns)) != len(columns):
            raise CatalogError(f"duplicate column name in table {name!r}")
        self.name = name
        self.columns = tuple(columns)
        self.types = list(types) if types is not None else [None] * len(columns)
        if len(self.types) != len(self.columns):
            raise CatalogError(
                f"table {name!r}: {len(columns)} columns but "
                f"{len(self.types)} types"
            )
        self._index = {c.lower(): i for i, c in enumerate(columns)}
        self.indexes: Dict[str, TableIndex] = {}
        self._vectors: List[ColumnVector] = [
            ColumnVector() for _ in self.columns
        ]
        self._length = 0
        self._rows_cache: Optional[List[Row]] = None
        #: bumped on every mutation; vector scans key batch caches on it
        self.data_version = 0

    # -- columnar access -------------------------------------------------

    def _sync_external(self) -> None:
        """Absorb out-of-band mutation of the materialized row list.

        ``Table.rows`` is a public mutable list and a few consumers
        (dump restore, tests) append to it directly.  Here ``rows``
        hands out a cached materialization, so such appends bypass the
        vectors; a length drift between the cache and the encoded
        columns re-encodes from the cache (the mutated view wins, as
        it would on the row layout)."""
        cache = self._rows_cache
        if cache is not None and len(cache) != self._length:
            self._encode_rows(list(cache))
            for table_index in self.indexes.values():
                table_index.rebuild(self._rows_cache)

    def column_vector(self, position: int) -> ColumnVector:
        self._sync_external()
        return self._vectors[position]

    def column_lists(self) -> List[List[Any]]:
        """Every column materialized as a Python list (no row tuples)."""
        self._sync_external()
        return [vector.to_pylist() for vector in self._vectors]

    def nbytes(self) -> int:
        return sum(vector.nbytes() for vector in self._vectors)

    # -- Table contract ---------------------------------------------------

    @property
    def rows(self) -> List[Row]:
        cache = self._rows_cache
        if cache is None:
            if self._length == 0:
                cache = []
            else:
                cache = list(zip(*(v.to_pylist() for v in self._vectors)))
            self._rows_cache = cache
        return cache

    @rows.setter
    def rows(self, new_rows: List[Row]) -> None:
        # assignment re-encodes (the DELETE/UPDATE replace path)
        self._encode_rows(new_rows)

    def insert(self, values: Sequence[Any]) -> None:
        if len(values) != len(self.columns):
            raise ExecutionError(
                f"INSERT into {self.name!r}: expected {len(self.columns)} "
                f"values, got {len(values)}"
            )
        types = self.types
        vectors = self._vectors
        stored: Optional[List[Any]] = [] if self.indexes else None
        for i, value in enumerate(values):
            declared = types[i]
            if declared is None:
                if value is not None:
                    types[i] = infer_type(value)
            else:
                value = coerce(value, declared)
            vectors[i].append(value)
            if stored is not None:
                stored.append(value)
        self._length += 1
        self._rows_cache = None
        self.data_version += 1
        if stored is not None:
            row = tuple(stored)
            for table_index in self.indexes.values():
                table_index.add(row)

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Column-wise bulk append (one type dispatch per column).

        Semantically identical to per-row :meth:`insert`: declared
        types coerce every value, an undeclared type is inferred from
        the column's first non-NULL value and applied to the values
        after it — exactly the order the per-row path would see.
        """
        rows = [tuple(row) for row in rows]
        if not rows:
            return 0
        arity = len(self.columns)
        for row in rows:
            if len(row) != arity:
                raise ExecutionError(
                    f"INSERT into {self.name!r}: expected {arity} "
                    f"values, got {len(row)}"
                )
        types = self.types
        vectors = self._vectors
        coerced: List[List[Any]] = []
        for i, column in enumerate(zip(*rows)):
            declared = types[i]
            col = list(column)
            if declared is None:
                for k, value in enumerate(col):
                    if value is not None:
                        declared = infer_type(value)
                        types[i] = declared
                        col = col[: k + 1] + _coerce_column(
                            col[k + 1 :], declared
                        )
                        break
            else:
                col = _coerce_column(col, declared)
            vectors[i].extend(col)
            if self.indexes:
                coerced.append(col)
        self._length += len(rows)
        self._rows_cache = None
        self.data_version += 1
        if self.indexes:
            for row in zip(*coerced):
                for table_index in self.indexes.values():
                    table_index.add(row)
        return len(rows)

    def truncate(self) -> None:
        self._vectors = [ColumnVector() for _ in self.columns]
        self._length = 0
        self._rows_cache = None
        self.data_version += 1
        for table_index in self.indexes.values():
            table_index.entries = {}

    def replace_rows(self, rows: List[Row]) -> None:
        self._encode_rows(rows)
        for table_index in self.indexes.values():
            table_index.rebuild(self._rows_cache)

    def _encode_rows(self, rows: List[Row]) -> None:
        self._vectors = [ColumnVector() for _ in self.columns]
        for row in rows:
            for vector, value in zip(self._vectors, row):
                vector.append(value)
        self._length = len(rows)
        self._rows_cache = [
            row if isinstance(row, tuple) else tuple(row) for row in rows
        ]
        self.data_version += 1

    def __len__(self) -> int:
        self._sync_external()
        return self._length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarTable({self.name!r}, {self._length} rows)"


def make_table(
    kind: str,
    name: str,
    columns: Sequence[str],
    types: Optional[Sequence[Optional[SqlType]]] = None,
) -> Table:
    """Build a table of the requested storage *kind*."""
    if validate_storage(kind) == "columnar":
        return ColumnarTable(name, columns, types)
    return Table(name, columns, types)


def from_rows(
    kind: str,
    name: str,
    columns: Sequence[str],
    rows: Iterable[Sequence[Any]],
    types: Optional[Sequence[Optional[SqlType]]] = None,
) -> Table:
    table = make_table(kind, name, columns, types)
    table.insert_many(rows)
    return table
