"""Database persistence: dump and restore the catalog as a directory.

The format is deliberately boring and inspectable:

* ``<dir>/catalog.json`` — tables (schemas), views (SQL text),
  sequences (next value), indexes;
* ``<dir>/<table>.tsv``  — one tab-separated file per table, typed via
  the schema (NULL as ``\\N``, dates ISO).

The mining system uses this to persist output-rule relations across
sessions — the integration property the decoupled architecture lacks.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.sqlengine.catalog import Index, Sequence, View
from repro.sqlengine.engine import Database
from repro.sqlengine.parser import parse_sql
from repro.sqlengine.render import render_select
from repro.sqlengine.table import Table
from repro.sqlengine.types import SqlType

_NULL = "\\N"


def dump_database(database: Database, directory: Union[str, Path]) -> Path:
    """Write the full catalog + data under *directory* (created if
    needed); returns the directory path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    manifest: Dict[str, Any] = {
        "format": 1,
        "tables": [],
        "views": [],
        "sequences": [],
        "indexes": [],
        "variables": _jsonable_variables(database.variables),
    }

    for table in database.catalog.tables():
        manifest["tables"].append(
            {
                "name": table.name,
                "columns": list(table.columns),
                "types": [t.value if t else None for t in table.types],
                "rows": len(table),
            }
        )
        _write_rows(directory / f"{table.name}.tsv", table)

    for view in database.catalog.views():
        manifest["views"].append(
            {"name": view.name, "sql": render_select(view.select)}
        )
    for sequence_name in _sequence_names(database):
        sequence = database.catalog.get_sequence(sequence_name)
        manifest["sequences"].append(
            {"name": sequence.name, "next": sequence.next_value}
        )
    for index in database.catalog._indexes.values():
        manifest["indexes"].append(
            {
                "name": index.name,
                "table": index.table,
                "columns": list(index.columns),
            }
        )

    with open(directory / "catalog.json", "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return directory


def load_database(directory: Union[str, Path]) -> Database:
    """Rebuild a :class:`Database` from a dump directory."""
    directory = Path(directory)
    with open(directory / "catalog.json", "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("format") != 1:
        raise ValueError(f"unsupported dump format: {manifest.get('format')}")

    database = Database()
    for entry in manifest["tables"]:
        types = [SqlType(t) if t else None for t in entry["types"]]
        table = Table(entry["name"], entry["columns"], types)
        _read_rows(directory / f"{entry['name']}.tsv", table)
        if len(table) != entry["rows"]:
            raise ValueError(
                f"dump corrupt: {entry['name']} has {len(table)} rows, "
                f"manifest says {entry['rows']}"
            )
        database.catalog.create_table(table)
    for entry in manifest["views"]:
        select = parse_sql(entry["sql"])
        database.catalog.create_view(View(entry["name"], select))
    for entry in manifest["sequences"]:
        database.catalog.create_sequence(entry["name"], entry["next"])
    for entry in manifest["indexes"]:
        database.catalog.create_index(
            Index(entry["name"], entry["table"], tuple(entry["columns"]))
        )
    database.variables.update(manifest.get("variables", {}))
    return database


def dump_table_text(database: Database, table_name: str) -> str:
    """Deterministic text rendering of one table: a header line with
    the column names, then the data rows in sorted order, tab-separated
    with the dump serialization.  This is the format of the golden-file
    tests: bit-identical across runs iff the table contents are."""
    table = database.catalog.get_table(table_name)
    lines = ["\t".join(str(column) for column in table.columns)]
    lines.extend(
        sorted(
            "\t".join(_serialize(value) for value in row)
            for row in table.rows
        )
    )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------


def _sequence_names(database: Database) -> List[str]:
    return [s.name for s in database.catalog._sequences.values()]


def _jsonable_variables(variables: Dict[str, Any]) -> Dict[str, Any]:
    out = {}
    for key, value in variables.items():
        if isinstance(value, (int, float, str, bool)) or value is None:
            out[key] = value
    return out


def _write_rows(path: Path, table: Table) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for row in table.rows:
            handle.write(
                "\t".join(_serialize(value) for value in row) + "\n"
            )


def _serialize(value: Any) -> str:
    if value is None:
        return _NULL
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, datetime.date):
        return value.isoformat()
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return (
            value.replace("\\", "\\\\")
            .replace("\t", "\\t")
            .replace("\n", "\\n")
        )
    return str(value)


def _read_rows(path: Path, table: Table) -> None:
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            values = [
                _deserialize(field, table.types[i])
                for i, field in enumerate(fields)
            ]
            table.rows.append(tuple(values))


def _deserialize(field: str, sql_type: Optional[SqlType]) -> Any:
    if field == _NULL:
        return None
    if sql_type is SqlType.INTEGER:
        return int(field)
    if sql_type is SqlType.REAL:
        return float(field)
    if sql_type is SqlType.DATE:
        return datetime.date.fromisoformat(field)
    if sql_type is SqlType.BOOLEAN:
        return field == "true"
    return (
        field.replace("\\n", "\n").replace("\\t", "\t").replace("\\\\", "\\")
    )
