"""Engine tuning options.

The defaults are what a production engine would do; the switches exist
so the ablation benchmarks (SYN-6) can quantify what each planner
feature buys the mining workload — e.g. how much of query Q4's cost
the hash join removes, or what the compiled expression closures save
over tree-walk interpretation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class EngineOptions:
    """Planner/executor feature switches."""

    #: use hash joins for equality conjuncts (else nested loops)
    hash_joins: bool = True
    #: push single-table WHERE conjuncts below joins
    filter_pushdown: bool = True
    #: lower planned expressions to Python closures with pre-resolved
    #: column slots (else tree-walk interpretation per row)
    compile_expressions: bool = True
    #: reuse physical SELECT plans across executions of the same parsed
    #: statement (invalidated whenever the catalog version changes)
    plan_cache: bool = True
    #: LRU capacity of the SQL-text -> parsed-statement cache
    statement_cache_size: int = 256
    #: LRU capacity of the plan cache
    plan_cache_size: int = 256
    #: physical layout for newly created tables: "row" (tuple list) or
    #: "columnar" (typed column vectors, see sqlengine/columnar.py);
    #: per-table overrides via Database.storage_hints
    storage: str = "row"
    #: rows per batch in the vectorized executor
    batch_size: int = 1024
    #: soft cap in bytes on executor working memory; when a sort/hash
    #: join/aggregate estimates its input above the budget it switches
    #: to the spilling out-of-core variant (None = never spill)
    memory_budget: Optional[int] = None
    #: run batch-at-a-time over column vectors when every plan node
    #: supports it and at least one scanned table is columnar (plans
    #: over row tables always use the row executor)
    vectorize: bool = True
