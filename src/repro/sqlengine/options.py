"""Engine tuning options.

The defaults are what a production engine would do; the switches exist
so the ablation benchmarks (SYN-6) can quantify what each planner
feature buys the mining workload — e.g. how much of query Q4's cost
the hash join removes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EngineOptions:
    """Planner/executor feature switches."""

    #: use hash joins for equality conjuncts (else nested loops)
    hash_joins: bool = True
    #: push single-table WHERE conjuncts below joins
    filter_pushdown: bool = True
