"""Row environments and the interpreted expression evaluator.

Evaluation follows SQL three-valued logic: comparisons against NULL
yield UNKNOWN (represented as ``None``), AND/OR/NOT combine truth
values per the standard tables, and WHERE/HAVING keep only rows whose
predicate is exactly TRUE.
"""

from __future__ import annotations

import datetime
import decimal
import functools
import math
import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.errors import CatalogError, ExecutionError, SqlTypeError
from repro.sqlengine.parser import AGGREGATE_NAMES
from repro.sqlengine.types import coerce, is_comparable

# ---------------------------------------------------------------------------
# Frames and environments
# ---------------------------------------------------------------------------


class Frame:
    """Compile-time schema of a row environment.

    A frame is an ordered list of *sources*; each source has a binding
    name (table alias, lowered; possibly ``None``) and a column list.
    At run time an :class:`Env` pairs a frame with one row tuple per
    source.
    """

    __slots__ = ("sources", "_by_qualified", "_by_name")

    def __init__(self, sources: Sequence[Tuple[Optional[str], Sequence[str]]]):
        self.sources: List[Tuple[Optional[str], Tuple[str, ...]]] = [
            (name.lower() if name else None, tuple(columns))
            for name, columns in sources
        ]
        self._by_qualified: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._by_name: Dict[str, List[Tuple[int, int]]] = {}
        for src_idx, (name, columns) in enumerate(self.sources):
            for col_idx, column in enumerate(columns):
                col_key = column.lower()
                if name is not None:
                    self._by_qualified.setdefault((name, col_key), (src_idx, col_idx))
                self._by_name.setdefault(col_key, []).append((src_idx, col_idx))

    @classmethod
    def single(cls, name: Optional[str], columns: Sequence[str]) -> "Frame":
        return cls([(name, columns)])

    def combine(self, other: "Frame") -> "Frame":
        return Frame(self.sources + other.sources)

    def lookup(self, qualifier: Optional[str], name: str) -> Optional[Tuple[int, int]]:
        """Resolve a column reference to (source index, column index).

        Returns ``None`` when the name is not visible in this frame
        (the caller then consults the parent environment).  Ambiguous
        unqualified names raise.
        """
        if qualifier is not None:
            return self._by_qualified.get((qualifier.lower(), name.lower()))
        hits = self._by_name.get(name.lower())
        if not hits:
            return None
        if len(hits) > 1:
            raise CatalogError(f"ambiguous column reference: {name!r}")
        return hits[0]

    def star_columns(self, qualifier: Optional[str]) -> List[Tuple[int, int, str]]:
        """Expand ``*`` / ``alias.*`` to (source, column, display name)."""
        out: List[Tuple[int, int, str]] = []
        for src_idx, (name, columns) in enumerate(self.sources):
            if qualifier is not None and name != qualifier.lower():
                continue
            for col_idx, column in enumerate(columns):
                out.append((src_idx, col_idx, column))
        if qualifier is not None and not out:
            raise CatalogError(f"unknown table alias in {qualifier}.*")
        return out

    @property
    def flat_columns(self) -> List[str]:
        return [c for _, columns in self.sources for c in columns]


class Env:
    """Run-time row environment: a frame plus one row per source, with
    an optional parent (for correlated subqueries) and optional group
    membership (for aggregate evaluation)."""

    __slots__ = ("frame", "rows", "parent", "group")

    def __init__(
        self,
        frame: Frame,
        rows: Sequence[Tuple[Any, ...]],
        parent: Optional["Env"] = None,
        group: Optional[List["Env"]] = None,
    ):
        self.frame = frame
        self.rows = rows
        self.parent = parent
        self.group = group

    def resolve(self, qualifier: Optional[str], name: str) -> Any:
        env: Optional[Env] = self
        while env is not None:
            hit = env.frame.lookup(qualifier, name)
            if hit is not None:
                src_idx, col_idx = hit
                return env.rows[src_idx][col_idx]
            env = env.parent
        target = f"{qualifier}.{name}" if qualifier else name
        raise CatalogError(f"unknown column reference: {target!r}")

    def child(self, frame: Frame, rows: Sequence[Tuple[Any, ...]]) -> "Env":
        return Env(frame, rows, parent=self)

    def with_group(self, group: List["Env"]) -> "Env":
        return Env(self.frame, self.rows, parent=self.parent, group=group)


# ---------------------------------------------------------------------------
# Three-valued logic helpers
# ---------------------------------------------------------------------------


def tvl_and(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def tvl_or(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def tvl_not(value: Optional[bool]) -> Optional[bool]:
    if value is None:
        return None
    return not value


def compare(op: str, left: Any, right: Any) -> Optional[bool]:
    """SQL comparison with NULL propagation and type checking."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) or isinstance(right, bool):
        # booleans compare as integers (SQL engines vary; we pick int)
        left = int(left) if isinstance(left, bool) else left
        right = int(right) if isinstance(right, bool) else right
    if not is_comparable(left, right):
        raise SqlTypeError(f"cannot compare {left!r} with {right!r}")
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise ExecutionError(f"unknown comparison operator {op!r}")


@functools.lru_cache(maxsize=512)
def _like_to_regex(
    pattern: str, escape: Optional[str] = None
) -> "re.Pattern[str]":
    """Translate a LIKE pattern (with optional ESCAPE character) to a
    compiled regex.  Cached: the translation programs replay the same
    patterns for every MINE RULE execution, and the interpreter path
    evaluates LIKE once per row."""
    out = []
    i, size = 0, len(pattern)
    while i < size:
        ch = pattern[i]
        if escape is not None and ch == escape:
            if i + 1 >= size:
                raise ExecutionError(
                    "LIKE pattern ends with its escape character"
                )
            follower = pattern[i + 1]
            if follower not in ("%", "_", escape):
                raise ExecutionError(
                    f"invalid LIKE escape sequence {ch + follower!r}: "
                    f"the escape character must precede %, _ or itself"
                )
            out.append(re.escape(follower))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _escape_char(value: Any) -> str:
    """Validate a LIKE ESCAPE operand: exactly one character."""
    if not isinstance(value, str) or len(value) != 1:
        raise ExecutionError(
            f"LIKE ESCAPE must be a single character, got {value!r}"
        )
    return value


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


def _fn_substr(args: List[Any]) -> Any:
    """Oracle-flavour SUBSTR: positions are 1-based, 0 counts as 1, a
    negative start counts back from the end of the string, and a start
    beyond either end — or a length below 1 — yields NULL."""
    if any(a is None for a in args):
        return None
    string = args[0]
    if not isinstance(string, str):
        raise SqlTypeError(f"SUBSTR requires a string, got {string!r}")
    start = int(args[1])
    length = int(args[2]) if len(args) > 2 else None
    size = len(string)
    if start > 0:
        begin = start - 1
    elif start == 0:
        begin = 0
    else:
        begin = size + start
        if begin < 0:
            return None
    if begin >= size:
        return None
    if length is None:
        return string[begin:]
    if length < 1:
        return None
    return string[begin : begin + length]


def _sql_round(x: Any, n: Any = 0) -> Any:
    """ROUND with SQL semantics: decimal, half away from zero (Python's
    ``round`` rounds half to even and works on binary floats, so
    ``round(2.5) == 2`` and ``round(2.675, 2) == 2.67``)."""
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise SqlTypeError(f"ROUND requires a numeric argument, got {x!r}")
    if isinstance(x, float) and not math.isfinite(x):
        return x
    digits = int(n)
    quantum = decimal.Decimal(1).scaleb(-digits)
    value = decimal.Decimal(str(x)).quantize(
        quantum, rounding=decimal.ROUND_HALF_UP
    )
    return int(value) if isinstance(x, int) else float(value)


def _sql_mod(a: Any, b: Any) -> Any:
    """MOD with SQL semantics: the result takes the dividend's sign
    (``MOD(-7, 3) = -1``), unlike Python's floored ``%`` which takes
    the divisor's; Oracle additionally defines ``MOD(n, 0) = n``."""
    for operand in (a, b):
        if isinstance(operand, bool) or not isinstance(operand, (int, float)):
            raise SqlTypeError(
                f"MOD requires numeric arguments, got {operand!r}"
            )
    if b == 0:
        return a
    return _dividend_sign_mod(a, b)


def _dividend_sign_mod(a: Any, b: Any) -> Any:
    if isinstance(a, int) and isinstance(b, int):
        remainder = abs(a) % abs(b)
        return -remainder if a < 0 else remainder
    return math.fmod(a, b)


def _null_through(fn: Callable[..., Any]) -> Callable[[List[Any]], Any]:
    def wrapped(args: List[Any]) -> Any:
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


def _date_part(getter: Callable[[datetime.date], int]) -> Callable:
    def fn(args: List[Any]) -> Any:
        if args[0] is None:
            return None
        value = args[0]
        if not isinstance(value, datetime.date):
            raise SqlTypeError(f"expected a DATE, got {value!r}")
        return getter(value)

    return fn


SCALAR_FUNCTIONS: Dict[str, Callable[[List[Any]], Any]] = {
    "YEAR": _date_part(lambda d: d.year),
    "MONTH": _date_part(lambda d: d.month),
    "DAY": _date_part(lambda d: d.day),
    "WEEKDAY": _date_part(lambda d: d.weekday()),
    "UPPER": _null_through(lambda s: s.upper()),
    "LOWER": _null_through(lambda s: s.lower()),
    "LENGTH": _null_through(len),
    "TRIM": _null_through(lambda s: s.strip()),
    "ABS": _null_through(abs),
    "ROUND": _null_through(_sql_round),
    "FLOOR": _null_through(lambda x: int(math.floor(x))),
    "CEIL": _null_through(lambda x: int(math.ceil(x))),
    "CEILING": _null_through(lambda x: int(math.ceil(x))),
    "MOD": _null_through(_sql_mod),
    "POWER": _null_through(lambda a, b: a ** b),
    "SQRT": _null_through(math.sqrt),
    "SUBSTR": _fn_substr,
    "SUBSTRING": _fn_substr,
    "SIGN": _null_through(lambda x: (x > 0) - (x < 0)),
}


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


class Evaluator:
    """Interprets AST expressions against row environments.

    The evaluator needs the database for subqueries and sequences, and
    the host-variable bindings of the current statement.
    """

    def __init__(self, database: "Any", params: Optional[Dict[str, Any]] = None):
        self._db = database

    @property
    def _params(self) -> Dict[str, Any]:
        # Host variables live in the database's *thread-local* binding:
        # evaluators are cached inside plans and shared by every thread
        # executing that plan, so each lookup must resolve against the
        # statement currently running on *this* thread.
        return self._db._params

    # -- public API --------------------------------------------------------

    def eval(self, expr: ast.Expression, env: Optional[Env]) -> Any:
        method = self._DISPATCH.get(type(expr))
        if method is None:
            raise ExecutionError(f"cannot evaluate expression node {expr!r}")
        return method(self, expr, env)

    def eval_predicate(self, expr: ast.Expression, env: Optional[Env]) -> bool:
        """Evaluate as a WHERE/HAVING predicate: only TRUE passes."""
        return self.eval(expr, env) is True

    def contains_aggregate(self, expr: ast.Expression) -> bool:
        for node in ast.walk_expression(expr):
            if isinstance(node, ast.FunctionCall) and (
                node.name in AGGREGATE_NAMES or node.star
            ):
                return True
        return False

    # -- node handlers -------------------------------------------------------

    def _literal(self, expr: ast.Literal, env: Optional[Env]) -> Any:
        return expr.value

    def _hostvar(self, expr: ast.HostVar, env: Optional[Env]) -> Any:
        try:
            return self._params[expr.name]
        except KeyError:
            raise ExecutionError(f"unbound host variable :{expr.name}") from None

    def _column(self, expr: ast.ColumnRef, env: Optional[Env]) -> Any:
        if env is None:
            raise ExecutionError(f"column reference {expr} outside row context")
        return env.resolve(expr.qualifier, expr.name)

    def _nextval(self, expr: ast.SequenceNextval, env: Optional[Env]) -> Any:
        return self._db.catalog.get_sequence(expr.sequence).nextval()

    def _binary(self, expr: ast.BinaryOp, env: Optional[Env]) -> Any:
        op = expr.op
        if op == "AND":
            left = self._as_truth(self.eval(expr.left, env))
            if left is False:
                return False
            return tvl_and(left, self._as_truth(self.eval(expr.right, env)))
        if op == "OR":
            left = self._as_truth(self.eval(expr.left, env))
            if left is True:
                return True
            return tvl_or(left, self._as_truth(self.eval(expr.right, env)))
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if op in ("=", "<>", "<", "<=", ">", ">="):
            return compare(op, left, right)
        if left is None or right is None:
            return None
        if op == "||":
            return _to_str(left) + _to_str(right)
        return _arith(op, left, right)

    def _unary(self, expr: ast.UnaryOp, env: Optional[Env]) -> Any:
        value = self.eval(expr.operand, env)
        if expr.op == "NOT":
            return tvl_not(self._as_truth(value))
        if value is None:
            return None
        if expr.op == "-":
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SqlTypeError(f"cannot negate {value!r}")
            return -value
        raise ExecutionError(f"unknown unary operator {expr.op!r}")

    def _function(self, expr: ast.FunctionCall, env: Optional[Env]) -> Any:
        if expr.name in AGGREGATE_NAMES or expr.star:
            return self._aggregate(expr, env)
        if expr.name in ("COALESCE",):
            for arg in expr.args:
                value = self.eval(arg, env)
                if value is not None:
                    return value
            return None
        if expr.name == "NULLIF":
            if len(expr.args) != 2:
                raise ExecutionError("NULLIF takes two arguments")
            first = self.eval(expr.args[0], env)
            second = self.eval(expr.args[1], env)
            return None if compare("=", first, second) is True else first
        fn = SCALAR_FUNCTIONS.get(expr.name)
        if fn is None:
            raise ExecutionError(f"unknown function {expr.name!r}")
        return fn([self.eval(arg, env) for arg in expr.args])

    def _aggregate(self, expr: ast.FunctionCall, env: Optional[Env]) -> Any:
        # The group may live on an ancestor env (e.g. ORDER BY SUM(x)
        # is evaluated in a projection env whose parent is the group).
        scope = env
        while scope is not None and scope.group is None:
            scope = scope.parent
        if scope is None:
            raise ExecutionError(
                f"aggregate {expr.name} used outside GROUP BY context"
            )
        group = scope.group
        if expr.star:
            if expr.name != "COUNT":
                raise ExecutionError(f"{expr.name}(*) is not valid")
            return len(group)
        if len(expr.args) != 1:
            raise ExecutionError(f"{expr.name} takes exactly one argument")
        arg = expr.args[0]
        values = [self.eval(arg, member) for member in group]
        values = [v for v in values if v is not None]
        if expr.distinct:
            values = _distinct_values(values)
        if expr.name == "COUNT":
            return len(values)
        if not values:
            return None
        if expr.name == "SUM":
            return sum(values)
        if expr.name == "AVG":
            return sum(values) / len(values)
        if expr.name == "MIN":
            return min(values)
        if expr.name == "MAX":
            return max(values)
        raise ExecutionError(f"unknown aggregate {expr.name!r}")

    def _between(self, expr: ast.Between, env: Optional[Env]) -> Any:
        value = self.eval(expr.expr, env)
        low = self.eval(expr.low, env)
        high = self.eval(expr.high, env)
        result = tvl_and(compare(">=", value, low), compare("<=", value, high))
        return tvl_not(result) if expr.negated else result

    def _in_list(self, expr: ast.InList, env: Optional[Env]) -> Any:
        value = self.eval(expr.expr, env)
        found = False
        saw_null = False
        for item in expr.items:
            result = compare("=", value, self.eval(item, env))
            if result is True:
                found = True
                break
            if result is None:
                saw_null = True
        result3: Optional[bool] = True if found else (None if saw_null else False)
        return tvl_not(result3) if expr.negated else result3

    def _in_subquery(self, expr: ast.InSubquery, env: Optional[Env]) -> Any:
        value = self.eval(expr.expr, env)
        rows = self._db._run_subquery(expr.subquery, self._params, env)
        found = False
        saw_null = False
        for row in rows:
            if len(row) != 1:
                raise ExecutionError("IN subquery must return one column")
            result = compare("=", value, row[0])
            if result is True:
                found = True
                break
            if result is None:
                saw_null = True
        result3: Optional[bool] = True if found else (None if saw_null else False)
        return tvl_not(result3) if expr.negated else result3

    def _exists(self, expr: ast.Exists, env: Optional[Env]) -> Any:
        rows = self._db._run_subquery(expr.subquery, self._params, env, limit_one=True)
        result = len(rows) > 0
        return not result if expr.negated else result

    def _like(self, expr: ast.Like, env: Optional[Env]) -> Any:
        value = self.eval(expr.expr, env)
        pattern = self.eval(expr.pattern, env)
        if value is None or pattern is None:
            return None
        if not isinstance(value, str) or not isinstance(pattern, str):
            raise SqlTypeError("LIKE requires string operands")
        escape: Optional[str] = None
        if expr.escape is not None:
            escape_value = self.eval(expr.escape, env)
            if escape_value is None:
                return None
            escape = _escape_char(escape_value)
        result = bool(_like_to_regex(pattern, escape).match(value))
        return not result if expr.negated else result

    def _is_null(self, expr: ast.IsNull, env: Optional[Env]) -> Any:
        value = self.eval(expr.expr, env)
        result = value is None
        return not result if expr.negated else result

    def _case(self, expr: ast.Case, env: Optional[Env]) -> Any:
        if expr.operand is not None:
            operand = self.eval(expr.operand, env)
            for cond, result in expr.whens:
                if compare("=", operand, self.eval(cond, env)) is True:
                    return self.eval(result, env)
        else:
            for cond, result in expr.whens:
                if self.eval(cond, env) is True:
                    return self.eval(result, env)
        return self.eval(expr.else_, env) if expr.else_ is not None else None

    def _cast(self, expr: ast.Cast, env: Optional[Env]) -> Any:
        value = self.eval(expr.expr, env)
        if value is None:
            return None
        # CAST is more lenient than assignment coercion.
        from repro.sqlengine.types import SqlType

        if expr.target is SqlType.VARCHAR:
            return _to_str(value)
        if expr.target is SqlType.INTEGER:
            return int(value)
        if expr.target is SqlType.REAL:
            return float(value)
        return coerce(value, expr.target)

    def _scalar_subquery(self, expr: ast.ScalarSubquery, env: Optional[Env]) -> Any:
        rows = self._db._run_subquery(expr.select, self._params, env)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return one column")
        return rows[0][0]

    def _tuple(self, expr: ast.TupleExpr, env: Optional[Env]) -> Any:
        return tuple(self.eval(item, env) for item in expr.items)

    def _star(self, expr: ast.Star, env: Optional[Env]) -> Any:
        raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _as_truth(value: Any) -> Optional[bool]:
        if value is None:
            return None
        if isinstance(value, bool):
            return value
        raise SqlTypeError(f"expected a boolean condition, got {value!r}")

    _DISPATCH: Dict[type, Callable[..., Any]] = {}


Evaluator._DISPATCH = {
    ast.Literal: Evaluator._literal,
    ast.HostVar: Evaluator._hostvar,
    ast.ColumnRef: Evaluator._column,
    ast.SequenceNextval: Evaluator._nextval,
    ast.BinaryOp: Evaluator._binary,
    ast.UnaryOp: Evaluator._unary,
    ast.FunctionCall: Evaluator._function,
    ast.Between: Evaluator._between,
    ast.InList: Evaluator._in_list,
    ast.InSubquery: Evaluator._in_subquery,
    ast.Exists: Evaluator._exists,
    ast.Like: Evaluator._like,
    ast.IsNull: Evaluator._is_null,
    ast.Case: Evaluator._case,
    ast.Cast: Evaluator._cast,
    ast.ScalarSubquery: Evaluator._scalar_subquery,
    ast.TupleExpr: Evaluator._tuple,
    ast.Star: Evaluator._star,
}


def _to_str(value: Any) -> str:
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)


def _arith(op: str, left: Any, right: Any) -> Any:
    for operand in (left, right):
        if not isinstance(operand, (int, float)) or isinstance(operand, bool):
            if isinstance(operand, datetime.date) and op in ("-",):
                continue
            raise SqlTypeError(f"arithmetic on non-numeric value {operand!r}")
    if op == "+":
        return left + right
    if op == "-":
        if isinstance(left, datetime.date) and isinstance(right, datetime.date):
            return (left - right).days
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExecutionError("division by zero")
        # Oracle semantics: '/' is exact division (the paper's support
        # ratios COUNT(*) / :totg rely on this).
        return left / right
    if op == "%":
        if right == 0:
            raise ExecutionError("division by zero")
        # SQL remainder takes the dividend's sign, matching MOD().
        return _dividend_sign_mod(left, right)
    raise ExecutionError(f"unknown operator {op!r}")


def _distinct_values(values: List[Any]) -> List[Any]:
    """Order-preserving dedup for DISTINCT aggregates: hash-based for
    hashable values, linear scan only for the unhashable remainder.
    Both paths deduplicate by ``==``, so the semantics match the old
    full-list scan without its quadratic cost."""
    seen: set = set()
    unhashable: List[Any] = []
    unique: List[Any] = []
    for v in values:
        try:
            if v in seen:
                continue
            seen.add(v)
        except TypeError:
            if any(v == u for u in unhashable):
                continue
            unhashable.append(v)
        unique.append(v)
    return unique
