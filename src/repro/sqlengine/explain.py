"""EXPLAIN and EXPLAIN ANALYZE: render the physical plan of a SELECT.

The translator and benchmarks use this to document which plan shapes
back the generated queries Q0..Q11 (e.g. that query Q4 runs as a
pipeline of two hash joins).  The output is a stable, indented tree::

    Project [distinct] (Gid, Bid) [compiled]
      HashJoin keys=[S.item = B.item] [compiled]
        HashJoin keys=[S.customer = V.customer] [compiled]
          Scan MR_Source as S
          Scan MR_ValidGroups as V
        Scan MR_Bset as B

Nodes whose expressions were lowered to closures by
:mod:`repro.sqlengine.compiler` carry a ``[compiled]`` suffix;
anything without it runs through the tree-walking interpreter.
EXPLAIN goes through the same statement/plan caches as execution, so
explaining a hot query is itself cheap.

EXPLAIN ANALYZE additionally *executes* the statement once with every
operator's row stream instrumented, annotating each node with actual
rows produced, loop count (how many times the operator was opened) and
inclusive wall time::

    HashJoin keys=[...] [compiled] (actual rows=57 loops=1 time=0.41 ms)

Instrumentation works by shadowing each operator instance's ``envs``
method with a counting generator for the duration of one statement
(:class:`AnalyzeCollector`), so the un-analyzed execution path carries
zero residue.  Side-effecting statements (CTAS, INSERT .. SELECT) run
exactly once — the analysis rides along the real execution.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.operators import (
    Filter,
    GroupAggregate,
    HashJoin,
    IndexLookup,
    LeftOuterHashJoin,
    NestedLoopJoin,
    Operator,
    RowsSource,
    TableScan,
)
from repro.sqlengine.planner import conjoin, plan_operators
from repro.sqlengine.render import render_expr

#: annotation callback: operator (or None for synthetic lines) -> suffix
Annotator = Callable[[Optional[Operator]], str]


def _no_annotation(op: Optional[Operator]) -> str:
    return ""


def _mark(compiled: bool) -> str:
    return " [compiled]" if compiled else ""


def explain(database: Any, sql: str, params: Optional[dict] = None) -> str:
    """Plan *sql* (a SELECT) and return the plan tree as text."""
    statement = database._parse_statement(sql)
    if not isinstance(statement, ast.Select):
        return f"{type(statement).__name__} (no plan: executed directly)"
    merged = dict(database.variables)
    if params:
        merged.update(params)
    database._params = merged
    plan = database._select_plan(statement)
    return render_plan(statement, plan)


def render_plan(
    statement: ast.Select,
    plan: Any,
    annotate: Annotator = _no_annotation,
    indent: int = 0,
) -> str:
    """Render one planned SELECT as an indented tree, suffixing every
    line *annotate* has something to say about."""
    lines: List[str] = []
    project_compiled = plan.projector is not None and plan.projector.compiled
    lines.append(
        "  " * indent
        + _projection_line(statement)
        + _mark(project_compiled)
        + annotate(None)
    )
    indent += 1
    if statement.order_by:
        lines.append("  " * indent + f"Sort ({len(statement.order_by)} keys)")
        indent += 1
    if (
        statement.group_by
        or statement.having is not None
        or isinstance(plan.source, GroupAggregate)
    ):
        having = (
            f" having={render_expr(statement.having)}"
            if statement.having is not None
            else ""
        )
        keys = ", ".join(render_expr(e) for e in statement.group_by) or "<all>"
        aggregate = (
            plan.source if isinstance(plan.source, GroupAggregate) else None
        )
        aggregate_compiled = aggregate is not None and aggregate.compiled
        lines.append(
            "  " * indent
            + f"Aggregate keys=({keys}){having}"
            + _mark(aggregate_compiled)
            + annotate(aggregate)
        )
        indent += 1
    residual = conjoin(plan.leftovers)
    if residual is not None:
        filter_op: Optional[Operator] = None
        if plan.predicate is not None:
            filter_compiled = plan.predicate.compiled
        elif isinstance(plan.source, GroupAggregate) and isinstance(
            plan.source.child, Filter
        ):
            filter_op = plan.source.child
            filter_compiled = plan.source.child.compiled
        else:
            filter_compiled = False
        lines.append(
            "  " * indent
            + f"Filter {render_expr(residual)}"
            + _mark(filter_compiled)
            + annotate(filter_op)
        )
        indent += 1
    if plan.root is None:
        lines.append("  " * indent + "SingleRow")
    else:
        _render_operator(plan.root, indent, lines, annotate)
    return "\n".join(lines)


def _projection_line(statement: ast.Select) -> str:
    flags = " [distinct]" if statement.distinct else ""
    items = []
    for item in statement.items:
        if isinstance(item.expr, ast.Star):
            items.append(
                f"{item.expr.qualifier}.*" if item.expr.qualifier else "*"
            )
        else:
            items.append(item.alias or render_expr(item.expr))
    return f"Project{flags} ({', '.join(items)})"


def _render_operator(
    op: Operator,
    indent: int,
    lines: List[str],
    annotate: Annotator = _no_annotation,
) -> None:
    pad = "  " * indent
    mark = _mark(getattr(op, "compiled", False))
    suffix = annotate(op)
    if isinstance(op, TableScan):
        alias = f" as {op.binding}" if op.binding != op.table.name else ""
        lines.append(f"{pad}Scan {op.table.name}{alias} "
                     f"({len(op.table)} rows){suffix}")
    elif isinstance(op, IndexLookup):
        keys = ", ".join(
            f"{column} = {render_expr(expr)}"
            for column, expr in zip(op.index.columns, op.key_exprs)
        )
        lines.append(
            f"{pad}IndexLookup {op.table.name}.{op.index.name} "
            f"[{keys}]{mark}{suffix}"
        )
    elif isinstance(op, RowsSource):
        name = op.frame.sources[0][0] or "<derived>"
        lines.append(f"{pad}Materialized {name} ({len(op.rows)} rows){suffix}")
    elif isinstance(op, Filter):
        lines.append(f"{pad}Filter {render_expr(op.predicate)}{mark}{suffix}")
        _render_operator(op.child, indent + 1, lines, annotate)
    elif isinstance(op, LeftOuterHashJoin):
        lines.append(f"{pad}LeftOuterHashJoin {_join_detail(op)}{mark}{suffix}")
        _render_operator(op.left, indent + 1, lines, annotate)
        _render_operator(op.right, indent + 1, lines, annotate)
    elif isinstance(op, HashJoin):
        lines.append(f"{pad}HashJoin {_join_detail(op)}{mark}{suffix}")
        _render_operator(op.left, indent + 1, lines, annotate)
        _render_operator(op.right, indent + 1, lines, annotate)
    elif isinstance(op, NestedLoopJoin):
        predicate = (
            f" on {render_expr(op.predicate)}" if op.predicate is not None
            else ""
        )
        lines.append(f"{pad}NestedLoopJoin{predicate}{mark}{suffix}")
        _render_operator(op.left, indent + 1, lines, annotate)
        _render_operator(op.right, indent + 1, lines, annotate)
    elif isinstance(op, GroupAggregate):
        keys = ", ".join(render_expr(k) for k in op.keys) or "<all>"
        lines.append(f"{pad}Aggregate keys=({keys}){mark}{suffix}")
        _render_operator(op.child, indent + 1, lines, annotate)
    else:  # pragma: no cover - future operators
        lines.append(f"{pad}{type(op).__name__}{suffix}")


def _join_detail(op) -> str:
    keys = ", ".join(
        f"{render_expr(lk)} = {render_expr(rk)}"
        for lk, rk in zip(op.left_keys, op.right_keys)
    )
    detail = f"keys=[{keys}]" if keys else "keys=[] (cross)"
    if op.residual is not None:
        detail += f" residual={render_expr(op.residual)}"
    return detail


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE
# ---------------------------------------------------------------------------


class NodeStats:
    """Actual execution counters of one plan node."""

    __slots__ = ("rows", "loops", "seconds")

    def __init__(self) -> None:
        self.rows = 0
        self.loops = 0
        self.seconds = 0.0


class AnalyzeCollector:
    """Per-statement operator instrumentation.

    The engine installs a collector on itself for the duration of one
    statement; ``_run_select_core`` calls :meth:`attach` with every
    plan it executes (including subquery plans), and the collector
    shadows each operator instance's ``envs`` with a generator that
    counts loops and produced rows and accumulates inclusive wall
    time.  :meth:`detach` removes every shadow, restoring the class
    method, so nothing leaks into later executions of a cached plan.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        #: plans in attach order; the statement's own SELECT comes
        #: first, subquery/derived-table plans follow
        self.plans: List[Any] = []
        self.stats: Dict[int, NodeStats] = {}
        #: vectorized-execution extras per node: batches processed and
        #: bytes spilled to disk (out-of-core operators)
        self.vector: Dict[int, Dict[str, int]] = {}
        self._wrapped: List[Operator] = []

    def attach(self, plan: Any) -> None:
        if not any(existing is plan for existing in self.plans):
            self.plans.append(plan)
        for op in plan_operators(plan.source):
            if "envs" not in op.__dict__:
                self._wrap(op)

    def _wrap(self, op: Operator) -> None:
        stats = self.stats.setdefault(id(op), NodeStats())
        original = op.envs
        clock = self._clock

        def instrumented(parent=None):
            stats.loops += 1
            started = clock()
            iterator = original(parent)
            while True:
                try:
                    env = next(iterator)
                except StopIteration:
                    stats.seconds += clock() - started
                    return
                stats.seconds += clock() - started
                stats.rows += 1
                yield env
                started = clock()

        op.envs = instrumented  # type: ignore[method-assign]
        self._wrapped.append(op)

    def detach(self) -> None:
        for op in self._wrapped:
            op.__dict__.pop("envs", None)
        self._wrapped.clear()

    # -- vectorized execution -------------------------------------------

    def record_vector(
        self, op: Operator, rows: int, batches: int, spill_bytes: int,
        seconds: float,
    ) -> None:
        """One vector node finished: it mirrors row operator *op* and
        reports into the same EXPLAIN ANALYZE slot (``envs`` is never
        pulled on the vector path, so the shadow stays silent)."""
        stats = self.stats.setdefault(id(op), NodeStats())
        stats.rows += rows
        stats.loops += 1
        stats.seconds += seconds
        info = self.vector.setdefault(
            id(op), {"batches": 0, "spill_bytes": 0}
        )
        info["batches"] += batches
        info["spill_bytes"] += spill_bytes

    def add_vector_spill(self, op: Operator, nbytes: int) -> None:
        """Attribute external-sort spill to the plan's source node (the
        sort has no operator of its own in the physical tree)."""
        info = self.vector.setdefault(
            id(op), {"batches": 0, "spill_bytes": 0}
        )
        info["spill_bytes"] += nbytes

    # -- reporting ------------------------------------------------------

    def annotator(self) -> Annotator:
        def annotate(op: Optional[Operator]) -> str:
            if op is None:
                return ""
            stats = self.stats.get(id(op))
            if stats is None:
                return ""
            text = (
                f" (actual rows={stats.rows} loops={stats.loops} "
                f"time={stats.seconds * 1000:.3f} ms)"
            )
            info = self.vector.get(id(op))
            if info is not None:
                batches = info["batches"]
                per_batch = round(stats.rows / batches) if batches else 0
                text += (
                    f" [vectorized batches={batches} "
                    f"rows/batch={per_batch} "
                    f"spill={info['spill_bytes']} B]"
                )
            return text

        return annotate

    def nodes(self) -> List[Dict[str, Any]]:
        """Structured per-node stats, plan by plan in walk order."""
        out: List[Dict[str, Any]] = []
        for plan_index, plan in enumerate(self.plans):
            for op in plan_operators(plan.source):
                stats = self.stats.get(id(op))
                if stats is None:
                    continue
                entry = {
                    "plan": plan_index,
                    "operator": type(op).__name__,
                    "rows": stats.rows,
                    "loops": stats.loops,
                    "seconds": stats.seconds,
                }
                info = self.vector.get(id(op))
                if info is not None:
                    entry["vectorized"] = True
                    entry["batches"] = info["batches"]
                    entry["spill_bytes"] = info["spill_bytes"]
                out.append(entry)
        return out


class AnalyzeResult:
    """Outcome of one EXPLAIN ANALYZE run: the annotated plan text,
    structured node stats, and the statement's real result."""

    __slots__ = (
        "statement", "result", "text", "nodes", "seconds", "cpu_seconds"
    )

    def __init__(
        self, statement, result, text, nodes, seconds, cpu_seconds=None
    ):
        self.statement = statement
        self.result = result
        self.text = text
        self.nodes = nodes
        self.seconds = seconds
        #: process CPU consumed by the execution (user + system)
        self.cpu_seconds = cpu_seconds

    @property
    def rowcount(self) -> int:
        if self.result.columns:
            return len(self.result.rows)
        return self.result.rowcount


def analyze_statement(
    database: Any, sql: str, params: Optional[dict] = None
) -> AnalyzeResult:
    """Execute *sql* once with operator instrumentation and return the
    annotated plan plus the statement's result."""
    statement = database._parse_statement(sql)
    collector = AnalyzeCollector()
    database._analyze = collector
    started = time.perf_counter()
    cpu_started = time.process_time()
    try:
        result = database.execute_ast(statement, params)
    finally:
        database._analyze = None
        collector.detach()
    seconds = time.perf_counter() - started
    cpu_seconds = time.process_time() - cpu_started
    text = _render_analyzed(
        statement, collector, result, seconds, cpu_seconds
    )
    return AnalyzeResult(
        statement, result, text, collector.nodes(), seconds, cpu_seconds
    )


def _render_analyzed(
    statement: ast.Statement,
    collector: AnalyzeCollector,
    result: Any,
    seconds: float,
    cpu_seconds: Optional[float] = None,
) -> str:
    annotate = collector.annotator()
    lines: List[str] = []
    if not isinstance(statement, ast.Select):
        lines.append(f"{type(statement).__name__}")
    if not collector.plans:
        lines.append("(no plan: executed directly)")
    for index, plan in enumerate(collector.plans):
        if index:
            lines.append("-- subplan --")
        lines.append(
            render_plan(
                plan.select,
                plan,
                annotate,
                indent=1 if not isinstance(statement, ast.Select) else 0,
            )
        )
    rowcount = (
        len(result.rows) if result.columns else result.rowcount
    )
    cpu = (
        f" (cpu {cpu_seconds * 1000:.3f} ms)"
        if cpu_seconds is not None
        else ""
    )
    lines.append(
        f"Execution: {rowcount} rows in {seconds * 1000:.3f} ms{cpu}"
    )
    return "\n".join(lines)
