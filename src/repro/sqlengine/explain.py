"""EXPLAIN: render the physical plan of a SELECT statement.

The translator and benchmarks use this to document which plan shapes
back the generated queries Q0..Q11 (e.g. that query Q4 runs as a
pipeline of two hash joins).  The output is a stable, indented tree::

    Project [distinct] (Gid, Bid) [compiled]
      HashJoin keys=[S.item = B.item] [compiled]
        HashJoin keys=[S.customer = V.customer] [compiled]
          Scan MR_Source as S
          Scan MR_ValidGroups as V
        Scan MR_Bset as B

Nodes whose expressions were lowered to closures by
:mod:`repro.sqlengine.compiler` carry a ``[compiled]`` suffix;
anything without it runs through the tree-walking interpreter.
EXPLAIN goes through the same statement/plan caches as execution, so
explaining a hot query is itself cheap.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.operators import (
    Filter,
    GroupAggregate,
    HashJoin,
    IndexLookup,
    LeftOuterHashJoin,
    NestedLoopJoin,
    Operator,
    RowsSource,
    TableScan,
)
from repro.sqlengine.planner import conjoin
from repro.sqlengine.render import render_expr


def _mark(compiled: bool) -> str:
    return " [compiled]" if compiled else ""


def explain(database: Any, sql: str, params: Optional[dict] = None) -> str:
    """Plan *sql* (a SELECT) and return the plan tree as text."""
    statement = database._parse_statement(sql)
    if not isinstance(statement, ast.Select):
        return f"{type(statement).__name__} (no plan: executed directly)"
    merged = dict(database.variables)
    if params:
        merged.update(params)
    database._params = merged
    plan = database._select_plan(statement)

    lines: List[str] = []
    project_compiled = plan.projector is not None and plan.projector.compiled
    lines.append(_projection_line(statement) + _mark(project_compiled))
    indent = 1
    if statement.order_by:
        lines.append("  " * indent + f"Sort ({len(statement.order_by)} keys)")
        indent += 1
    if statement.group_by or statement.having is not None:
        having = (
            f" having={render_expr(statement.having)}"
            if statement.having is not None
            else ""
        )
        keys = ", ".join(render_expr(e) for e in statement.group_by) or "<all>"
        aggregate_compiled = isinstance(
            plan.source, GroupAggregate
        ) and plan.source.compiled
        lines.append(
            "  " * indent
            + f"Aggregate keys=({keys}){having}"
            + _mark(aggregate_compiled)
        )
        indent += 1
    residual = conjoin(plan.leftovers)
    if residual is not None:
        if plan.predicate is not None:
            filter_compiled = plan.predicate.compiled
        elif isinstance(plan.source, GroupAggregate) and isinstance(
            plan.source.child, Filter
        ):
            filter_compiled = plan.source.child.compiled
        else:
            filter_compiled = False
        lines.append(
            "  " * indent
            + f"Filter {render_expr(residual)}"
            + _mark(filter_compiled)
        )
        indent += 1
    if plan.root is None:
        lines.append("  " * indent + "SingleRow")
    else:
        _render_operator(plan.root, indent, lines)
    return "\n".join(lines)


def _projection_line(statement: ast.Select) -> str:
    flags = " [distinct]" if statement.distinct else ""
    items = []
    for item in statement.items:
        if isinstance(item.expr, ast.Star):
            items.append(
                f"{item.expr.qualifier}.*" if item.expr.qualifier else "*"
            )
        else:
            items.append(item.alias or render_expr(item.expr))
    return f"Project{flags} ({', '.join(items)})"


def _render_operator(op: Operator, indent: int, lines: List[str]) -> None:
    pad = "  " * indent
    mark = _mark(getattr(op, "compiled", False))
    if isinstance(op, TableScan):
        alias = f" as {op.binding}" if op.binding != op.table.name else ""
        lines.append(f"{pad}Scan {op.table.name}{alias} "
                     f"({len(op.table)} rows)")
    elif isinstance(op, IndexLookup):
        keys = ", ".join(
            f"{column} = {render_expr(expr)}"
            for column, expr in zip(op.index.columns, op.key_exprs)
        )
        lines.append(
            f"{pad}IndexLookup {op.table.name}.{op.index.name} [{keys}]{mark}"
        )
    elif isinstance(op, RowsSource):
        name = op.frame.sources[0][0] or "<derived>"
        lines.append(f"{pad}Materialized {name} ({len(op.rows)} rows)")
    elif isinstance(op, Filter):
        lines.append(f"{pad}Filter {render_expr(op.predicate)}{mark}")
        _render_operator(op.child, indent + 1, lines)
    elif isinstance(op, LeftOuterHashJoin):
        lines.append(f"{pad}LeftOuterHashJoin {_join_detail(op)}{mark}")
        _render_operator(op.left, indent + 1, lines)
        _render_operator(op.right, indent + 1, lines)
    elif isinstance(op, HashJoin):
        lines.append(f"{pad}HashJoin {_join_detail(op)}{mark}")
        _render_operator(op.left, indent + 1, lines)
        _render_operator(op.right, indent + 1, lines)
    elif isinstance(op, NestedLoopJoin):
        predicate = (
            f" on {render_expr(op.predicate)}" if op.predicate is not None
            else ""
        )
        lines.append(f"{pad}NestedLoopJoin{predicate}{mark}")
        _render_operator(op.left, indent + 1, lines)
        _render_operator(op.right, indent + 1, lines)
    elif isinstance(op, GroupAggregate):
        keys = ", ".join(render_expr(k) for k in op.keys) or "<all>"
        lines.append(f"{pad}Aggregate keys=({keys}){mark}")
        _render_operator(op.child, indent + 1, lines)
    else:  # pragma: no cover - future operators
        lines.append(f"{pad}{type(op).__name__}")


def _join_detail(op) -> str:
    keys = ", ".join(
        f"{render_expr(lk)} = {render_expr(rk)}"
        for lk, rk in zip(op.left_keys, op.right_keys)
    )
    detail = f"keys=[{keys}]" if keys else "keys=[] (cross)"
    if op.residual is not None:
        detail += f" residual={render_expr(op.residual)}"
    return detail
