"""Exception hierarchy for the SQL engine.

Every error raised by the engine derives from :class:`SqlError`, so
callers (notably the mining kernel) can catch one type at the system
boundary while still discriminating parse, catalog, type and execution
failures when useful.
"""

from __future__ import annotations


class SqlError(Exception):
    """Base class for all SQL engine errors."""


class SqlParseError(SqlError):
    """A statement could not be tokenized or parsed.

    Carries the offending position so interactive tools can point at it.
    """

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line

    def __str__(self) -> str:
        base = super().__str__()
        if self.line >= 0:
            return f"{base} (line {self.line})"
        return base


class CatalogError(SqlError):
    """A referenced table, view, sequence or column does not exist,
    or an object is being created with a name already in use."""


class SqlTypeError(SqlError):
    """Values of incompatible types were combined in an expression."""


class ExecutionError(SqlError):
    """A statement failed during evaluation (e.g. arity mismatch on
    INSERT, scalar subquery returning several rows, division by zero)."""
