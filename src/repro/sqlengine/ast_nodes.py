"""Abstract syntax tree for the SQL dialect.

Plain frozen dataclasses; the parser builds them and the planner /
evaluator consume them.  Expression nodes and statement nodes share the
module because several statements embed expressions and subqueries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.sqlengine.types import SqlType

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Marker base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, date, boolean or NULL."""

    value: Any


@dataclass(frozen=True)
class HostVar(Expression):
    """A host variable reference, ``:name`` (bound at execution time)."""

    name: str


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly qualified column reference, ``t.col`` or ``col``."""

    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list or inside COUNT(*)."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class SequenceNextval(Expression):
    """Oracle-style ``seq.NEXTVAL`` (Appendix A of the paper)."""

    sequence: str


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic (+ - * / %), comparison (= <> < <= > >=),
    logical (AND OR) or string concatenation (||)."""

    op: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus/plus or NOT."""

    op: str
    operand: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Aggregate or scalar function call.

    ``COUNT(*)`` is represented with ``star=True`` and empty ``args``.
    """

    name: str
    args: Tuple[Expression, ...] = ()
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class Between(Expression):
    expr: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class InList(Expression):
    expr: Expression
    items: Tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    expr: Expression
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expression):
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Like(Expression):
    expr: Expression
    pattern: Expression
    negated: bool = False
    escape: Optional[Expression] = None


@dataclass(frozen=True)
class IsNull(Expression):
    expr: Expression
    negated: bool = False


@dataclass(frozen=True)
class Case(Expression):
    """``CASE [operand] WHEN .. THEN .. [ELSE ..] END``."""

    operand: Optional[Expression]
    whens: Tuple[Tuple[Expression, Expression], ...]
    else_: Optional[Expression]


@dataclass(frozen=True)
class Cast(Expression):
    expr: Expression
    target: SqlType


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesised SELECT used where a scalar value is expected."""

    select: "Select"


@dataclass(frozen=True)
class TupleExpr(Expression):
    """A parenthesised expression list, e.g. the left side of a row
    comparison ``(a, b) = (c, d)`` used by the generated Q4 join."""

    items: Tuple[Expression, ...]


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One entry of the select list: an expression plus optional alias."""

    expr: Expression
    alias: Optional[str] = None


@dataclass(frozen=True)
class TableName:
    """A base table or view in the FROM clause."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this source is referred to by in expressions."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource:
    """A derived table: ``FROM (SELECT ..) alias``."""

    select: "Select"
    alias: Optional[str] = None

    @property
    def binding(self) -> Optional[str]:
        return self.alias


@dataclass(frozen=True)
class Join:
    """An explicit ``JOIN .. ON ..`` between two FROM sources."""

    kind: str  # INNER | LEFT | CROSS
    left: "FromSource"
    right: "FromSource"
    condition: Optional[Expression] = None

    @property
    def binding(self) -> Optional[str]:
        return None


FromSource = Any  # TableName | SubquerySource | Join


@dataclass(frozen=True)
class OrderItem:
    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class Select:
    """A full SELECT statement (also used for subqueries and views)."""

    items: Tuple[SelectItem, ...]
    from_sources: Tuple[FromSource, ...] = ()
    where: Optional[Expression] = None
    group_by: Tuple[Expression, ...] = ()
    having: Optional[Expression] = None
    order_by: Tuple[OrderItem, ...] = ()
    distinct: bool = False
    limit: Optional[Expression] = None
    offset: Optional[Expression] = None
    into_vars: Tuple[str, ...] = ()
    set_ops: Tuple[Tuple[str, bool, "Select"], ...] = ()  # (op, all, rhs)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef:
    name: str
    type: SqlType


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: Tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateTableAsSelect:
    name: str
    select: Select


@dataclass(frozen=True)
class CreateView:
    name: str
    select: Select
    or_replace: bool = False


@dataclass(frozen=True)
class CreateSequence:
    name: str
    start: int = 1


@dataclass(frozen=True)
class CreateIndex:
    """Accepted for SQL92 compatibility; the in-memory engine records the
    index in the catalog and uses it as a join-planning hint."""

    name: str
    table: str
    columns: Tuple[str, ...]


@dataclass(frozen=True)
class DropObject:
    kind: str  # TABLE | VIEW | SEQUENCE | INDEX
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class InsertValues:
    table: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Expression, ...], ...]


@dataclass(frozen=True)
class InsertSelect:
    table: str
    columns: Tuple[str, ...]
    select: Select


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Update:
    table: str
    assignments: Tuple[Tuple[str, Expression], ...]
    where: Optional[Expression] = None


Statement = Any  # union of the statement dataclasses above plus Select


def walk_expression(expr: Expression):
    """Yield *expr* and every sub-expression, depth first.

    Subqueries are yielded as nodes but not descended into: their
    expressions live in a different scope.
    """
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, BinaryOp):
            stack.extend((node.left, node.right))
        elif isinstance(node, UnaryOp):
            stack.append(node.operand)
        elif isinstance(node, FunctionCall):
            stack.extend(node.args)
        elif isinstance(node, Between):
            stack.extend((node.expr, node.low, node.high))
        elif isinstance(node, InList):
            stack.append(node.expr)
            stack.extend(node.items)
        elif isinstance(node, InSubquery):
            stack.append(node.expr)
        elif isinstance(node, Like):
            stack.extend((node.expr, node.pattern))
            if node.escape is not None:
                stack.append(node.escape)
        elif isinstance(node, IsNull):
            stack.append(node.expr)
        elif isinstance(node, Case):
            if node.operand is not None:
                stack.append(node.operand)
            for cond, result in node.whens:
                stack.extend((cond, result))
            if node.else_ is not None:
                stack.append(node.else_)
        elif isinstance(node, Cast):
            stack.append(node.expr)
        elif isinstance(node, TupleExpr):
            stack.extend(node.items)
