"""Out-of-core operators: external merge sort and grace-style
partitioned hash join / aggregate.

The vectorized executor (:mod:`repro.sqlengine.vector`) switches a
sort, hash join or hash aggregate to the spilling variant here when
``EngineOptions.memory_budget`` is set and :func:`estimate_bytes` puts
the node's input above it — so the Q0..Q11 preprocessing pipeline can
run on datasets whose working set does not fit the budget.

Every variant is **order-exact** with its in-memory twin:

* the external sort writes sorted runs to disk and k-way merges them
  with the engine's own NULL-largest comparator; ties break on
  ``(run, position)``, which is global input order, so the merge is
  stable exactly like ``list.sort``;
* the partitioned join routes build/probe rows by key hash, so every
  probe row meets all of its matches inside one partition; re-sorting
  the matched pairs by probe position restores the row operator's
  left-major, bucket-ordered emission;
* the partitioned aggregate groups each partition independently
  (records arrive in input order, so the first record of a group is
  its representative) and merges groups by their first-seen input
  position, restoring global first-seen group order.

Spilled records go through :mod:`pickle` into a temporary directory
that is removed in a ``finally`` block; the number of bytes written is
returned to the caller and surfaces as ``spill=<N> B`` in EXPLAIN
ANALYZE.
"""

from __future__ import annotations

import heapq
import os
import pickle
import shutil
import tempfile
from functools import cmp_to_key
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: rough per-value heap cost of a boxed Python object in a row tuple
_BYTES_PER_VALUE = 48
#: per-row tuple overhead
_BYTES_PER_ROW = 32

#: fan-out of the partitioned join/aggregate
_PARTITIONS = 16

#: floor on rows per sort run so tiny budgets still make progress
_MIN_RUN_ROWS = 64


def estimate_bytes(ncols: int, nrows: int) -> int:
    """Rough working-set estimate of *nrows* materialized rows of
    *ncols* columns — deliberately simple and deterministic, so the
    spill decision is reproducible."""
    return nrows * (_BYTES_PER_VALUE * ncols + _BYTES_PER_ROW)


class _SpillDir:
    """A temp directory of pickled record batches, byte-counted."""

    def __init__(self) -> None:
        self.path = tempfile.mkdtemp(prefix="repro-spill-")
        self.bytes_written = 0
        self._counter = 0

    def write(self, name: str, payload: Any) -> str:
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        self.bytes_written += len(data)
        self._counter += 1
        path = os.path.join(self.path, f"{name}-{self._counter}.bin")
        with open(path, "wb") as handle:
            handle.write(data)
        return path

    @staticmethod
    def read(path: str) -> Any:
        with open(path, "rb") as handle:
            return pickle.load(handle)

    def cleanup(self) -> None:
        shutil.rmtree(self.path, ignore_errors=True)


class _Appender:
    """Buffered per-partition record appender (bounded memory: each
    partition flushes to its own file chain)."""

    def __init__(self, spill: _SpillDir, name: str, flush_every: int = 4096):
        self._spill = spill
        self._name = name
        self._flush_every = flush_every
        self._buffers: List[List[Any]] = [[] for _ in range(_PARTITIONS)]
        self.files: List[List[str]] = [[] for _ in range(_PARTITIONS)]

    def add(self, partition: int, record: Any) -> None:
        buffer = self._buffers[partition]
        buffer.append(record)
        if len(buffer) >= self._flush_every:
            self._flush(partition)

    def _flush(self, partition: int) -> None:
        buffer = self._buffers[partition]
        if buffer:
            self.files[partition].append(
                self._spill.write(f"{self._name}-p{partition}", buffer)
            )
            self._buffers[partition] = []

    def records(self, partition: int) -> List[Any]:
        self._flush(partition)
        out: List[Any] = []
        for path in self.files[partition]:
            out.extend(_SpillDir.read(path))
        return out


def _partition_of(key: Tuple[Any, ...]) -> int:
    # hash() is salted per process for strings, but every consumer
    # re-merges by global input position, so partition assignment only
    # affects file layout, never output order
    return hash(key) % _PARTITIONS


# ---------------------------------------------------------------------------
# external merge sort
# ---------------------------------------------------------------------------


def external_sort(
    rows: List[Tuple[Any, ...]],
    keys: List[Tuple[Any, ...]],
    order_by: Sequence[Any],
    budget: int,
) -> Tuple[List[Tuple[Any, ...]], int]:
    """Sort *rows* by *keys* under the engine's ORDER BY comparator
    using sorted runs on disk.  Returns ``(rows, spill_bytes)`` —
    bit-identical to ``engine._sort_rows`` including stability."""
    from repro.sqlengine.engine import compare_order_keys

    if not rows:
        return rows, 0
    width = len(rows[0]) + (len(keys[0]) if keys else 0)
    per_row = _BYTES_PER_VALUE * width + _BYTES_PER_ROW
    run_rows = max(_MIN_RUN_ROWS, budget // max(1, per_row))

    def cmp(a: Tuple[Tuple[Any, ...], int], b) -> int:
        result = compare_order_keys(a[0], b[0], order_by)
        if result:
            return result
        # stable: fall back to global input position
        return -1 if a[1] < b[1] else (1 if a[1] > b[1] else 0)

    sort_key = cmp_to_key(cmp)
    spill = _SpillDir()
    try:
        run_files: List[str] = []
        for start in range(0, len(rows), run_rows):
            chunk = [
                ((keys[i], i), rows[i])
                for i in range(start, min(start + run_rows, len(rows)))
            ]
            chunk.sort(key=lambda item: sort_key(item[0]))
            run_files.append(spill.write("run", chunk))
        streams = [iter(_SpillDir.read(path)) for path in run_files]
        heap: List[Tuple[Any, int, Tuple[Any, ...]]] = []
        for idx, stream in enumerate(streams):
            first = next(stream, None)
            if first is not None:
                heap.append((sort_key(first[0]), idx, first[1]))
        heapq.heapify(heap)
        out: List[Tuple[Any, ...]] = []
        while heap:
            _, idx, row = heapq.heappop(heap)
            out.append(row)
            following = next(streams[idx], None)
            if following is not None:
                heapq.heappush(
                    heap, (sort_key(following[0]), idx, following[1])
                )
        return out, spill.bytes_written
    finally:
        spill.cleanup()


# ---------------------------------------------------------------------------
# partitioned (grace) hash join
# ---------------------------------------------------------------------------


def spill_join_pairs(
    left_keys: List[Tuple[Any, ...]],
    right_keys: List[Tuple[Any, ...]],
) -> Tuple[List[Tuple[int, int]], int]:
    """Equi-join positions partition-wise on disk.

    Returns ``(pairs, spill_bytes)`` where *pairs* is exactly what the
    in-memory build/probe produces: probe (left) major, build-insertion
    order within each key.  NULL keys never match on either side."""
    spill = _SpillDir()
    try:
        build = _Appender(spill, "build")
        for j, key in enumerate(right_keys):
            if any(v is None for v in key):
                continue
            build.add(_partition_of(key), (j, key))
        probe = _Appender(spill, "probe")
        for i, key in enumerate(left_keys):
            if any(v is None for v in key):
                continue
            probe.add(_partition_of(key), (i, key))
        pairs: List[Tuple[int, int]] = []
        for partition in range(_PARTITIONS):
            table: Dict[Tuple[Any, ...], List[int]] = {}
            for j, key in build.records(partition):
                table.setdefault(key, []).append(j)
            for i, key in probe.records(partition):
                bucket = table.get(key)
                if not bucket:
                    continue
                for j in bucket:
                    pairs.append((i, j))
        # one left row's matches live in exactly one partition (same
        # key, same hash), already in build order; sorting by probe
        # position restores the global left-major emission
        pairs.sort(key=lambda pair: pair[0])
        return pairs, spill.bytes_written
    finally:
        spill.cleanup()


# ---------------------------------------------------------------------------
# partitioned hash aggregate
# ---------------------------------------------------------------------------


def spill_aggregate(
    n: int,
    keys: List[Tuple[Any, ...]],
    child_cols: List[List[Any]],
    arg_lists: List[Optional[List[Any]]],
    slots: List[Any],
) -> Tuple[List[List[Any]], List[List[Any]], int, int]:
    """Group *n* child rows partition-wise on disk and reduce each
    aggregate slot.

    Returns ``(repcols, slotcols, group_count, spill_bytes)`` with the
    groups in global first-seen order and the representative row being
    each group's first member — identical to the in-memory aggregate.
    (``NULL`` group keys are valid grouping values, matching the row
    operator.)"""
    from repro.sqlengine.vector import _distinct_values, reduce_values

    spill = _SpillDir()
    try:
        appender = _Appender(spill, "agg")
        width = len(child_cols)
        for i in range(n):
            key = keys[i]
            row = tuple(child_cols[c][i] for c in range(width))
            argvals = tuple(
                None if argv is None else argv[i] for argv in arg_lists
            )
            appender.add(_partition_of(key), (i, key, row, argvals))
        merged: List[Tuple[int, Tuple[Any, ...], List[Any]]] = []
        for partition in range(_PARTITIONS):
            groups: Dict[Tuple[Any, ...], List[Any]] = {}
            order: List[Tuple[Any, ...]] = []
            for record in appender.records(partition):
                key = record[1]
                bucket = groups.get(key)
                if bucket is None:
                    groups[key] = [record]
                    order.append(key)
                else:
                    bucket.append(record)
            for key in order:
                records = groups[key]
                first_pos, _, rep_row, _ = records[0]
                slot_values: List[Any] = []
                for pos, slot in enumerate(slots):
                    if slot.star:
                        slot_values.append(len(records))
                        continue
                    values = [
                        record[3][pos]
                        for record in records
                        if record[3][pos] is not None
                    ]
                    if slot.distinct:
                        values = _distinct_values(values)
                    slot_values.append(reduce_values(slot.name, values))
                merged.append((first_pos, rep_row, slot_values))
        merged.sort(key=lambda entry: entry[0])
        repcols: List[List[Any]] = [[] for _ in range(width)]
        slotcols: List[List[Any]] = [[] for _ in slots]
        for _, rep_row, slot_values in merged:
            for c in range(width):
                repcols[c].append(rep_row[c])
            for s, value in enumerate(slot_values):
                slotcols[s].append(value)
        return repcols, slotcols, len(merged), spill.bytes_written
    finally:
        spill.cleanup()
