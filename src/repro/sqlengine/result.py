"""Query results.

:class:`Result` is a small immutable container holding the output
columns and row tuples of a statement, with convenience accessors used
throughout the mining kernel, the tests and the examples.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sqlengine.errors import ExecutionError

Row = Tuple[Any, ...]


class Result:
    """Rows returned by a statement (empty for DDL/DML, which instead
    report :attr:`rowcount`)."""

    __slots__ = ("columns", "rows", "rowcount")

    def __init__(
        self,
        columns: Sequence[str] = (),
        rows: Sequence[Row] = (),
        rowcount: int = 0,
    ):
        self.columns: Tuple[str, ...] = tuple(columns)
        self.rows: List[Row] = list(rows)
        self.rowcount = rowcount if rowcount else len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def first(self) -> Optional[Row]:
        """The first row, or None when empty."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ExecutionError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> List[Any]:
        """All values of one output column."""
        try:
            idx = [c.lower() for c in self.columns].index(name.lower())
        except ValueError:
            raise ExecutionError(
                f"no output column {name!r} (have {', '.join(self.columns)})"
            ) from None
        return [row[idx] for row in self.rows]

    def as_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by output column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def pretty(self, limit: Optional[int] = None) -> str:
        """ASCII rendering (column header + rows)."""
        from repro.sqlengine.table import Table

        table = Table("result", self.columns or ("?",))
        if self.columns:
            for row in self.rows:
                table.rows.append(row)
        return table.pretty(limit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Result(columns={self.columns}, rows={len(self.rows)})"
