"""Builds physical operator trees for SELECT statements.

Planning is deliberately simple but not naive:

* single-source WHERE conjuncts are pushed below joins;
* equality conjuncts between two sources become hash-join keys
  (left-deep join tree in FROM order);
* remaining conjuncts are evaluated as residual filters;
* conjuncts containing subqueries are kept at the top so correlated
  references resolve against the full row environment.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.sqlengine import ast_nodes as ast
from repro.sqlengine.compiler import ExpressionCompiler
from repro.sqlengine.errors import CatalogError, ExecutionError
from repro.sqlengine.evaluator import Evaluator, Frame
from repro.sqlengine.operators import (
    Filter,
    GroupAggregate,
    HashJoin,
    LeftOuterHashJoin,
    NestedLoopJoin,
    Operator,
    RowsSource,
    TableScan,
)


def split_conjuncts(expr: Optional[ast.Expression]) -> List[ast.Expression]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


def conjoin(conjuncts: Sequence[ast.Expression]) -> Optional[ast.Expression]:
    """Rebuild a predicate from conjuncts (None when empty)."""
    result: Optional[ast.Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else ast.BinaryOp("AND", result, conjunct)
    return result


def plan_operators(root: Optional[Operator]):
    """Depth-first walk over an operator tree, parents before children.

    The canonical enumeration of a plan's physical nodes, shared by
    EXPLAIN ANALYZE instrumentation and the plan renderer — both must
    agree on exactly which operators a plan contains."""
    if root is None:
        return
    stack: List[Operator] = [root]
    while stack:
        op = stack.pop()
        yield op
        for attr in ("child", "left", "right"):
            sub = getattr(op, attr, None)
            if sub is not None:
                stack.append(sub)


def _contains_subquery(expr: ast.Expression) -> bool:
    for node in ast.walk_expression(expr):
        if isinstance(node, (ast.InSubquery, ast.Exists, ast.ScalarSubquery)):
            return True
    return False


class SourceInfo:
    """One planned FROM source and the names it binds."""

    def __init__(self, operator: Operator):
        self.operator = operator
        self.frame = operator.frame


class SelectPlanner:
    """Plans the FROM/WHERE part of one SELECT block."""

    def __init__(self, database, evaluator: Evaluator):
        self._db = database
        self._evaluator = evaluator
        self._options = database.options
        #: lowers planned expressions to closures (interpreter fallback
        #: when the compile_expressions option is off)
        self.compiler = ExpressionCompiler(
            evaluator, enabled=self._options.compile_expressions
        )
        #: False when the plan snapshots data at plan time (views and
        #: derived tables materialize into a RowsSource), making it
        #: unsafe to reuse across executions
        self.cacheable = True
        #: True once the plan scans at least one columnar base table —
        #: the engine offers such plans to the vectorized executor
        self.columnar_scan = False

    # -- source planning -----------------------------------------------------

    def plan_from(
        self, select: ast.Select
    ) -> Tuple[Optional[Operator], List[ast.Expression]]:
        """Return (root operator, leftover conjuncts to apply on top).

        A SELECT without FROM returns ``(None, [])`` and is evaluated as
        a single-row query by the runner.
        """
        conjuncts = split_conjuncts(select.where)
        if not select.from_sources:
            return None, conjuncts

        sources = [self._plan_source(src) for src in select.from_sources]

        deferred: List[ast.Expression] = []
        simple: List[Tuple[Set[int], ast.Expression]] = []
        for conjunct in conjuncts:
            if _contains_subquery(conjunct):
                deferred.append(conjunct)
                continue
            touched, external = self._touched_sources(conjunct, sources)
            if not touched:
                # pure outer/host-variable predicate: evaluate on top
                deferred.append(conjunct)
            else:
                simple.append((touched, conjunct))
        # References that resolve only in an enclosing scope (external)
        # are safe below inner joins: every operator threads the parent
        # environment through, so a pushed filter still sees them.

        # Push single-source conjuncts down onto their source, using a
        # secondary index when one covers the equality columns.
        remaining: List[Tuple[Set[int], ast.Expression]] = []
        pushed: Dict[int, List[ast.Expression]] = {}
        for touched, conjunct in simple:
            if len(touched) == 1 and self._options.filter_pushdown:
                pushed.setdefault(next(iter(touched)), []).append(conjunct)
            else:
                remaining.append((touched, conjunct))
        for idx, source_conjuncts in pushed.items():
            sources[idx] = self._apply_source_predicates(
                sources[idx], source_conjuncts
            )

        # Left-deep join tree in FROM order.
        root = sources[0].operator
        joined: Set[int] = {0}
        for idx in range(1, len(sources)):
            joined.add(idx)
            applicable = [
                (touched, conjunct)
                for touched, conjunct in remaining
                if touched <= joined
            ]
            remaining = [
                (touched, conjunct)
                for touched, conjunct in remaining
                if not touched <= joined
            ]
            equi, residual = self._extract_equi_keys(
                applicable, root.frame, sources[idx].frame
            )
            if equi:
                left_keys = [lk for lk, _ in equi]
                right_keys = [rk for _, rk in equi]
                root = HashJoin(
                    root,
                    sources[idx].operator,
                    left_keys,
                    right_keys,
                    self._evaluator,
                    residual=conjoin(residual),
                    compiler=self.compiler,
                )
            else:
                root = NestedLoopJoin(
                    root,
                    sources[idx].operator,
                    self._evaluator,
                    predicate=conjoin(residual),
                    compiler=self.compiler,
                )

        leftovers = [conjunct for _, conjunct in remaining] + deferred
        return root, leftovers

    def _plan_source(self, source: ast.FromSource) -> SourceInfo:
        if isinstance(source, ast.TableName):
            return SourceInfo(self._plan_table(source))
        if isinstance(source, ast.SubquerySource):
            columns, rows = self._db._run_select_raw(source.select)
            self.cacheable = False
            return SourceInfo(RowsSource(source.alias, columns, rows))
        if isinstance(source, ast.Join):
            return SourceInfo(self._plan_join(source))
        raise ExecutionError(f"unsupported FROM source: {source!r}")

    def _plan_table(self, source: ast.TableName) -> Operator:
        catalog = self._db.catalog
        if catalog.has_table(source.name):
            table = catalog.get_table(source.name)
            if getattr(table, "storage", "row") == "columnar":
                self.columnar_scan = True
            return TableScan(table, source.binding)
        if catalog.has_view(source.name):
            view = catalog.get_view(source.name)
            columns, rows = self._db._run_select_raw(view.select)
            self.cacheable = False
            return RowsSource(source.binding, columns, rows)
        raise CatalogError(f"no such table or view: {source.name!r}")

    def _plan_join(self, join: ast.Join) -> Operator:
        left = self._plan_source(join.left)
        right = self._plan_source(join.right)
        conjuncts = split_conjuncts(join.condition)
        equi, residual = self._extract_equi_keys(
            [
                (self._touched_two(c, left.frame, right.frame), c)
                for c in conjuncts
            ],
            left.frame,
            right.frame,
        )
        left_keys = [lk for lk, _ in equi]
        right_keys = [rk for _, rk in equi]
        if join.kind == "LEFT":
            return LeftOuterHashJoin(
                left.operator,
                right.operator,
                left_keys,
                right_keys,
                self._evaluator,
                residual=conjoin(residual),
                compiler=self.compiler,
            )
        if equi:
            return HashJoin(
                left.operator,
                right.operator,
                left_keys,
                right_keys,
                self._evaluator,
                residual=conjoin(residual),
                compiler=self.compiler,
            )
        return NestedLoopJoin(
            left.operator,
            right.operator,
            self._evaluator,
            predicate=conjoin(residual),
            compiler=self.compiler,
        )

    # -- conjunct classification ----------------------------------------------

    @staticmethod
    def _touched_two(
        conjunct: ast.Expression, left: Frame, right: Frame
    ) -> Set[int]:
        touched: Set[int] = set()
        for node in ast.walk_expression(conjunct):
            if isinstance(node, ast.ColumnRef):
                if _frame_resolves(left, node):
                    touched.add(0)
                elif _frame_resolves(right, node):
                    touched.add(1)
        return touched

    @staticmethod
    def _touched_sources(
        conjunct: ast.Expression, sources: List[SourceInfo]
    ) -> Tuple[Set[int], bool]:
        """(FROM sources the conjunct references, whether it also has
        references that only an enclosing scope can resolve)."""
        touched: Set[int] = set()
        external = False
        for node in ast.walk_expression(conjunct):
            if isinstance(node, ast.ColumnRef):
                owner = None
                for idx, source in enumerate(sources):
                    if _frame_resolves(source.frame, node):
                        owner = idx
                        break
                if owner is None:
                    external = True
                else:
                    touched.add(owner)
        return touched, external

    # -- single-source access paths ---------------------------------------

    def _apply_source_predicates(
        self, info: SourceInfo, conjuncts: List[ast.Expression]
    ) -> SourceInfo:
        """Turn pushed-down conjuncts into the best access path: an
        index lookup when a secondary index covers the equality
        columns, plain filters otherwise."""
        operator = info.operator
        if isinstance(operator, TableScan):
            operator, conjuncts = self._try_index_lookup(operator, conjuncts)
        for conjunct in conjuncts:
            operator = Filter(
                operator, conjunct, self._evaluator, compiler=self.compiler
            )
        return SourceInfo(operator)

    def _try_index_lookup(
        self, scan: TableScan, conjuncts: List[ast.Expression]
    ) -> Tuple[Operator, List[ast.Expression]]:
        from repro.sqlengine.operators import IndexLookup

        table = scan.table
        if not table.indexes:
            return scan, conjuncts
        equalities: Dict[str, Tuple[ast.Expression, ast.Expression]] = {}
        for conjunct in conjuncts:
            pair = self._column_eq_value(conjunct, scan)
            if pair is not None:
                column, value_expr = pair
                equalities.setdefault(column, (conjunct, value_expr))
        # Prefer the covered index using the most equality columns
        # (more selective, and more conjuncts absorbed into the key).
        candidates = [
            table_index
            for table_index in table.indexes.values()
            if all(
                column.lower() in equalities
                for column in table_index.columns
            )
        ]
        if not candidates:
            return scan, conjuncts
        best = max(candidates, key=lambda ix: len(ix.columns))
        columns = [c.lower() for c in best.columns]
        used = {id(equalities[c][0]) for c in columns}
        key_exprs = [equalities[c][1] for c in columns]
        lookup = IndexLookup(
            table, scan.binding, best, key_exprs, self._evaluator,
            compiler=self.compiler,
        )
        rest = [c for c in conjuncts if id(c) not in used]
        return lookup, rest

    @staticmethod
    def _column_eq_value(
        conjunct: ast.Expression, scan: TableScan
    ) -> Optional[Tuple[str, ast.Expression]]:
        """Match ``column = value`` (either orientation) where *column*
        belongs to the scan and *value* has no references into it."""
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        for column_side, value_side in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            if not isinstance(column_side, ast.ColumnRef):
                continue
            if not _frame_resolves(scan.frame, column_side):
                continue
            value_refs = [
                node
                for node in ast.walk_expression(value_side)
                if isinstance(node, ast.ColumnRef)
            ]
            if any(_frame_resolves(scan.frame, ref) for ref in value_refs):
                continue
            return column_side.name.lower(), value_side
        return None

    def _extract_equi_keys(
        self,
        classified: List[Tuple[Set[int], ast.Expression]],
        left_frame: Frame,
        right_frame: Frame,
    ) -> Tuple[
        List[Tuple[ast.Expression, ast.Expression]], List[ast.Expression]
    ]:
        """Split conjuncts into hash-join key pairs and residuals.

        A conjunct ``a = b`` becomes a key pair when one side resolves
        entirely in the left frame and the other entirely in the right
        frame.  ``classified`` pairs each conjunct with the set of
        sides it touches (0=left tree, 1=new right source) — only used
        to pass residuals through untouched.
        """
        equi: List[Tuple[ast.Expression, ast.Expression]] = []
        residual: List[ast.Expression] = []
        for _, conjunct in classified:
            pair = (
                self._as_equi_pair(conjunct, left_frame, right_frame)
                if self._options.hash_joins
                else None
            )
            if pair is not None:
                equi.append(pair)
            else:
                residual.append(conjunct)
        return equi, residual

    @staticmethod
    def _as_equi_pair(
        conjunct: ast.Expression, left_frame: Frame, right_frame: Frame
    ) -> Optional[Tuple[ast.Expression, ast.Expression]]:
        if not (isinstance(conjunct, ast.BinaryOp) and conjunct.op == "="):
            return None
        sides = []
        for expr in (conjunct.left, conjunct.right):
            refs = [
                node
                for node in ast.walk_expression(expr)
                if isinstance(node, ast.ColumnRef)
            ]
            if not refs:
                return None
            in_left = all(_frame_resolves(left_frame, r) for r in refs)
            in_right = all(_frame_resolves(right_frame, r) for r in refs)
            if in_left and not in_right:
                sides.append("L")
            elif in_right and not in_left:
                sides.append("R")
            else:
                return None
        if sides == ["L", "R"]:
            return conjunct.left, conjunct.right
        if sides == ["R", "L"]:
            return conjunct.right, conjunct.left
        return None


def _frame_resolves(frame: Frame, ref: ast.ColumnRef) -> bool:
    try:
        return frame.lookup(ref.qualifier, ref.name) is not None
    except CatalogError:
        # Ambiguous within this frame: it does resolve here (and will
        # raise properly at evaluation time if actually evaluated).
        return True
